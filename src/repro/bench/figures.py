"""Experiment runners — one per table/figure of the paper's evaluation.

Every runner is scale-parameterised: the pytest benchmarks call them with
laptop-size workloads (the *shape* of each figure is what is being
reproduced, not the testbed's absolute numbers), while the examples and
EXPERIMENTS.md use larger settings.  Each returns an
:class:`ExperimentResult` whose ``rows`` are exactly the series the paper
plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.bench.workloads import (
    FamilySpec,
    generate_family_database,
    generate_read_queries,
    sensitivity_groups,
)
from repro.blast.engine import BlastConfig, BlastEngine
from repro.cluster.hashring import FlatHash
from repro.core.framework import Mendel
from repro.core.params import MendelConfig, QueryParams
from repro.seq.records import SequenceRecord, SequenceSet


@dataclass
class ExperimentResult:
    """Rows of one reproduced figure plus run metadata."""

    name: str
    rows: list[dict[str, Any]]
    meta: dict[str, Any] = field(default_factory=dict)

    def series(self, key: str) -> list[float]:
        return [float(row[key]) for row in self.rows]


# ---------------------------------------------------------------------------
# Fig. 5 — load distribution: flat SHA-1 vs the two-tier vp-prefix LSH
# ---------------------------------------------------------------------------

def run_fig5_load_balance(
    spec: FamilySpec = FamilySpec(families=40, members_per_family=5, length=150),
    config: MendelConfig = MendelConfig(
        group_count=10, group_size=5, prefix_depth=8, sample_size=4096,
        prefix_bucket_capacity=2,
    ),
    seed: int = 7,
) -> ExperimentResult:
    """Per-node percentage of stored data under (a) a standard flat SHA-1
    hash over all nodes and (b) Mendel's hierarchical two-tier scheme."""
    database = generate_family_database(spec, rng=seed)
    mendel = Mendel.build(database, config)
    store = mendel.index.store

    node_ids = [node.node_id for node in mendel.index.topology.nodes]
    flat = FlatHash(tuple(node_ids))
    flat_counts = {node_id: 0 for node_id in node_ids}
    for block in store.blocks:
        flat_counts[flat.assign(store.block_key(block.block_id))] += 1
    total = max(1, len(store))

    mendel_fractions = mendel.load_fractions()
    rows = [
        {
            "node": node_id,
            "flat_pct": 100.0 * flat_counts[node_id] / total,
            "mendel_pct": 100.0 * mendel_fractions[node_id],
        }
        for node_id in node_ids
    ]
    flat_pcts = [row["flat_pct"] for row in rows]
    mendel_pcts = [row["mendel_pct"] for row in rows]
    meta = {
        "blocks": len(store),
        "nodes": len(node_ids),
        "flat_spread_pct": max(flat_pcts) - min(flat_pcts),
        "mendel_spread_pct": max(mendel_pcts) - min(mendel_pcts),
    }
    return ExperimentResult(name="fig5-load-balance", rows=rows, meta=meta)


# ---------------------------------------------------------------------------
# Fig. 6a — turnaround vs query length (Mendel vs BLAST)
# ---------------------------------------------------------------------------

def run_fig6a_query_length(
    lengths: tuple[int, ...] = (500, 1000, 1500, 2000, 2500, 3000),
    queries_per_length: int = 1,
    spec: FamilySpec = FamilySpec(families=60, members_per_family=5, length=250),
    config: MendelConfig = MendelConfig(group_count=10, group_size=5),
    params: QueryParams = QueryParams(k=8, n=6, i=0.9),
    seed: int = 11,
) -> ExperimentResult:
    """Average turnaround per query length, s_aureus-style reads over an
    nr-like database."""
    database = generate_family_database(spec, rng=seed)
    mendel = Mendel.build(database, config)
    blast = BlastEngine(database)

    rows = []
    for length in lengths:
        queries = generate_read_queries(
            database, queries_per_length, length, rng=seed + length,
            id_prefix=f"saureus-{length}",
        )
        mendel_times = [mendel.query(q, params).stats.turnaround for q in queries]
        blast_times = [blast.search(q).turnaround for q in queries]
        rows.append(
            {
                "query_length": length,
                "mendel_ms": 1e3 * float(np.mean(mendel_times)),
                "blast_ms": 1e3 * float(np.mean(blast_times)),
            }
        )
    return ExperimentResult(
        name="fig6a-query-length",
        rows=rows,
        meta={"db_residues": database.total_residues, "nodes": mendel.node_count},
    )


# ---------------------------------------------------------------------------
# Fig. 6b — turnaround vs database size (fixed 1000-residue queries)
# ---------------------------------------------------------------------------

def run_fig6b_db_size(
    family_counts: tuple[int, ...] = (15, 30, 60, 120),
    queries: int = 1,
    query_length: int = 1000,
    members_per_family: int = 5,
    seq_length: int = 250,
    config: MendelConfig = MendelConfig(group_count=10, group_size=5),
    params: QueryParams = QueryParams(k=8, n=6, i=0.9),
    blast_memory_residues: int | None = 40_000,
    seed: int = 13,
) -> ExperimentResult:
    """Average turnaround as the database grows (queries fixed at 1000
    residues, the paper's protocol)."""
    rows = []
    for families in family_counts:
        spec = FamilySpec(
            families=families,
            members_per_family=members_per_family,
            length=seq_length,
        )
        database = generate_family_database(spec, rng=seed)
        mendel = Mendel.build(database, config)
        blast = BlastEngine(
            database,
            BlastConfig(memory_capacity_residues=blast_memory_residues),
        )
        query_set = generate_read_queries(
            database, queries, query_length, rng=seed + families,
            id_prefix=f"q{families}",
        )
        mendel_times = [mendel.query(q, params).stats.turnaround for q in query_set]
        blast_times = [blast.search(q).turnaround for q in query_set]
        rows.append(
            {
                "db_residues": database.total_residues,
                "mendel_ms": 1e3 * float(np.mean(mendel_times)),
                "blast_ms": 1e3 * float(np.mean(blast_times)),
            }
        )
    return ExperimentResult(name="fig6b-db-size", rows=rows, meta={})


# ---------------------------------------------------------------------------
# Fig. 6c — scalability: turnaround vs cluster size
# ---------------------------------------------------------------------------

def run_fig6c_scalability(
    group_counts: tuple[int, ...] = (1, 2, 4, 10),
    group_size: int = 5,
    spec: FamilySpec = FamilySpec(families=40, members_per_family=5, length=250),
    queries: int = 2,
    query_length: int = 600,
    params: QueryParams = QueryParams(k=8, n=6, i=0.7),
    seed: int = 17,
) -> ExperimentResult:
    """Average turnaround of an e_coli-style query set while the same
    database is indexed over clusters of growing size."""
    database = generate_family_database(spec, rng=seed)
    query_set = generate_read_queries(
        database, queries, query_length, rng=seed + 1, id_prefix="ecoli"
    )
    rows = []
    for group_count in group_counts:
        config = MendelConfig(group_count=group_count, group_size=group_size)
        mendel = Mendel.build(database, config)
        times = [mendel.query(q, params).stats.turnaround for q in query_set]
        rows.append(
            {
                "nodes": group_count * group_size,
                "mendel_ms": 1e3 * float(np.mean(times)),
            }
        )
    return ExperimentResult(
        name="fig6c-scalability",
        rows=rows,
        meta={"db_residues": database.total_residues},
    )


# ---------------------------------------------------------------------------
# Fig. 6d — sensitivity vs similarity level (Mendel vs BLAST)
# ---------------------------------------------------------------------------

def run_fig6d_sensitivity(
    levels: tuple[float, ...] = (0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2),
    group_size: int = 4,
    target_length: int = 1000,
    background_families: int = 10,
    config: MendelConfig = MendelConfig(group_count=4, group_size=3),
    params: QueryParams = QueryParams(k=8, n=8, i=0.3, c=0.3),
    seed: int = 19,
) -> ExperimentResult:
    """Percentage of mutated copies (per similarity level) whose alignment
    back to the generated target is found, Mendel vs BLAST."""
    target, groups = sensitivity_groups(
        levels=levels,
        group_size=group_size,
        target_length=target_length,
        rng=seed,
    )
    database = generate_family_database(
        FamilySpec(families=background_families, members_per_family=3, length=300),
        rng=seed + 1,
    )
    database.add(target)

    mendel = Mendel.build(database, config)
    blast = BlastEngine(database)

    rows = []
    for level in levels:
        mutants = groups[level]
        mendel_found = sum(
            1
            for mutant in mutants
            if any(
                a.subject_id == target.seq_id
                for a in mendel.query(mutant, params).alignments
            )
        )
        blast_found = sum(
            1
            for mutant in mutants
            if any(
                a.subject_id == target.seq_id
                for a in blast.search(mutant).alignments
            )
        )
        rows.append(
            {
                "identity_pct": 100.0 * level,
                "mendel_found_pct": 100.0 * mendel_found / len(mutants),
                "blast_found_pct": 100.0 * blast_found / len(mutants),
            }
        )
    return ExperimentResult(
        name="fig6d-sensitivity",
        rows=rows,
        meta={"target_length": target_length, "mutants_per_level": group_size},
    )


# ---------------------------------------------------------------------------
# Shape checking — the figure claims as data, for the CLI exit code
# ---------------------------------------------------------------------------

def shape_failures(result: ExperimentResult) -> list[str]:
    """Violated shape claims for *result*, as human-readable strings.

    A conservative subset of the assertions in ``benchmarks/`` (those that
    hold at any workload scale): an empty list means the figure's shape
    reproduced; the CLI turns a non-empty list into a non-zero exit code.
    Unknown experiment names have no claims and never fail.
    """
    from repro.bench.harness import growth_ratio, speedup

    failures: list[str] = []
    name = result.name
    if name == "fig5-load-balance":
        flat = result.meta["flat_spread_pct"]
        mendel = result.meta["mendel_spread_pct"]
        if flat > mendel:
            failures.append(
                f"flat SHA-1 spread ({flat:.2f}%) exceeds the two-tier "
                f"spread ({mendel:.2f}%): tier-1 clustering is free?"
            )
        if mendel > 2.0:
            failures.append(
                f"two-tier node-to-node spread {mendel:.2f}% exceeds 2% of "
                "all data (Fig. 5 bounds it near 1%)"
            )
    elif name == "fig6a-query-length":
        for row in result.rows:
            if row["mendel_ms"] >= row["blast_ms"]:
                failures.append(
                    f"length {row['query_length']}: mendel "
                    f"({row['mendel_ms']:.1f} ms) not faster than blast "
                    f"({row['blast_ms']:.1f} ms)"
                )
        lengths = result.series("query_length")
        mendel = result.series("mendel_ms")
        blast = result.series("blast_ms")
        m_slope = (mendel[-1] - mendel[0]) / (lengths[-1] - lengths[0])
        b_slope = (blast[-1] - blast[0]) / (lengths[-1] - lengths[0])
        if b_slope > 0 and m_slope >= 0.5 * b_slope:
            failures.append(
                f"mendel slope {m_slope:.3f} ms/residue is not well below "
                f"blast's {b_slope:.3f} (length-insensitivity claim)"
            )
    elif name == "fig6b-db-size":
        sizes = result.series("db_residues")
        mendel = result.series("mendel_ms")
        blast = result.series("blast_ms")
        mendel_growth = growth_ratio(sizes, mendel)
        if mendel_growth >= 0.5:
            failures.append(
                f"mendel turnaround grows with the database (growth ratio "
                f"{mendel_growth:.2f}, claim: well below linear)"
            )
        if growth_ratio(sizes, blast) <= mendel_growth:
            failures.append(
                "blast does not degrade faster than mendel as the database "
                "grows (memory-wall claim)"
            )
    elif name == "fig6c-scalability":
        times = result.series("mendel_ms")
        if not all(b < a for a, b in zip(times, times[1:])):
            failures.append(
                f"turnaround is not monotonically decreasing with cluster "
                f"size: {[round(t, 1) for t in times]}"
            )
        elif speedup(times) <= 1.5:
            failures.append(
                f"adding nodes barely helps (first->last speedup "
                f"{speedup(times):.2f}x)"
            )
    elif name == "fig6d-sensitivity":
        rows = result.rows
        if rows and rows[0]["mendel_found_pct"] < 100.0:
            failures.append(
                f"recall at the highest identity level is "
                f"{rows[0]['mendel_found_pct']:.0f}%, expected 100%"
            )
        mendel = sum(result.series("mendel_found_pct"))
        blast = sum(result.series("blast_found_pct"))
        if mendel < blast:
            failures.append(
                f"aggregate mendel recall ({mendel:.0f} pct-points) below "
                f"blast's ({blast:.0f}): sensitivity claim violated"
            )
    return failures
