"""Perf-trajectory regression harness: canonical workloads, BENCH files,
and the tolerance-band comparator behind ``repro bench --regress``.

The repo's figures reproduce the paper's *shapes*; this module tracks the
reproduction's *own* performance over time.  One run executes five
canonical workloads at fixed laptop scale and fixed seeds:

* ``index_build``   — build a family database deployment (wall + simulated
  makespan + construction counters);
* ``query_sweep``   — a fig6a-style read sweep over three query lengths
  (per-length simulated turnaround + pipeline counters);
* ``throughput``    — the serving gateway under a small concurrent burst
  (ops/sec and wall-latency percentiles from the obs histograms);
* ``cold_vs_warm_query`` — the tiered-storage scenario
  (:mod:`repro.tier.scenario`): the fig6a sweep all-RAM, then spilled to
  compressed block files behind a bounded cache (equivalence flag, cold
  vs warm simulated turnaround, bytes on disk, compression ratio, and
  the ``capacity_x`` headroom measure);
* ``degraded_query``— the same deployment with one node crash-stopped
  (coverage and degraded turnaround).

Results are written to ``BENCH_<n>.json`` at the repository root —
``n`` increments per run, so the sequence of committed files is the
project's performance trajectory — and compared against the previous run
with per-metric tolerance bands.

BENCH file schema (``schema_version`` 1)::

    {
      "schema_version": 1,
      "suite": "repro-regress",
      "seed": 23,
      "python": "3.12.3",
      "workloads": {
        "<workload>": {
          "metrics": {
            "<metric>": {
              "value": 12.34,          # the measurement
              "unit": "ms",            # display unit
              "direction": "lower",    # lower | higher | stable
              "tolerance": 0.9         # fractional band, see below
            }, ...
          }
        }, ...
      }
    }

The comparator flags metric M as a regression when, for tolerance ``t``:

* ``direction == "lower"``  and ``new > old * (1 + t)``;
* ``direction == "higher"`` and ``new < old * (1 - t)``;
* ``direction == "stable"`` and ``|new - old| > t * max(|old|, 1)``.

Tolerances encode what a metric *can* promise across machines: wall-clock
metrics carry wide bands (0.9 — only a ~2x slowdown fails, absorbing
runner variance), while simulated-clock metrics and pipeline counters are
seed-deterministic and machine-independent, so they carry tight bands and
catch real algorithmic regressions even when the baseline was produced on
different hardware.
"""

from __future__ import annotations

import json
import platform
import re
import time
from dataclasses import dataclass
from pathlib import Path

from repro.bench.workloads import (
    FamilySpec,
    generate_family_database,
    generate_read_queries,
)
from repro.core.framework import Mendel
from repro.core.params import MendelConfig, QueryParams
from repro.obs.metrics import MetricsRegistry

SCHEMA_VERSION = 1
SUITE_NAME = "repro-regress"

#: Wall-clock band: flag only ~2x slowdowns (CI runners vary widely).
WALL_TOLERANCE = 0.9
#: Simulated-clock band: the sim is seed-deterministic; drift is a change.
SIM_TOLERANCE = 0.05
#: Counter band: pipeline counters are exactly reproducible.
COUNT_TOLERANCE = 0.02
#: Throughput band (direction "higher"): flag drops below 0.55x baseline.
THROUGHPUT_TOLERANCE = 0.45

_BENCH_RE = re.compile(r"^BENCH_(\d+)\.json$")


@dataclass(frozen=True)
class Metric:
    """One measurement plus the band it promises to stay inside."""

    value: float
    unit: str
    direction: str  # "lower" | "higher" | "stable"
    tolerance: float

    def __post_init__(self) -> None:
        if self.direction not in ("lower", "higher", "stable"):
            raise ValueError(f"bad metric direction {self.direction!r}")
        if self.tolerance < 0:
            raise ValueError(f"tolerance must be >= 0, got {self.tolerance}")

    def to_dict(self) -> dict:
        return {
            "value": round(float(self.value), 6),
            "unit": self.unit,
            "direction": self.direction,
            "tolerance": self.tolerance,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "Metric":
        return cls(
            value=float(raw["value"]),
            unit=str(raw.get("unit", "")),
            direction=str(raw.get("direction", "lower")),
            tolerance=float(raw.get("tolerance", 0.0)),
        )


@dataclass(frozen=True)
class Regression:
    """One metric that left its tolerance band versus the baseline."""

    workload: str
    metric: str
    baseline: float
    current: float
    unit: str
    direction: str
    tolerance: float

    @property
    def ratio(self) -> float:
        if self.baseline == 0:
            return float("inf") if self.current else 1.0
        return self.current / self.baseline

    def describe(self) -> str:
        return (
            f"{self.workload}.{self.metric}: {self.baseline:g} -> "
            f"{self.current:g} {self.unit} ({self.ratio:.2f}x, "
            f"direction={self.direction}, tolerance={self.tolerance:g})"
        )


class SchemaMismatch(ValueError):
    """Baseline and current BENCH files use different schema versions."""


# -- workloads -------------------------------------------------------------------


def _wall(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def run_suite(seed: int = 23) -> dict:
    """Execute the canonical workloads; returns the BENCH report dict."""
    workloads: dict[str, dict] = {}

    # -- index build -----------------------------------------------------------
    spec = FamilySpec(families=30, members_per_family=4, length=150)
    config = MendelConfig(group_count=4, group_size=3, seed=seed)
    database = generate_family_database(spec, rng=seed)
    mendel, build_wall = _wall(lambda: Mendel.build(database, config))
    stats = mendel.index.stats
    workloads["index_build"] = {
        "metrics": {
            "wall_s": Metric(build_wall, "s", "lower", WALL_TOLERANCE).to_dict(),
            "sim_makespan_s": Metric(
                stats.simulated_makespan, "s", "lower", SIM_TOLERANCE
            ).to_dict(),
            "blocks": Metric(
                stats.block_count, "blocks", "stable", 0.0
            ).to_dict(),
            "hash_evals": Metric(
                stats.hash_evals, "evals", "stable", COUNT_TOLERANCE
            ).to_dict(),
        }
    }

    # -- query sweep (fig6a shape at fixed laptop scale) -----------------------
    params = QueryParams(k=8, n=6, i=0.8)
    sweep_metrics: dict[str, dict] = {}
    sweep_queries = []
    total_evals = 0
    total_candidates = 0
    sweep_wall = 0.0
    for length in (300, 600, 900):
        queries = generate_read_queries(
            database, 1, length, rng=seed + length, id_prefix=f"sweep-{length}"
        )
        sweep_queries.extend(queries)
        reports, wall = _wall(
            lambda queries=queries: [mendel.query(q, params) for q in queries]
        )
        sweep_wall += wall
        sim_ms = 1e3 * sum(r.stats.turnaround for r in reports) / len(reports)
        sweep_metrics[f"sim_turnaround_ms_len{length}"] = Metric(
            sim_ms, "ms", "lower", SIM_TOLERANCE
        ).to_dict()
        total_evals += sum(r.stats.node_evals for r in reports)
        total_candidates += sum(r.stats.candidate_hits for r in reports)
    sweep_metrics["wall_s"] = Metric(
        sweep_wall, "s", "lower", WALL_TOLERANCE
    ).to_dict()
    sweep_metrics["distance_evals"] = Metric(
        total_evals, "evals", "stable", COUNT_TOLERANCE
    ).to_dict()
    sweep_metrics["knn_candidates"] = Metric(
        total_candidates, "candidates", "stable", COUNT_TOLERANCE
    ).to_dict()
    workloads["query_sweep"] = {"metrics": sweep_metrics}

    # -- serving throughput ----------------------------------------------------
    from repro.serve.service import QueryService

    burst = [q for q in sweep_queries for _ in range(4)]
    registry = MetricsRegistry()  # private: percentile reservoirs start clean
    service = QueryService(
        mendel,
        max_workers=4,
        batch_window=0.0,
        cache_capacity=0,
        tracing=False,
        registry=registry,
    )
    try:
        start = time.perf_counter()
        futures = [service.submit(q, params) for q in burst]
        for future in futures:
            future.result(timeout=120.0)
        serve_wall = time.perf_counter() - start
        latency = service.stats.latency
        workloads["throughput"] = {
            "metrics": {
                "ops_per_s": Metric(
                    len(burst) / max(serve_wall, 1e-9),
                    "ops/s",
                    "higher",
                    THROUGHPUT_TOLERANCE,
                ).to_dict(),
                "latency_p50_ms": Metric(
                    1e3 * latency.percentile(50), "ms", "lower", WALL_TOLERANCE
                ).to_dict(),
                "latency_p95_ms": Metric(
                    1e3 * latency.percentile(95), "ms", "lower", WALL_TOLERANCE
                ).to_dict(),
            }
        }
    finally:
        service.close()

    # -- tiered storage: cold vs warm ------------------------------------------
    from repro.tier.scenario import run_tier_scenario

    tier = run_tier_scenario(seed=seed)
    warm_ms = tier["warm"]["sim_turnaround_ms"]
    cold_ms = tier["cold"]["sim_turnaround_ms"]
    workloads["cold_vs_warm_query"] = {
        "metrics": {
            "wall_s": Metric(
                tier["warm"]["wall_s"] + tier["cold"]["wall_s"],
                "s",
                "lower",
                WALL_TOLERANCE,
            ).to_dict(),
            "sim_turnaround_warm_ms": Metric(
                sum(warm_ms) / len(warm_ms), "ms", "lower", SIM_TOLERANCE
            ).to_dict(),
            "sim_turnaround_cold_ms": Metric(
                sum(cold_ms) / len(cold_ms), "ms", "lower", SIM_TOLERANCE
            ).to_dict(),
            "distance_evals": Metric(
                tier["counters"]["distance_evals"],
                "evals",
                "stable",
                COUNT_TOLERANCE,
            ).to_dict(),
            "result_equivalent": Metric(
                1.0 if tier["equivalent"] else 0.0, "bool", "stable", 0.0
            ).to_dict(),
            "bytes_on_disk": Metric(
                tier["tier"]["bytes_on_disk"], "bytes", "stable", 0.02
            ).to_dict(),
            "compression_ratio": Metric(
                tier["tier"]["compression_ratio"], "x", "higher", 0.1
            ).to_dict(),
            "capacity_x": Metric(
                tier["capacity"]["capacity_x"], "x", "higher", 0.05
            ).to_dict(),
        }
    }

    # -- degraded-mode query ---------------------------------------------------
    victim = mendel.index.topology.nodes[0].node_id
    mendel.fail_node(victim)
    try:
        report, degraded_wall = _wall(
            lambda: mendel.query(sweep_queries[0], params)
        )
        workloads["degraded_query"] = {
            "metrics": {
                "coverage": Metric(
                    report.coverage, "fraction", "higher", SIM_TOLERANCE
                ).to_dict(),
                "sim_turnaround_ms": Metric(
                    1e3 * report.stats.turnaround, "ms", "lower", SIM_TOLERANCE
                ).to_dict(),
                "wall_s": Metric(
                    degraded_wall, "s", "lower", WALL_TOLERANCE
                ).to_dict(),
            }
        }
    finally:
        mendel.recover_node(victim)

    return {
        "schema_version": SCHEMA_VERSION,
        "suite": SUITE_NAME,
        "seed": seed,
        "python": platform.python_version(),
        "workloads": workloads,
    }


# -- BENCH file management -------------------------------------------------------


def find_runs(root: str | Path) -> list[tuple[int, Path]]:
    """``(n, path)`` for every ``BENCH_<n>.json`` under *root*, ascending."""
    root = Path(root)
    runs = []
    if root.is_dir():
        for path in root.iterdir():
            match = _BENCH_RE.match(path.name)
            if match:
                runs.append((int(match.group(1)), path))
    return sorted(runs)


def latest_run(root: str | Path) -> tuple[int, Path] | None:
    runs = find_runs(root)
    return runs[-1] if runs else None


def write_report(report: dict, root: str | Path) -> Path:
    """Persist *report* as the next ``BENCH_<n>.json`` under *root*."""
    runs = find_runs(root)
    next_n = runs[-1][0] + 1 if runs else 1
    path = Path(root) / f"BENCH_{next_n}.json"
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def load_report(path: str | Path) -> dict:
    report = json.loads(Path(path).read_text())
    if not isinstance(report, dict) or "workloads" not in report:
        raise ValueError(f"{path} is not a BENCH report")
    return report


# -- comparator ------------------------------------------------------------------


def compare(current: dict, baseline: dict) -> list[Regression]:
    """Every metric of *current* outside its band versus *baseline*.

    Metrics present in only one report are ignored (the suite is allowed
    to grow); a schema version difference raises :class:`SchemaMismatch`
    because bands and semantics may have changed between versions.
    """
    cur_version = current.get("schema_version")
    base_version = baseline.get("schema_version")
    if cur_version != base_version:
        raise SchemaMismatch(
            f"cannot compare schema v{cur_version} against v{base_version}"
        )
    regressions: list[Regression] = []
    for workload, payload in sorted(current.get("workloads", {}).items()):
        base_payload = baseline.get("workloads", {}).get(workload)
        if base_payload is None:
            continue
        for name, raw in sorted(payload.get("metrics", {}).items()):
            base_raw = base_payload.get("metrics", {}).get(name)
            if base_raw is None:
                continue
            metric = Metric.from_dict(raw)
            base_value = float(base_raw["value"])
            if _regressed(metric, base_value):
                regressions.append(
                    Regression(
                        workload=workload,
                        metric=name,
                        baseline=base_value,
                        current=metric.value,
                        unit=metric.unit,
                        direction=metric.direction,
                        tolerance=metric.tolerance,
                    )
                )
    return regressions


def _regressed(metric: Metric, baseline: float) -> bool:
    value, tol = metric.value, metric.tolerance
    if metric.direction == "lower":
        if baseline == 0:
            return value > tol
        return value > baseline * (1 + tol)
    if metric.direction == "higher":
        return value < baseline * (1 - tol)
    return abs(value - baseline) > tol * max(abs(baseline), 1.0)


def format_report(report: dict) -> str:
    """One-line-per-metric rendering of a BENCH report."""
    lines = [
        f"{report.get('suite', SUITE_NAME)} "
        f"(schema v{report.get('schema_version')}, seed {report.get('seed')})"
    ]
    for workload, payload in sorted(report.get("workloads", {}).items()):
        lines.append(f"  {workload}:")
        for name, raw in sorted(payload.get("metrics", {}).items()):
            metric = Metric.from_dict(raw)
            lines.append(
                f"    {name:<26}{metric.value:>14.4f} {metric.unit:<10} "
                f"[{metric.direction}, tol {metric.tolerance:g}]"
            )
    return "\n".join(lines)


def format_comparison(
    regressions: list[Regression], baseline_path: Path | str
) -> str:
    if not regressions:
        return f"no regressions against {baseline_path}"
    lines = [f"{len(regressions)} regression(s) against {baseline_path}:"]
    lines.extend(f"  REGRESSION {r.describe()}" for r in regressions)
    return "\n".join(lines)
