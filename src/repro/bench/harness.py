"""Result-table formatting for the per-figure benchmark harness.

The benchmarks print the same rows/series the paper's figures report;
:func:`format_table` renders them as aligned ASCII so the output of
``pytest benchmarks/ --benchmark-only`` is directly comparable to the
figures, and :func:`series_summary` condenses a series into the shape
measures (slope ratios, crossovers) the assertions check.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, Any]],
    headers: Sequence[str] | None = None,
    title: str = "",
    float_format: str = "{:.4g}",
) -> str:
    """Render *rows* (dicts) as an aligned ASCII table."""
    rows = list(rows)
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if headers is None:
        headers = list(rows[0].keys())

    def fmt(value: Any) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    table = [[fmt(row.get(h, "")) for h in headers] for row in rows]
    widths = [
        max(len(str(h)), *(len(line[i]) for line in table))
        for i, h in enumerate(headers)
    ]
    sep = "  "
    lines = []
    if title:
        lines.append(title)
    lines.append(sep.join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append(sep.join("-" * w for w in widths))
    for line in table:
        lines.append(sep.join(line[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def growth_ratio(xs: Sequence[float], ys: Sequence[float]) -> float:
    """How strongly *ys* grows over the measured range of *xs*:
    ``(y_last / y_first)`` normalised by ``(x_last / x_first)``.

    1.0 means linear growth; << 1 means flat/sublinear; values near 0 mean
    essentially constant.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need two aligned points at least")
    if xs[0] <= 0 or ys[0] <= 0:
        raise ValueError("growth ratio requires positive first values")
    return (ys[-1] / ys[0]) / (xs[-1] / xs[0])


def speedup(ys: Sequence[float]) -> float:
    """First-to-last ratio of a decreasing series (scalability measure)."""
    if len(ys) < 2:
        raise ValueError("need at least two points")
    if ys[-1] <= 0:
        raise ValueError("last value must be positive")
    return ys[0] / ys[-1]


def series_summary(
    rows: Iterable[Mapping[str, Any]], x_key: str, y_keys: Sequence[str]
) -> dict[str, float]:
    """Growth ratios for each series in *rows* keyed by series name."""
    rows = list(rows)
    xs = [float(r[x_key]) for r in rows]
    return {
        y: growth_ratio(xs, [float(r[y]) for r in rows]) for y in y_keys
    }
