"""Tracing-overhead guard: the fig6a workload with tracing on vs off.

Observability must be close to free: recording a span tree and bumping the
hot-path counters may not meaningfully slow a query down.  This module runs
the same fig6a-style read workload twice — once untraced, once with a
:class:`~repro.obs.trace.TraceContext` per query — taking the **minimum**
wall-clock total over several repetitions of each mode (min-of-N damps
scheduler noise far better than the mean), and fails when the traced run is
more than ``--max-overhead`` slower.

Runnable standalone (CI wires it in as a gate)::

    PYTHONPATH=src python -m repro.bench.overhead \
        --out trace.json --max-overhead 0.05

``--out`` additionally writes the traced run's span trees as Chrome
trace-event JSON — the artifact CI uploads for drill-down in Perfetto.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.workloads import (
    FamilySpec,
    generate_family_database,
    generate_read_queries,
)
from repro.core.framework import Mendel
from repro.core.params import MendelConfig, QueryParams
from repro.obs.timer import Stopwatch
from repro.obs.trace import TraceContext


def measure_overhead(
    families: int = 30,
    members_per_family: int = 4,
    sequence_length: int = 200,
    query_length: int = 800,
    query_count: int = 4,
    repetitions: int = 5,
    seed: int = 11,
) -> dict:
    """Min-of-N wall-clock totals for the workload, traced and untraced.

    Returns a dict with ``traced_s`` / ``untraced_s`` (the two minima),
    ``overhead`` (fractional slowdown of tracing), and ``roots`` (the span
    trees of the last traced repetition, for the Chrome artifact).
    """
    spec = FamilySpec(
        families=families,
        members_per_family=members_per_family,
        length=sequence_length,
    )
    database = generate_family_database(spec, rng=seed)
    mendel = Mendel.build(database, MendelConfig(group_count=4, group_size=3))
    queries = generate_read_queries(
        database, query_count, query_length, rng=seed + query_length,
        id_prefix="overhead",
    )
    params = QueryParams(k=8, n=6, i=0.9)

    # Warm both paths (imports, caches, first-touch allocations) before
    # anything is timed.
    warm = queries.records[0]
    mendel.query(warm, params)
    mendel.query(warm, params, trace_ctx=TraceContext())

    untraced = Stopwatch()
    traced = Stopwatch()
    roots: list = []
    # Interleave the modes so drift (thermal, other processes) hits both.
    for _ in range(repetitions):
        with untraced:
            for query in queries:
                mendel.query(query, params)
        roots = []
        with traced:
            for query in queries:
                ctx = TraceContext()
                report = mendel.query(query, params, trace_ctx=ctx)
                roots.append(report.root_span)

    untraced_s = min(untraced.laps)
    traced_s = min(traced.laps)
    return {
        "untraced_s": untraced_s,
        "traced_s": traced_s,
        "overhead": traced_s / untraced_s - 1.0,
        "queries": len(queries),
        "repetitions": repetitions,
        "roots": roots,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="measure span-tracing overhead on the fig6a workload"
    )
    parser.add_argument("--max-overhead", type=float, default=0.05,
                        help="fail above this fractional slowdown")
    parser.add_argument("--repetitions", type=int, default=5)
    parser.add_argument("--queries", type=int, default=4, dest="query_count")
    parser.add_argument("--out", default=None,
                        help="write the traced run's Chrome trace JSON here")
    parser.add_argument("--json", default=None, dest="json_out",
                        help="write the measurement summary as JSON here")
    args = parser.parse_args(argv)

    result = measure_overhead(
        query_count=args.query_count, repetitions=args.repetitions
    )
    roots = result.pop("roots")
    print(
        f"untraced {result['untraced_s'] * 1e3:.1f} ms, "
        f"traced {result['traced_s'] * 1e3:.1f} ms over "
        f"{result['queries']} queries x {result['repetitions']} reps "
        f"(min-of-N): overhead {result['overhead'] * 100:+.2f}% "
        f"(limit {args.max_overhead * 100:.1f}%)"
    )
    if args.out:
        from repro.obs.export import write_chrome_trace

        count = write_chrome_trace(args.out, roots)
        print(f"wrote {count} trace events to {args.out}")
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2)
    if result["overhead"] > args.max_overhead:
        print(
            f"FAIL: tracing overhead {result['overhead'] * 100:.2f}% exceeds "
            f"the {args.max_overhead * 100:.1f}% budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - CI entry point
    raise SystemExit(main())
