"""Workload generators for the evaluation experiments.

Substitutes for the paper's datasets (see DESIGN.md §4):

* :func:`generate_family_database` — an *nr-like* protein database: gene
  families of homologous sequences at graded identities.  The family
  structure is what the sensitivity and turnaround experiments depend on
  (queries have relatives at known similarity levels), and it also makes the
  vp-prefix LSH meaningful (real sequence databases are highly clustered).
* :func:`generate_read_queries` — *s_aureus / e_coli-like* query sets:
  reads sampled from database sequences with sequencing-error substitutions,
  concatenated to reach a requested query length.
* :func:`sensitivity_groups` — the Fig. 6d protocol: one generated target
  plus groups of mutants at decreasing similarity levels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.seq.alphabet import PROTEIN, Alphabet
from repro.seq.generate import protein_background, random_codes, random_protein
from repro.seq.mutate import mutate_to_identity, sample_read
from repro.seq.records import SequenceRecord, SequenceSet
from repro.util.rng import RandomSource, as_generator
from repro.util.validation import check_fraction, check_positive


@dataclass(frozen=True)
class FamilySpec:
    """Shape of a synthetic nr-like database."""

    families: int = 20
    members_per_family: int = 5
    length: int = 250
    min_identity: float = 0.55
    max_identity: float = 0.95
    length_jitter: float = 0.1

    def __post_init__(self) -> None:
        check_positive("families", self.families)
        check_positive("members_per_family", self.members_per_family)
        check_positive("length", self.length)
        check_fraction("min_identity", self.min_identity)
        check_fraction("max_identity", self.max_identity)
        if self.min_identity > self.max_identity:
            raise ValueError("min_identity must be <= max_identity")
        check_fraction("length_jitter", self.length_jitter)

    @property
    def total_sequences(self) -> int:
        return self.families * self.members_per_family


def generate_family_database(
    spec: FamilySpec = FamilySpec(),
    rng: RandomSource = None,
    alphabet: Alphabet = PROTEIN,
    id_prefix: str = "nr",
) -> SequenceSet:
    """An nr-like database: per family, one ancestor plus mutated members.

    Member identities to the ancestor are drawn uniformly from
    ``[min_identity, max_identity]``; member lengths jitter around
    ``spec.length``.
    """
    gen = as_generator(rng)
    if alphabet.name != "protein":
        raise ValueError("family databases are generated for protein data")
    out = SequenceSet(alphabet=alphabet)
    freqs = protein_background()
    for family in range(spec.families):
        if spec.length_jitter > 0:
            low = max(16, int(round(spec.length * (1 - spec.length_jitter))))
            high = max(low + 1, int(round(spec.length * (1 + spec.length_jitter))) + 1)
            length = int(gen.integers(low, high))
        else:
            length = spec.length
        ancestor = SequenceRecord(
            seq_id=f"{id_prefix}-f{family:04d}-m000",
            codes=random_codes(length, freqs, gen),
            alphabet=alphabet,
            description=f"family {family} ancestor",
        )
        out.add(ancestor)
        for member in range(1, spec.members_per_family):
            identity = float(
                gen.uniform(spec.min_identity, spec.max_identity)
            )
            out.add(
                mutate_to_identity(
                    ancestor,
                    identity,
                    rng=gen,
                    seq_id=f"{id_prefix}-f{family:04d}-m{member:03d}",
                )
            )
    return out


def generate_read_queries(
    database: SequenceSet,
    count: int,
    length: int,
    error_rate: float = 0.02,
    rng: RandomSource = None,
    id_prefix: str = "read",
) -> SequenceSet:
    """A query set of *count* reads of *length*, each stitched from segments
    of database sequences with per-residue sequencing errors.

    Long reads (longer than any single reference) are assembled from several
    sampled segments, mimicking a whole-genome query set mapped against a
    protein database.
    """
    check_positive("count", count)
    check_positive("length", length)
    check_fraction("error_rate", error_rate)
    gen = as_generator(rng)
    records = list(database)
    if not records:
        raise ValueError("database is empty")
    out = SequenceSet(alphabet=database.alphabet)
    for index in range(count):
        pieces: list[np.ndarray] = []
        remaining = length
        while remaining > 0:
            source = records[int(gen.integers(0, len(records)))]
            take = min(remaining, len(source))
            read = sample_read(
                source, take, rng=gen, error_rate=error_rate
            )
            pieces.append(read.codes)
            remaining -= take
        out.add(
            SequenceRecord(
                seq_id=f"{id_prefix}-{index:05d}",
                codes=np.concatenate(pieces),
                alphabet=database.alphabet,
                description=f"synthetic read of length {length}",
            )
        )
    return out


def sensitivity_groups(
    levels: tuple[float, ...] = (0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2),
    group_size: int = 5,
    target_length: int = 1000,
    rng: RandomSource = None,
) -> tuple[SequenceRecord, dict[float, list[SequenceRecord]]]:
    """The Fig. 6d protocol: a generated 1000-residue target plus groups of
    mutants at each similarity level.

    Returns ``(target, {level: [mutants]})``.
    """
    check_positive("group_size", group_size)
    check_positive("target_length", target_length)
    gen = as_generator(rng)
    target = random_protein(target_length, rng=gen, seq_id="sens-target")
    groups: dict[float, list[SequenceRecord]] = {}
    for level in levels:
        check_fraction("similarity level", level)
        groups[level] = [
            mutate_to_identity(
                target, level, rng=gen, seq_id=f"sens-{level:.2f}-{i:02d}"
            )
            for i in range(group_size)
        ]
    return target, groups
