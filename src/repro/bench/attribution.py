"""Bench-delta attribution: ``repro bench diff A.json B.json``.

The regression harness (:mod:`repro.bench.regress`) says *that* a metric
moved; this module says *why*.  Given two BENCH files — and, when present,
the ``PROFILE_<n>.json`` cost profiles captured next to them by
``repro bench --regress --profile`` — it:

1. computes the delta of every metric the two reports share, ranked by
   relative movement;
2. computes, per ``(stage, code-site, counter)`` cell of the two cost
   profiles, how the cell's *share* of its counter total moved between the
   runs (a share that moved is a code path whose relative weight changed —
   the profiler-level signature of a regression or an optimisation);
3. attributes each metric delta to the cells whose counter is relevant to
   it (a metric named after a cost counter attributes to exactly that
   counter; wall/turnaround metrics attribute across all counters);
4. renders the result as a ranked, deterministic ``ATTRIBUTION.md``.

Everything here is a pure function of the input files, so the rendered
markdown is byte-identical across re-runs — CI asserts exactly that.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.bench.regress import Metric
from repro.obs.profile import CostProfiler

PROFILE_SCHEMA_VERSION = 1
PROFILE_SUITE = "repro-profile"

_BENCH_RE = re.compile(r"^BENCH_(\d+)\.json$")

#: metric-name fragments mapped to the cost counters that explain them
#: (checked in order; first hit wins).  Metrics matching no rule — wall
#: clocks, turnarounds, ratios — attribute across every counter.
_METRIC_COUNTER_RULES: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("distance_evals", ("distance_evals",)),
    ("hash_evals", ("distance_evals",)),
    ("knn_candidates", ("knn_candidates", "blocks_scanned")),
    ("candidates", ("knn_candidates", "blocks_scanned")),
    ("cold", ("cold_read_bytes", "cold_read_seeks",
              "cache_hits", "cache_misses")),
    ("bytes_on_disk", ("cold_read_bytes",)),
    ("ops_per_s", ()),  # throughput: all counters
)


def profile_path_for(bench_path: str | Path) -> Path:
    """The ``PROFILE_<n>.json`` sibling of a ``BENCH_<n>.json`` path."""
    bench_path = Path(bench_path)
    match = _BENCH_RE.match(bench_path.name)
    if match:
        return bench_path.with_name(f"PROFILE_{match.group(1)}.json")
    return bench_path.with_name(bench_path.name + ".profile.json")


def profile_report(cost: CostProfiler, seed: int) -> dict:
    """The PROFILE file payload for one captured run (sim side only, so
    the bytes are a pure function of the seed)."""
    return {
        "schema_version": PROFILE_SCHEMA_VERSION,
        "suite": PROFILE_SUITE,
        "seed": seed,
        **cost.to_dict(),
    }


def write_profile(report: dict, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def load_profile(path: str | Path) -> dict | None:
    """The PROFILE dict at *path*, or ``None`` when absent/unreadable."""
    path = Path(path)
    if not path.is_file():
        return None
    try:
        report = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(report, dict) or "counters" not in report:
        return None
    return report


# -- deltas ----------------------------------------------------------------------


def _metric_deltas(bench_a: dict, bench_b: dict) -> list[dict]:
    """Shared metrics of the two reports with their movement, ranked by
    relative change (largest first)."""
    deltas: list[dict] = []
    workloads_b = bench_b.get("workloads", {})
    for workload, payload in sorted(bench_a.get("workloads", {}).items()):
        payload_b = workloads_b.get(workload)
        if payload_b is None:
            continue
        metrics_b = payload_b.get("metrics", {})
        for name, raw_a in sorted(payload.get("metrics", {}).items()):
            raw_b = metrics_b.get(name)
            if raw_b is None:
                continue
            metric_a = Metric.from_dict(raw_a)
            metric_b = Metric.from_dict(raw_b)
            delta = metric_b.value - metric_a.value
            rel = delta / max(abs(metric_a.value), 1e-12)
            deltas.append({
                "workload": workload,
                "metric": name,
                "a": metric_a.value,
                "b": metric_b.value,
                "delta": delta,
                "relative": rel,
                "unit": metric_a.unit,
                "direction": metric_a.direction,
            })
    deltas.sort(key=lambda d: (-abs(d["relative"]),
                               d["workload"], d["metric"]))
    return deltas


def _profile_cells(profile: dict) -> dict[tuple[str, str, str], float]:
    """Flatten a PROFILE dict to ``(stage, site, counter) -> value``."""
    cells: dict[tuple[str, str, str], float] = {}
    for stage, sites in profile.get("counters", {}).items():
        for site, counters in sites.items():
            for counter, value in counters.items():
                cells[(stage, site, counter)] = float(value)
    return cells


def _share_movers(profile_a: dict, profile_b: dict) -> list[dict]:
    """Per-cell share movement between the two profiles, ranked.

    A cell's *share* is its fraction of the counter's total across all
    stages and sites in that profile; the mover list ranks cells by how
    much that share changed — the paths whose relative cost moved.
    """
    cells_a = _profile_cells(profile_a)
    cells_b = _profile_cells(profile_b)
    totals_a: dict[str, float] = {}
    totals_b: dict[str, float] = {}
    for (_s, _c, counter), value in cells_a.items():
        totals_a[counter] = totals_a.get(counter, 0.0) + value
    for (_s, _c, counter), value in cells_b.items():
        totals_b[counter] = totals_b.get(counter, 0.0) + value
    movers: list[dict] = []
    for key in sorted(set(cells_a) | set(cells_b)):
        stage, site, counter = key
        value_a = cells_a.get(key, 0.0)
        value_b = cells_b.get(key, 0.0)
        share_a = value_a / totals_a[counter] if totals_a.get(counter) else 0.0
        share_b = value_b / totals_b[counter] if totals_b.get(counter) else 0.0
        movers.append({
            "stage": stage,
            "site": site,
            "counter": counter,
            "a": value_a,
            "b": value_b,
            "delta": value_b - value_a,
            "share_a": round(share_a, 6),
            "share_b": round(share_b, 6),
            "share_move": round(share_b - share_a, 6),
        })
    movers.sort(key=lambda m: (-abs(m["share_move"]), -abs(m["delta"]),
                               m["stage"], m["site"], m["counter"]))
    return movers


def _counters_for_metric(metric_name: str) -> tuple[str, ...]:
    """The cost counters a metric delta attributes to (empty = all)."""
    lowered = metric_name.lower()
    for fragment, counters in _METRIC_COUNTER_RULES:
        if fragment in lowered:
            return counters
    return ()


def diff(
    bench_a: dict,
    bench_b: dict,
    profile_a: dict | None = None,
    profile_b: dict | None = None,
    label_a: str = "A",
    label_b: str = "B",
    top_movers: int = 5,
) -> dict:
    """The full diff structure ``render_attribution_md`` renders."""
    deltas = _metric_deltas(bench_a, bench_b)
    have_profiles = profile_a is not None and profile_b is not None
    movers = _share_movers(profile_a, profile_b) if have_profiles else []
    attribution: dict[str, list[dict]] = {}
    if have_profiles:
        for delta in deltas:
            counters = _counters_for_metric(delta["metric"])
            relevant = [
                m for m in movers
                if (not counters or m["counter"] in counters)
                and (m["a"] or m["b"])
            ]
            attribution[f"{delta['workload']}.{delta['metric']}"] = (
                relevant[:top_movers]
            )
    return {
        "a": label_a,
        "b": label_b,
        "seed_a": bench_a.get("seed"),
        "seed_b": bench_b.get("seed"),
        "metrics": deltas,
        "have_profiles": have_profiles,
        "movers": movers,
        "attribution": attribution,
    }


# -- rendering -------------------------------------------------------------------


def _fmt(value: float) -> str:
    """Deterministic compact number rendering."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def _fmt_pct(value: float) -> str:
    return f"{value * 100:+.2f}%"


def render_attribution_md(result: dict) -> str:
    """The ranked ATTRIBUTION.md text for a :func:`diff` result —
    a pure function of the diff, so re-renders are byte-identical."""
    lines = [
        "# Bench delta attribution",
        "",
        f"Comparing `{result['a']}` (baseline, seed "
        f"{result['seed_a']}) -> `{result['b']}` (current, seed "
        f"{result['seed_b']}).",
        "",
        "## Metric deltas (ranked by relative movement)",
        "",
    ]
    if not result["metrics"]:
        lines.append("The two reports share no metrics.")
    else:
        lines.append(
            "| rank | workload.metric | baseline | current | delta "
            "| relative | direction |"
        )
        lines.append("|---:|---|---:|---:|---:|---:|---|")
        for rank, delta in enumerate(result["metrics"], start=1):
            lines.append(
                f"| {rank} | {delta['workload']}.{delta['metric']} "
                f"| {_fmt(delta['a'])} | {_fmt(delta['b'])} "
                f"| {_fmt(delta['delta'])} {delta['unit']} "
                f"| {_fmt_pct(delta['relative'])} "
                f"| {delta['direction']} |"
            )
    lines.append("")
    if not result["have_profiles"]:
        lines.extend([
            "## Attribution",
            "",
            "No PROFILE files accompany these bench reports, so metric "
            "deltas cannot be attributed to code sites. Capture them with "
            "`repro bench --regress --profile` (writes `PROFILE_<n>.json` "
            "next to each `BENCH_<n>.json`).",
            "",
        ])
        return "\n".join(lines)
    lines.extend([
        "## Cost-share movement (per stage / code site / counter)",
        "",
        "| stage | site | counter | baseline | current | share move |",
        "|---|---|---|---:|---:|---:|",
    ])
    moved = [m for m in result["movers"] if m["share_move"] or m["delta"]]
    for mover in moved[:20]:
        lines.append(
            f"| {mover['stage']} | `{mover['site']}` | {mover['counter']} "
            f"| {_fmt(mover['a'])} | {_fmt(mover['b'])} "
            f"| {_fmt_pct(mover['share_move'])} |"
        )
    if not moved:
        lines.append("| — | no cost share moved between the runs | | | | |")
    lines.append("")
    lines.extend(["## Per-metric attribution", ""])
    for key, movers in result["attribution"].items():
        lines.append(f"### {key}")
        lines.append("")
        if not movers:
            lines.append(
                "No profiled cost cell is relevant to this metric."
            )
        else:
            for mover in movers:
                lines.append(
                    f"- {mover['stage']} `{mover['site']}` "
                    f"{mover['counter']}: {_fmt(mover['a'])} -> "
                    f"{_fmt(mover['b'])} "
                    f"(share {_fmt_pct(mover['share_move'])})"
                )
        lines.append("")
    return "\n".join(lines).rstrip("\n") + "\n"


def write_attribution(result: dict, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(render_attribution_md(result))
    return path
