"""Benchmark harness: workload generators, per-figure experiment runners,
and result-table formatting."""

from repro.bench.figures import (
    ExperimentResult,
    shape_failures,
    run_fig5_load_balance,
    run_fig6a_query_length,
    run_fig6b_db_size,
    run_fig6c_scalability,
    run_fig6d_sensitivity,
)
from repro.bench.harness import format_table, growth_ratio, series_summary, speedup
from repro.bench.workloads import (
    FamilySpec,
    generate_family_database,
    generate_read_queries,
    sensitivity_groups,
)

__all__ = [
    "ExperimentResult",
    "shape_failures",
    "run_fig5_load_balance",
    "run_fig6a_query_length",
    "run_fig6b_db_size",
    "run_fig6c_scalability",
    "run_fig6d_sensitivity",
    "format_table",
    "growth_ratio",
    "series_summary",
    "speedup",
    "FamilySpec",
    "generate_family_database",
    "generate_read_queries",
    "sensitivity_groups",
]
