"""``repro explore``: the scenario-grid driver behind REPORT.md.

The paper's evaluation varies one axis at a time; real deployments live in
the cross product.  This module sweeps a grid of scenario **cells** —

* traffic mix: ``uniform`` / ``zipf`` (hot-key skew) / ``burst``
  (two-thirds of the queries arrive at once);
* workload: ``protein`` family reads / ``dna`` family reads /
  ``translated`` (DNA reads queried frame-by-frame against a protein
  index);
* chaos intensity: ``none`` / ``light`` (one crash + restart) / ``heavy``
  (a crash plus a straggler under per-subquery deadlines);
* storage: ``ram`` / ``tier`` (spilled to compressed block files behind a
  deliberately tiny page cache)

— running every cell on its own freshly built deployment with a seed
derived deterministically from ``(grid seed, cell name)``.  Each cell's
queries are traced with explicit ``explore-<cell>-q<i>`` trace ids, its
slowest queries are clustered into span-shape families
(:mod:`repro.obs.analyze`), and its numbers are emitted twice: a per-cell
BENCH-schema JSON (validated by the :mod:`repro.bench.regress` comparator)
and one ranked ``REPORT.md`` in which every slow cell is explained by its
dominant trace family and critical-path breakdown.

Everything reported is sim-clock or counter data — no wall-clock values,
no timestamps — so the same ``--seed`` reproduces REPORT.md *byte for
byte* (the acceptance criterion CI's ``explore-smoke`` job checks).
"""

from __future__ import annotations

import json
import platform
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.bench.regress import (
    COUNT_TOLERANCE,
    SCHEMA_VERSION,
    SIM_TOLERANCE,
    Metric,
)
from repro.bench.workloads import (
    FamilySpec,
    generate_family_database,
    generate_read_queries,
)
from repro.core.explain import build_funnel
from repro.core.framework import Mendel
from repro.core.params import MendelConfig, QueryParams
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.obs.analyze import (
    cluster_slow_queries,
    critical_path_table,
    trace_fingerprint,
)
from repro.obs.trace import TraceContext
from repro.seq.alphabet import DNA
from repro.seq.generate import random_set
from repro.seq.mutate import mutate_to_identity
from repro.seq.records import SequenceSet
from repro.seq.translate import six_frame_translations
from repro.tier.store import TierConfig

SUITE_NAME = "repro-explore"

#: hot-key skew pattern for the zipf mix: position i issues base query
#: ``_ZIPF_PICKS[i % len]`` — ~half the traffic hits query 0.
_ZIPF_PICKS = (0, 0, 1, 0, 2, 0, 1, 3, 0, 2)


@dataclass(frozen=True)
class Cell:
    """One scenario cell: a point in the mix x workload x chaos x storage
    cross product."""

    mix: str        # uniform | zipf | burst
    workload: str   # protein | dna | translated
    chaos: str      # none | light | heavy
    storage: str    # ram | tier

    def __post_init__(self) -> None:
        checks = (
            ("mix", self.mix, ("uniform", "zipf", "burst")),
            ("workload", self.workload, ("protein", "dna", "translated")),
            ("chaos", self.chaos, ("none", "light", "heavy")),
            ("storage", self.storage, ("ram", "tier")),
        )
        for axis, value, allowed in checks:
            if value not in allowed:
                raise ValueError(
                    f"bad {axis} {value!r}; expected one of {allowed}"
                )

    @property
    def name(self) -> str:
        return f"{self.mix}-{self.workload}-{self.chaos}-{self.storage}"


#: Named grids.  ``small`` is the CI smoke grid: a 2x2 over (traffic mix,
#: chaos) at fixed protein workload, with one tiered cell riding along.
GRIDS: dict[str, tuple[Cell, ...]] = {
    "small": (
        Cell("uniform", "protein", "none", "ram"),
        Cell("zipf", "protein", "light", "ram"),
        Cell("uniform", "protein", "heavy", "ram"),
        Cell("burst", "protein", "none", "tier"),
    ),
    "medium": (
        Cell("uniform", "protein", "none", "ram"),
        Cell("zipf", "protein", "light", "ram"),
        Cell("uniform", "protein", "heavy", "ram"),
        Cell("burst", "protein", "none", "tier"),
        Cell("burst", "protein", "light", "ram"),
        Cell("uniform", "dna", "none", "ram"),
        Cell("zipf", "dna", "light", "ram"),
        Cell("uniform", "translated", "none", "ram"),
        Cell("zipf", "protein", "none", "tier"),
    ),
    "full": (
        Cell("uniform", "protein", "none", "ram"),
        Cell("zipf", "protein", "none", "ram"),
        Cell("burst", "protein", "none", "ram"),
        Cell("uniform", "protein", "light", "ram"),
        Cell("zipf", "protein", "light", "ram"),
        Cell("burst", "protein", "heavy", "ram"),
        Cell("uniform", "protein", "heavy", "ram"),
        Cell("uniform", "protein", "none", "tier"),
        Cell("burst", "protein", "none", "tier"),
        Cell("zipf", "protein", "light", "tier"),
        Cell("uniform", "dna", "none", "ram"),
        Cell("zipf", "dna", "light", "ram"),
        Cell("burst", "dna", "none", "tier"),
        Cell("uniform", "translated", "none", "ram"),
        Cell("zipf", "translated", "light", "ram"),
    ),
}


@dataclass
class CellResult:
    """One cell's run: per-query entries, clustered families, metrics."""

    cell: Cell
    seed: int
    cell_seed: int
    entries: list[dict]
    slow_entries: list[dict]
    slow_threshold_ms: float
    families: list[dict]
    critical_path: list[dict]
    bench: dict

    @property
    def name(self) -> str:
        return self.cell.name

    @property
    def mean_turnaround_ms(self) -> float:
        values = [e["turnaround_ms"] for e in self.entries]
        return sum(values) / len(values) if values else 0.0

    @property
    def max_turnaround_ms(self) -> float:
        return max((e["turnaround_ms"] for e in self.entries), default=0.0)

    @property
    def degraded_count(self) -> int:
        return sum(1 for e in self.entries if e["degraded"])

    @property
    def dominant_family(self) -> str:
        return self.families[0]["family"] if self.families else "-"


def cell_seed(cell: Cell, seed: int) -> int:
    """The cell's private seed: stable under grid reordering (derived from
    the cell *name*, not its position) and distinct across grid seeds."""
    return (seed * 1_000_003 + zlib.crc32(cell.name.encode())) % (2**31)


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _build_workload(
    cell: Cell, rng_seed: int, query_count: int
) -> tuple[SequenceSet, list, list[str]]:
    """(database, base queries, per-query label suffixes) for the cell."""
    if cell.workload in ("protein", "translated"):
        database = generate_family_database(
            FamilySpec(families=10, members_per_family=4, length=120),
            rng=rng_seed,
        )
    else:  # dna: family structure hand-rolled (the generator is protein-only)
        database = SequenceSet(alphabet=DNA)
        ancestors = random_set(
            count=8, length=150, alphabet=DNA, rng=rng_seed, id_prefix="dfam"
        )
        for fam, ancestor in enumerate(ancestors):
            database.add(ancestor)
            for member in range(1, 4):
                database.add(
                    mutate_to_identity(
                        ancestor,
                        0.9 - 0.08 * member,
                        rng=rng_seed + fam * 7 + member,
                        seq_id=f"dfam-{fam:02d}-m{member}",
                    )
                )
    if cell.workload == "translated":
        reads = random_set(
            count=max(2, query_count // 3),
            length=120,
            alphabet=DNA,
            rng=rng_seed + 1,
            id_prefix="tx",
        )
        queries, labels = [], []
        for i, read in enumerate(reads):
            for j, frame in enumerate(six_frame_translations(read)):
                if len(frame) >= 8:
                    queries.append(frame)
                    labels.append(f"q{i:02d}f{j}")
        return database, queries, labels
    queries = list(
        generate_read_queries(
            database, query_count, length=240, rng=rng_seed + 1,
            id_prefix="read",
        )
    )
    labels = [f"q{i:02d}" for i in range(len(queries))]
    return database, queries, labels


def _arrange_traffic(
    cell: Cell, queries: list, labels: list[str], gap: float
) -> tuple[list, list[str], list[float]]:
    """Apply the traffic mix: the submitted sequence and arrival times."""
    if cell.mix == "zipf":
        n = len(queries)
        picks = [_ZIPF_PICKS[i % len(_ZIPF_PICKS)] % n for i in range(n)]
        queries = [queries[p] for p in picks]
        labels = [f"{labels[p]}r{i}" for i, p in enumerate(picks)]
        arrivals = [i * gap for i in range(n)]
    elif cell.mix == "burst":
        head = max(1, (2 * len(queries)) // 3)
        arrivals = [0.0] * head + [
            (i - head + 1) * 2 * gap for i in range(head, len(queries))
        ]
    else:  # uniform
        arrivals = [i * gap for i in range(len(queries))]
    return queries, labels, arrivals


def _fault_schedule(
    cell: Cell, mendel: Mendel, t_base: float, seed: int
) -> tuple[FaultSchedule | None, float | None]:
    """(schedule, subquery deadline) for the cell's chaos intensity."""
    if cell.chaos == "none":
        return None, None
    groups = mendel.index.topology.groups
    victim = groups[0].nodes[0].node_id
    heartbeat = max(1e-4, t_base / 5.0)
    if cell.chaos == "light":
        events = (
            FaultEvent.crash(t_base * 0.2, victim),
            FaultEvent.restart(t_base * 2.5, victim),
        )
        return (
            FaultSchedule(
                events=events, seed=seed, heartbeat_interval=heartbeat,
                auto_repair=False,
            ),
            None,
        )
    straggler = groups[1 % len(groups)].nodes[-1].node_id
    events = (
        FaultEvent.crash(t_base * 0.1, victim),
        FaultEvent.slowdown(
            0.0, straggler, factor=0.1, duration=t_base * 8.0
        ),
    )
    return (
        FaultSchedule(
            events=events, seed=seed, heartbeat_interval=heartbeat,
            auto_repair=False,
        ),
        t_base * 2.5,
    )


def run_cell(cell: Cell, seed: int = 0, query_count: int = 8) -> CellResult:
    """Run one cell on a fresh deployment; fully deterministic in
    ``(cell, seed, query_count)``."""
    rng_seed = cell_seed(cell, seed)
    database, queries, labels = _build_workload(cell, rng_seed, query_count)
    config = MendelConfig(
        group_count=3, group_size=2, replication=1, sample_size=128,
        seed=rng_seed % 10_000 + 11,
    )
    mendel = Mendel.build(database, config)
    if cell.storage == "tier":
        mendel.spill(
            cache_bytes=4096, config=TierConfig(page_rows=32, cache_bytes=4096)
        )
    params = QueryParams(k=6, n=6, i=0.75)

    # Throwaway calibration query: t_base anchors arrival spacing and every
    # chaos timing to this cell's own scale (sim clock, so deterministic).
    t_base = max(mendel.query(queries[0], params).stats.turnaround, 1e-6)
    gap = t_base * 0.4

    queries, labels, arrivals = _arrange_traffic(cell, queries, labels, gap)
    faults, deadline = _fault_schedule(cell, mendel, t_base, rng_seed)
    contexts = [
        TraceContext(trace_id=f"explore-{cell.name}-{label}")
        for label in labels
    ]
    reports = mendel.engine.run_batch(
        queries,
        params,
        faults=faults,
        subquery_deadline=deadline,
        trace_contexts=contexts,
        arrival_times=arrivals,
    )

    entries = []
    for report in reports:
        root = report.root_span
        fingerprint = trace_fingerprint(root)
        entries.append(
            {
                "query_id": report.query_id,
                "trace_id": report.trace_id,
                "turnaround_ms": round(report.stats.turnaround * 1e3, 3),
                "coverage": report.coverage,
                "degraded": report.degraded,
                "funnel": [s.to_dict() for s in build_funnel(report)],
                "fingerprint": fingerprint.to_dict(),
                "family": fingerprint.family,
                "critical_path": critical_path_table([root]),
            }
        )

    turnarounds = [e["turnaround_ms"] for e in entries]
    threshold = 1.5 * _median(turnarounds)
    slow = [e for e in entries if e["turnaround_ms"] > threshold]
    if not slow:
        # Flat cell: take the top quartile so every cell names a family.
        keep = max(1, len(entries) // 4)
        ranked = sorted(
            entries, key=lambda e: (-e["turnaround_ms"], e["trace_id"])
        )
        slow = ranked[:keep]
        threshold = min(e["turnaround_ms"] for e in slow)
    slow = sorted(slow, key=lambda e: (-e["turnaround_ms"], e["trace_id"]))

    families = cluster_slow_queries(slow)
    critical = critical_path_table(
        [r.root_span for r in reports
         if any(e["trace_id"] == r.trace_id for e in slow)]
    )

    hedged = sum(r.stats.hedged_retries for r in reports)
    evals = sum(r.stats.node_evals for r in reports)
    cold = sum(1 for e in entries if e["fingerprint"]["cold_read"])
    mean_ms = sum(turnarounds) / len(turnarounds)
    makespan = max(
        arrival + report.stats.turnaround
        for arrival, report in zip(arrivals, reports)
    )
    bench = {
        "schema_version": SCHEMA_VERSION,
        "suite": SUITE_NAME,
        "seed": seed,
        "cell": cell.name,
        "python": platform.python_version(),
        "workloads": {
            cell.name: {
                "metrics": {
                    "sim_turnaround_mean_ms": Metric(
                        mean_ms, "ms", "lower", SIM_TOLERANCE
                    ).to_dict(),
                    "sim_turnaround_max_ms": Metric(
                        max(turnarounds), "ms", "lower", SIM_TOLERANCE
                    ).to_dict(),
                    "sim_makespan_ms": Metric(
                        makespan * 1e3, "ms", "lower", SIM_TOLERANCE
                    ).to_dict(),
                    "distance_evals": Metric(
                        float(evals), "evals", "stable", COUNT_TOLERANCE
                    ).to_dict(),
                    "slow_queries": Metric(
                        float(len(slow)), "queries", "stable", 0.0
                    ).to_dict(),
                    "trace_families": Metric(
                        float(len(families)), "families", "stable", 0.0
                    ).to_dict(),
                    "degraded_queries": Metric(
                        float(sum(1 for e in entries if e["degraded"])),
                        "queries", "stable", 0.0,
                    ).to_dict(),
                    "hedged_retries": Metric(
                        float(hedged), "retries", "stable", 0.0
                    ).to_dict(),
                    "cold_read_queries": Metric(
                        float(cold), "queries", "stable", 0.0
                    ).to_dict(),
                }
            }
        },
    }
    return CellResult(
        cell=cell,
        seed=seed,
        cell_seed=rng_seed,
        entries=entries,
        slow_entries=slow,
        slow_threshold_ms=round(threshold, 3),
        families=families,
        critical_path=critical,
        bench=bench,
    )


@dataclass
class ExploreResult:
    """One grid sweep: per-cell results plus the REPORT.md generator."""

    grid: str
    seed: int
    query_count: int
    cells: list[CellResult] = field(default_factory=list)

    def ranked(self) -> list[CellResult]:
        """Cells slowest-first (mean turnaround, ties by name)."""
        return sorted(
            self.cells,
            key=lambda c: (-c.mean_turnaround_ms, c.name),
        )

    def total_families(self) -> int:
        return sum(len(c.families) for c in self.cells)

    def to_markdown(self) -> str:
        """REPORT.md: the ranked cell table, then one section per cell
        naming its slow-query families and critical-path breakdown.

        Sim-clock numbers only (fixed rounding, no wall time, no dates):
        the same seed renders byte-identical markdown.
        """
        lines = [
            "# repro explore report",
            "",
            f"Grid `{self.grid}` | seed {self.seed} | "
            f"{len(self.cells)} cells | {self.query_count} queries/cell "
            "(all times are simulated-cluster milliseconds; wall-clock "
            "values are omitted for reproducibility)",
            "",
            "## Cell ranking (slowest first)",
            "",
            "| rank | cell | mean ms | max ms | slow | degraded | "
            "dominant slow family |",
            "|---:|---|---:|---:|---:|---:|---|",
        ]
        for rank, cell in enumerate(self.ranked(), start=1):
            lines.append(
                f"| {rank} | `{cell.name}` | {cell.mean_turnaround_ms:.3f} "
                f"| {cell.max_turnaround_ms:.3f} | {len(cell.slow_entries)} "
                f"| {cell.degraded_count} | {cell.dominant_family} |"
            )
        for cell in self.ranked():
            lines.extend(self._cell_section(cell))
        return "\n".join(lines) + "\n"

    def _cell_section(self, cell: CellResult) -> list[str]:
        spec = cell.cell
        lines = [
            "",
            f"## `{cell.name}`",
            "",
            f"Traffic `{spec.mix}`, workload `{spec.workload}`, chaos "
            f"`{spec.chaos}`, storage `{spec.storage}` "
            f"(cell seed {cell.cell_seed}).",
            "",
            f"Mean turnaround {cell.mean_turnaround_ms:.3f} ms, max "
            f"{cell.max_turnaround_ms:.3f} ms; {len(cell.slow_entries)} of "
            f"{len(cell.entries)} queries at or above the "
            f"{cell.slow_threshold_ms:.3f} ms slow threshold, "
            f"{cell.degraded_count} degraded.",
            "",
            "### Slow-query families",
            "",
            "| family | count | share | mean ms | max ms | "
            "exemplar traces |",
            "|---|---:|---:|---:|---:|---|",
        ]
        for family in cell.families:
            exemplars = ", ".join(
                f"`{t}`" for t in family["exemplar_trace_ids"]
            ) or "-"
            lines.append(
                f"| {family['family']} | {family['count']} "
                f"| {family['share'] * 100:.0f}% "
                f"| {family['mean_turnaround_ms']:.3f} "
                f"| {family['max_turnaround_ms']:.3f} "
                f"| {exemplars} |"
            )
        lines.extend(
            [
                "",
                "### Critical path (slow queries)",
                "",
                "| stage | self ms | share | total ms | steps |",
                "|---|---:|---:|---:|---:|",
            ]
        )
        for row in cell.critical_path:
            lines.append(
                f"| {row['stage']} | {row['self_ms']:.3f} "
                f"| {row['share'] * 100:.0f}% | {row['total_ms']:.3f} "
                f"| {row['count']} |"
            )
        return lines

    def write(self, out_dir: str | Path) -> dict[str, Path]:
        """Write ``REPORT.md`` plus one ``explore-<cell>.json`` per cell
        (BENCH schema v1); returns the paths, keyed by artifact name."""
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        paths: dict[str, Path] = {}
        report_path = out_dir / "REPORT.md"
        report_path.write_text(self.to_markdown(), encoding="utf-8")
        paths["REPORT.md"] = report_path
        for cell in self.cells:
            path = out_dir / f"explore-{cell.name}.json"
            path.write_text(
                json.dumps(cell.bench, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            paths[path.name] = path
        return paths


def run_explore(
    grid: str = "small",
    seed: int = 0,
    query_count: int = 8,
    cells: tuple[Cell, ...] | None = None,
) -> ExploreResult:
    """Sweep *grid* (or an explicit *cells* tuple) at *seed*."""
    if cells is None:
        try:
            cells = GRIDS[grid]
        except KeyError:
            raise ValueError(
                f"unknown grid {grid!r}; expected one of {sorted(GRIDS)}"
            ) from None
    result = ExploreResult(grid=grid, seed=seed, query_count=query_count)
    for cell in cells:
        result.cells.append(run_cell(cell, seed=seed, query_count=query_count))
    return result
