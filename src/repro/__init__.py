"""repro — a full reproduction of *Mendel: A Distributed Storage Framework
for Similarity Searching over Sequencing Data* (IPDPS 2016).

Public API highlights:

* :class:`repro.Mendel` — build an index over a reference database on a
  simulated cluster and run similarity queries.
* :class:`repro.MendelConfig` / :class:`repro.QueryParams` — deployment and
  per-query (Table I) parameters.
* :mod:`repro.seq` — sequence substrate (alphabets, FASTA, matrices,
  distances, generators).
* :mod:`repro.vptree` — vantage-point trees (static, dynamic, prefix LSH).
* :mod:`repro.blast` — the from-scratch BLAST baseline used in the paper's
  comparisons.
* :mod:`repro.bench` — workload generators and the per-figure experiment
  harness.
* :mod:`repro.serve` — the concurrent query-serving gateway (thread-pool
  service with admission control, result cache, micro-batching, and an
  asyncio TCP JSON-lines front end).
* :mod:`repro.faults` — the chaos layer: scripted fault injection
  (crashes, stragglers, lossy links, partitions), heartbeat failure
  detection, re-replication, and degraded-mode query reporting.
* :mod:`repro.obs` — observability: span-tree tracing through the query
  pipeline, a Prometheus-style metrics registry shared by the cluster and
  the gateway, and Chrome trace-event / text-exposition exporters.
"""

from repro.core.framework import Mendel
from repro.core.params import MendelConfig, QueryParams
from repro.core.query import QueryReport, QueryStats
from repro.faults.schedule import FaultEvent, FaultSchedule

__version__ = "1.0.0"

__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "Mendel",
    "MendelConfig",
    "QueryParams",
    "QueryReport",
    "QueryStats",
    "__version__",
]
