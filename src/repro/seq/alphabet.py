"""Sequence alphabets and numpy-backed encoding.

Sequences are stored throughout the library as ``numpy.uint8`` code arrays so
that distance kernels, sliding windows, and alignments are pure vector
operations (no Python loops over residues).  An :class:`Alphabet` owns the
letter <-> code mapping and fast bulk encode/decode built on 256-entry lookup
tables.

Two canonical instances are provided:

``DNA``
    ``ACGT`` plus the ambiguity letter ``N``.

``PROTEIN``
    The 20 canonical amino acids in NCBI/BLOSUM order
    (``ARNDCQEGHILKMFPSTWYV``) plus the ambiguity letters ``B``, ``Z``, ``X``
    and the stop ``*``.  The canonical residues occupy codes ``0..19`` so
    scoring matrices index directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

_INVALID = 255  # lookup-table sentinel for letters outside the alphabet


@dataclass(frozen=True)
class Alphabet:
    """An ordered set of residue letters with vectorised encode/decode.

    Parameters
    ----------
    name:
        Human-readable identifier (``"dna"``, ``"protein"``).
    letters:
        The ordered residue letters.  Code ``i`` is ``letters[i]``.
    canonical_size:
        Number of leading letters considered canonical (unambiguous).
        Ambiguity letters (e.g. ``N``, ``X``) get codes ``>= canonical_size``.
    """

    name: str
    letters: str
    canonical_size: int
    _encode_table: np.ndarray = field(init=False, repr=False, compare=False)
    _decode_table: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(set(self.letters)) != len(self.letters):
            raise ValueError(f"duplicate letters in alphabet {self.name!r}")
        if not 0 < self.canonical_size <= len(self.letters):
            raise ValueError(
                f"canonical_size must be in 1..{len(self.letters)}, "
                f"got {self.canonical_size}"
            )
        encode = np.full(256, _INVALID, dtype=np.uint8)
        for code, letter in enumerate(self.letters):
            encode[ord(letter)] = code
            # Accept lower-case input transparently.
            encode[ord(letter.lower())] = code
        decode = np.frombuffer(self.letters.encode("ascii"), dtype=np.uint8).copy()
        object.__setattr__(self, "_encode_table", encode)
        object.__setattr__(self, "_decode_table", decode)

    def __len__(self) -> int:
        return len(self.letters)

    @property
    def size(self) -> int:
        """Total number of letters (canonical + ambiguity)."""
        return len(self.letters)

    def encode(self, text: str | bytes) -> np.ndarray:
        """Encode *text* into a ``uint8`` code array.

        Raises ``ValueError`` if any character is outside the alphabet.
        """
        if isinstance(text, str):
            raw = text.encode("ascii")
        else:
            raw = bytes(text)
        buf = np.frombuffer(raw, dtype=np.uint8)
        codes = self._encode_table[buf]
        if codes.size and codes.max(initial=0) == _INVALID:
            bad_at = int(np.argmax(codes == _INVALID))
            raise ValueError(
                f"invalid {self.name} letter {chr(raw[bad_at])!r} at position {bad_at}"
            )
        return codes

    def decode(self, codes: np.ndarray) -> str:
        """Decode a ``uint8`` code array back into a string."""
        codes = np.asarray(codes, dtype=np.uint8)
        if codes.size and codes.max(initial=0) >= self.size:
            bad = int(codes.max())
            raise ValueError(f"code {bad} out of range for alphabet {self.name!r}")
        return self._decode_table[codes].tobytes().decode("ascii")

    def is_valid(self, text: str) -> bool:
        """Return ``True`` when every character of *text* is in the alphabet."""
        try:
            self.encode(text)
        except ValueError:
            return False
        return True

    def is_canonical(self, codes: np.ndarray) -> np.ndarray:
        """Boolean mask of positions holding canonical (unambiguous) codes."""
        codes = np.asarray(codes)
        return codes < self.canonical_size

    def index_of(self, letter: str) -> int:
        """Code of a single *letter* (case-insensitive)."""
        if len(letter) != 1:
            raise ValueError(f"expected a single letter, got {letter!r}")
        code = int(self._encode_table[ord(letter)])
        if code == _INVALID:
            raise ValueError(f"letter {letter!r} not in alphabet {self.name!r}")
        return code


DNA = Alphabet(name="dna", letters="ACGTN", canonical_size=4)
"""DNA alphabet: ``A C G T`` canonical plus ambiguity ``N``."""

PROTEIN = Alphabet(name="protein", letters="ARNDCQEGHILKMFPSTWYVBZX*", canonical_size=20)
"""Protein alphabet in NCBI/BLOSUM order; codes 0..19 are canonical residues."""


def alphabet_for(name: str) -> Alphabet:
    """Resolve an alphabet by name (``"dna"`` or ``"protein"``)."""
    table = {"dna": DNA, "protein": PROTEIN}
    try:
        return table[name.lower()]
    except KeyError:
        raise ValueError(f"unknown alphabet {name!r}; expected one of {sorted(table)}")
