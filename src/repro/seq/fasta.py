"""Minimal, strict FASTA reader/writer.

Handles the format features genomic reference sets actually use: ``>``
headers with id + optional description, wrapped sequence lines, mixed case,
and blank lines between records.  Parsing is line-oriented and accumulates
into a single encode call per record so large references stay cheap.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from repro.seq.alphabet import Alphabet, alphabet_for
from repro.seq.records import SequenceRecord, SequenceSet


def _iter_fasta_chunks(handle: TextIO) -> Iterator[tuple[str, str]]:
    """Yield ``(header, sequence_text)`` per record from *handle*."""
    header: str | None = None
    parts: list[str] = []
    for line_no, raw in enumerate(handle, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith(">"):
            if header is not None:
                yield header, "".join(parts)
            header = line[1:].strip()
            if not header:
                raise ValueError(f"empty FASTA header at line {line_no}")
            parts = []
        else:
            if header is None:
                raise ValueError(
                    f"sequence data before any FASTA header at line {line_no}"
                )
            parts.append(line)
    if header is not None:
        yield header, "".join(parts)


def read_fasta(
    source: str | Path | TextIO,
    alphabet: Alphabet | str,
) -> SequenceSet:
    """Parse FASTA from a path, string-path, or open handle into a
    :class:`~repro.seq.records.SequenceSet` under *alphabet*."""
    if isinstance(alphabet, str):
        alphabet = alphabet_for(alphabet)
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="ascii") as handle:
            return read_fasta(handle, alphabet)

    result = SequenceSet(alphabet=alphabet)
    for header, text in _iter_fasta_chunks(source):
        seq_id, _, description = header.partition(" ")
        result.add(
            SequenceRecord.from_text(
                seq_id=seq_id,
                text=text,
                alphabet=alphabet,
                description=description,
            )
        )
    return result


def parse_fasta_text(text: str, alphabet: Alphabet | str) -> SequenceSet:
    """Parse FASTA from an in-memory string."""
    return read_fasta(io.StringIO(text), alphabet)


def write_fasta(
    records: Iterable[SequenceRecord],
    target: str | Path | TextIO,
    width: int = 70,
) -> None:
    """Write *records* as FASTA, wrapping sequence lines at *width* columns."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="ascii") as handle:
            write_fasta(records, handle, width)
        return
    for record in records:
        head = record.seq_id
        if record.description:
            head = f"{head} {record.description}"
        target.write(f">{head}\n")
        text = record.text
        for start in range(0, len(text), width):
            target.write(text[start : start + width] + "\n")


def format_fasta(records: Iterable[SequenceRecord], width: int = 70) -> str:
    """Render *records* as a FASTA string."""
    buf = io.StringIO()
    write_fasta(records, buf, width)
    return buf.getvalue()
