"""Sequence substrate: alphabets, records, FASTA IO, scoring matrices,
distances, mutation models, and synthetic generation."""

from repro.seq.alphabet import DNA, PROTEIN, Alphabet, alphabet_for
from repro.seq.distance import (
    HammingDistance,
    MatrixDistance,
    default_distance,
    hamming,
    hamming_batch,
    percent_identity,
)
from repro.seq.fasta import format_fasta, parse_fasta_text, read_fasta, write_fasta
from repro.seq.generate import (
    SWISSPROT_2015_FREQUENCIES,
    dna_background,
    protein_background,
    random_codes,
    random_dna,
    random_protein,
    random_set,
)
from repro.seq.matrices import (
    BLOSUM62,
    MATRIX_ORDER,
    PAM250,
    column_shift,
    dna_matrix,
    mendel_distance_matrix,
    named_matrix,
    validate_metric_matrix,
)
from repro.seq.mutate import (
    MutationModel,
    mutate,
    mutate_to_identity,
    sample_read,
)
from repro.seq.records import SequenceRecord, SequenceSet
from repro.seq.translate import (
    STANDARD_CODE,
    reverse_complement,
    six_frame_translations,
    translate,
    translate_codes,
)

__all__ = [
    "DNA",
    "PROTEIN",
    "Alphabet",
    "alphabet_for",
    "HammingDistance",
    "MatrixDistance",
    "default_distance",
    "hamming",
    "hamming_batch",
    "percent_identity",
    "format_fasta",
    "parse_fasta_text",
    "read_fasta",
    "write_fasta",
    "SWISSPROT_2015_FREQUENCIES",
    "dna_background",
    "protein_background",
    "random_codes",
    "random_dna",
    "random_protein",
    "random_set",
    "BLOSUM62",
    "MATRIX_ORDER",
    "PAM250",
    "column_shift",
    "dna_matrix",
    "mendel_distance_matrix",
    "named_matrix",
    "validate_metric_matrix",
    "MutationModel",
    "mutate",
    "mutate_to_identity",
    "sample_read",
    "SequenceRecord",
    "SequenceSet",
    "STANDARD_CODE",
    "reverse_complement",
    "six_frame_translations",
    "translate",
    "translate_codes",
]
