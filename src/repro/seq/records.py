"""Sequence records: the unit stored in, and returned from, the framework."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.seq.alphabet import Alphabet, alphabet_for


@dataclass(eq=False)
class SequenceRecord:
    """A named sequence with its encoded representation.

    Equality is defined explicitly (``eq=False``): the dataclass-generated
    ``__eq__`` would compare the ``codes`` arrays element-wise inside a
    tuple comparison and raise ``ValueError`` ("truth value of an array
    ... is ambiguous") for any sequence longer than one residue.  Records
    compare by id, alphabet, residues, and description; being mutable, they
    are deliberately unhashable.

    Parameters
    ----------
    seq_id:
        Stable identifier (FASTA header accession, or synthetic id).
    codes:
        ``uint8`` code array under *alphabet*.
    alphabet:
        The owning :class:`~repro.seq.alphabet.Alphabet`.
    description:
        Free-text remainder of the FASTA header, if any.
    """

    seq_id: str
    codes: np.ndarray
    alphabet: Alphabet
    description: str = ""

    def __post_init__(self) -> None:
        self.codes = np.asarray(self.codes, dtype=np.uint8)
        if self.codes.ndim != 1:
            raise ValueError(f"codes must be 1-D, got shape {self.codes.shape}")
        if not self.seq_id:
            raise ValueError("seq_id must be non-empty")

    def __len__(self) -> int:
        return int(self.codes.shape[0])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SequenceRecord):
            return NotImplemented
        return (
            self.seq_id == other.seq_id
            and self.alphabet.name == other.alphabet.name
            and self.description == other.description
            and np.array_equal(self.codes, other.codes)
        )

    __hash__ = None  # mutable: identity-free hashing would be unsound

    @property
    def text(self) -> str:
        """The decoded residue string."""
        return self.alphabet.decode(self.codes)

    def segment(self, start: int, end: int) -> np.ndarray:
        """View (not copy) of codes ``[start:end)`` with bounds checking."""
        if not 0 <= start <= end <= len(self):
            raise IndexError(
                f"segment [{start}, {end}) out of bounds for length {len(self)}"
            )
        return self.codes[start:end]

    @classmethod
    def from_text(
        cls,
        seq_id: str,
        text: str,
        alphabet: Alphabet | str,
        description: str = "",
    ) -> "SequenceRecord":
        """Build a record by encoding *text* under *alphabet* (name or instance)."""
        if isinstance(alphabet, str):
            alphabet = alphabet_for(alphabet)
        return cls(
            seq_id=seq_id,
            codes=alphabet.encode(text),
            alphabet=alphabet,
            description=description,
        )


@dataclass
class SequenceSet:
    """An ordered collection of records sharing one alphabet.

    Provides id-based lookup and aggregate statistics; this is the "database"
    handed to both Mendel and the BLAST baseline.
    """

    alphabet: Alphabet
    records: list[SequenceRecord] = field(default_factory=list)
    _by_id: dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        existing, self.records = self.records, []
        self._by_id = {}
        for record in existing:
            self.add(record)

    def add(self, record: SequenceRecord) -> None:
        if record.alphabet.name != self.alphabet.name:
            raise ValueError(
                f"record alphabet {record.alphabet.name!r} does not match "
                f"set alphabet {self.alphabet.name!r}"
            )
        if record.seq_id in self._by_id:
            raise ValueError(f"duplicate sequence id {record.seq_id!r}")
        self._by_id[record.seq_id] = len(self.records)
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, seq_id: str) -> SequenceRecord:
        try:
            return self.records[self._by_id[seq_id]]
        except KeyError:
            raise KeyError(f"no sequence with id {seq_id!r}") from None

    def __contains__(self, seq_id: str) -> bool:
        return seq_id in self._by_id

    @property
    def total_residues(self) -> int:
        """Total residue count across all records (database size measure)."""
        return sum(len(record) for record in self.records)

    def residue_frequencies(self) -> np.ndarray:
        """Empirical residue frequency over the whole set (length
        ``alphabet.size``); used by the Karlin–Altschul statistics."""
        counts = np.zeros(self.alphabet.size, dtype=np.int64)
        for record in self.records:
            counts += np.bincount(record.codes, minlength=self.alphabet.size)
        total = counts.sum()
        if total == 0:
            raise ValueError("cannot compute frequencies of an empty set")
        return counts / total
