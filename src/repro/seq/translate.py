"""Genetic-code translation and reading frames.

Supports the translated-search workflow (BLASTX-style): a DNA query —
environmental reads, genes — searched against a *protein* reference
database by translating all six reading frames and querying each.  This is
the workflow behind the paper's metagenomics scenario when the reference is
`nr` (a protein database).

The standard genetic code (NCBI translation table 1) is implemented with a
vectorised codon-index lookup: codons become base-4 integers and one fancy
index maps a whole sequence at once.  Codons containing ambiguity bases
translate to ``X``.
"""

from __future__ import annotations

import numpy as np

from repro.seq.alphabet import DNA, PROTEIN
from repro.seq.records import SequenceRecord

#: The standard genetic code as codon-string -> amino-acid letter
#: (``*`` = stop), NCBI translation table 1.
STANDARD_CODE: dict[str, str] = {
    "TTT": "F", "TTC": "F", "TTA": "L", "TTG": "L",
    "CTT": "L", "CTC": "L", "CTA": "L", "CTG": "L",
    "ATT": "I", "ATC": "I", "ATA": "I", "ATG": "M",
    "GTT": "V", "GTC": "V", "GTA": "V", "GTG": "V",
    "TCT": "S", "TCC": "S", "TCA": "S", "TCG": "S",
    "CCT": "P", "CCC": "P", "CCA": "P", "CCG": "P",
    "ACT": "T", "ACC": "T", "ACA": "T", "ACG": "T",
    "GCT": "A", "GCC": "A", "GCA": "A", "GCG": "A",
    "TAT": "Y", "TAC": "Y", "TAA": "*", "TAG": "*",
    "CAT": "H", "CAC": "H", "CAA": "Q", "CAG": "Q",
    "AAT": "N", "AAC": "N", "AAA": "K", "AAG": "K",
    "GAT": "D", "GAC": "D", "GAA": "E", "GAG": "E",
    "TGT": "C", "TGC": "C", "TGA": "*", "TGG": "W",
    "CGT": "R", "CGC": "R", "CGA": "R", "CGG": "R",
    "AGT": "S", "AGC": "S", "AGA": "R", "AGG": "R",
    "GGT": "G", "GGC": "G", "GGA": "G", "GGG": "G",
}


def _codon_table() -> np.ndarray:
    """64-entry lookup: base-4 codon index -> protein code (uint8)."""
    table = np.zeros(64, dtype=np.uint8)
    for codon, amino in STANDARD_CODE.items():
        index = 0
        for base in codon:
            index = index * 4 + DNA.index_of(base)
        table[index] = PROTEIN.index_of(amino)
    return table


_CODON_TABLE = _codon_table()
_X_CODE = PROTEIN.index_of("X")

#: complement map over DNA codes (A<->T, C<->G, N->N)
_COMPLEMENT = np.array(
    [DNA.index_of("T"), DNA.index_of("G"), DNA.index_of("C"),
     DNA.index_of("A"), DNA.index_of("N")],
    dtype=np.uint8,
)


def reverse_complement(codes: np.ndarray) -> np.ndarray:
    """Reverse complement of a DNA code array."""
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.size and codes.max() >= DNA.size:
        raise ValueError("codes are not valid DNA")
    return _COMPLEMENT[codes][::-1]


def translate_codes(codes: np.ndarray, frame: int = 0) -> np.ndarray:
    """Translate DNA *codes* starting at offset *frame* (0, 1, or 2).

    Trailing bases that do not fill a codon are dropped; codons containing
    ambiguity bases (``N``) translate to ``X``; stops translate to ``*``.
    """
    if frame not in (0, 1, 2):
        raise ValueError(f"frame must be 0, 1, or 2, got {frame}")
    codes = np.asarray(codes, dtype=np.uint8)
    usable = (codes.shape[0] - frame) // 3
    if usable <= 0:
        return np.zeros(0, dtype=np.uint8)
    window = codes[frame : frame + usable * 3].reshape(usable, 3)
    ambiguous = (window >= 4).any(axis=1)
    safe = np.where(window >= 4, 0, window).astype(np.int64)
    indices = safe[:, 0] * 16 + safe[:, 1] * 4 + safe[:, 2]
    out = _CODON_TABLE[indices]
    out[ambiguous] = _X_CODE
    return out


def translate(record: SequenceRecord, frame: int = 0) -> SequenceRecord:
    """Translate a DNA record in the given forward *frame*."""
    if record.alphabet.name != "dna":
        raise ValueError(f"can only translate DNA, got {record.alphabet.name}")
    return SequenceRecord(
        seq_id=f"{record.seq_id}|frame+{frame}",
        codes=translate_codes(record.codes, frame),
        alphabet=PROTEIN,
        description=f"translation of {record.seq_id} frame +{frame}",
    )


def six_frame_translations(record: SequenceRecord) -> list[SequenceRecord]:
    """All six reading-frame translations (+0..+2, -0..-2) of a DNA record.

    Frames shorter than one codon are omitted (very short inputs).
    """
    if record.alphabet.name != "dna":
        raise ValueError(f"can only translate DNA, got {record.alphabet.name}")
    out: list[SequenceRecord] = []
    reverse = reverse_complement(record.codes)
    for frame in (0, 1, 2):
        forward = translate_codes(record.codes, frame)
        if forward.size:
            out.append(
                SequenceRecord(
                    seq_id=f"{record.seq_id}|frame+{frame}",
                    codes=forward,
                    alphabet=PROTEIN,
                    description=f"translation of {record.seq_id} frame +{frame}",
                )
            )
        backward = translate_codes(reverse, frame)
        if backward.size:
            out.append(
                SequenceRecord(
                    seq_id=f"{record.seq_id}|frame-{frame}",
                    codes=backward,
                    alphabet=PROTEIN,
                    description=f"translation of {record.seq_id} frame -{frame}",
                )
            )
    return out
