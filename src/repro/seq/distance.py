"""Distance functions over encoded sequences.

Mendel's vp-trees require a *metric* on fixed-length sequence segments
(section III-B of the paper):

* DNA — plain **Hamming distance** (:func:`hamming`), substitutions captured
  exactly; shifts are absorbed upstream by the sliding-window indexing.
* Protein — per-position sum of the **Mendel distance matrix** derived from a
  scoring matrix (:class:`MatrixDistance`), so a Trp–Trp match and a Leu–Leu
  match are both distance 0 while mismatches keep their scoring-matrix
  penalty amplitude.

All kernels are vectorised over ``uint8`` code arrays and support both
one-vs-one and one-vs-many (batched) evaluation; the batched forms are what
the vp-tree hot path uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.seq.alphabet import DNA, PROTEIN, Alphabet
from repro.seq.matrices import BLOSUM62, mendel_distance_matrix


def _check_pair(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.ndim != 1:
        raise ValueError(f"first sequence must be 1-D, got shape {a.shape}")
    if b.shape[-1] != a.shape[0]:
        raise ValueError(
            f"length mismatch: {a.shape[0]} vs {b.shape[-1]} "
            "(Mendel distances are defined over equal-length segments)"
        )
    return a, b


def hamming(a: np.ndarray, b: np.ndarray) -> float:
    """Hamming distance between two equal-length code arrays."""
    a, b = _check_pair(a, b)
    if b.ndim != 1:
        raise ValueError("use hamming_batch for one-vs-many evaluation")
    return float(np.count_nonzero(a != b))


def hamming_batch(query: np.ndarray, batch: np.ndarray) -> np.ndarray:
    """Hamming distance from *query* ``(L,)`` to every row of *batch* ``(n, L)``."""
    query, batch = _check_pair(query, batch)
    if batch.ndim == 1:
        batch = batch[None, :]
    return np.count_nonzero(batch != query[None, :], axis=1).astype(np.float64)


def percent_identity(a: np.ndarray, b: np.ndarray) -> float:
    """Fraction of identical positions between two equal-length segments.

    This is the paper's candidate filter measure:
    ``1 - hamming(a, b) / len(b)``.
    """
    a, b = _check_pair(a, b)
    if a.shape[0] == 0:
        raise ValueError("percent identity undefined for empty segments")
    return 1.0 - hamming(a, b) / a.shape[0]


@dataclass
class MatrixDistance:
    """Metric over equal-length protein segments from a per-residue matrix.

    ``distance(a, b) = sum_p M[a[p], b[p]]`` where ``M`` is a metricised
    per-residue distance matrix (see
    :func:`repro.seq.matrices.mendel_distance_matrix`).  Because ``M`` is a
    metric on residues, the per-position sum is a metric on segments (it is
    the L1 product metric), which is what the vp-tree requires.
    """

    matrix: np.ndarray
    _flat: np.ndarray = field(init=False, repr=False)
    _size: int = field(init=False, repr=False)

    def __post_init__(self) -> None:
        matrix = np.asarray(self.matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"matrix must be square, got shape {matrix.shape}")
        self.matrix = matrix
        self._size = matrix.shape[0]
        self._flat = np.ascontiguousarray(matrix.ravel())

    def __call__(self, a: np.ndarray, b: np.ndarray) -> float:
        a, b = _check_pair(a, b)
        if b.ndim != 1:
            raise ValueError("use .batch for one-vs-many evaluation")
        # Flat gather: M[a, b] == flat[a * size + b]; a single take beats
        # fancy 2-D indexing on the hot path.
        idx = a.astype(np.intp) * self._size + b.astype(np.intp)
        return float(self._flat[idx].sum())

    def batch(self, query: np.ndarray, batch: np.ndarray) -> np.ndarray:
        """Distances from *query* ``(L,)`` to every row of *batch* ``(n, L)``."""
        query, batch = _check_pair(query, batch)
        if batch.ndim == 1:
            batch = batch[None, :]
        idx = query.astype(np.intp)[None, :] * self._size + batch.astype(np.intp)
        return self._flat[idx].sum(axis=1)


@dataclass
class HammingDistance:
    """Callable wrapper around :func:`hamming` with a batched form,
    interface-compatible with :class:`MatrixDistance`."""

    def __call__(self, a: np.ndarray, b: np.ndarray) -> float:
        return hamming(a, b)

    def batch(self, query: np.ndarray, batch: np.ndarray) -> np.ndarray:
        return hamming_batch(query, batch)


def default_distance(alphabet: Alphabet):
    """The paper's default segment metric for *alphabet*:

    Hamming for DNA, metricised BLOSUM62 for protein.
    """
    if alphabet is DNA or alphabet.name == "dna":
        return HammingDistance()
    if alphabet is PROTEIN or alphabet.name == "protein":
        return MatrixDistance(mendel_distance_matrix(BLOSUM62))
    raise ValueError(f"no default distance for alphabet {alphabet.name!r}")
