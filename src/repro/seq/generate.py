"""Synthetic sequence generation.

Substitutes for the paper's reference data (NCBI ``nr``, ``s_aureus`` /
``e_coli`` genomes), which are not available offline.  Protein residues are
drawn from the September-2015 UniProtKB/Swiss-Prot composition the paper
cites (Leu ~9x more frequent than Trp); DNA is uniform over ``ACGT`` by
default with a configurable GC content.

The key structural property the experiments need — that queries have
homologs in the database at graded similarity levels — is produced by
:func:`generate_family_database` in :mod:`repro.bench.workloads`, built on
the primitives here plus :mod:`repro.seq.mutate`.
"""

from __future__ import annotations

import numpy as np

from repro.seq.alphabet import DNA, PROTEIN, Alphabet
from repro.seq.records import SequenceRecord, SequenceSet
from repro.util.rng import RandomSource, as_generator
from repro.util.validation import check_fraction, check_positive

#: UniProtKB/Swiss-Prot release 2015_09 amino-acid composition (fractions),
#: indexed in PROTEIN alphabet order ``ARNDCQEGHILKMFPSTWYV``.  These are the
#: statistics the paper cites when motivating the protein distance function.
SWISSPROT_2015_FREQUENCIES = {
    "A": 0.0826,
    "R": 0.0553,
    "N": 0.0406,
    "D": 0.0546,
    "C": 0.0137,
    "Q": 0.0393,
    "E": 0.0674,
    "G": 0.0708,
    "H": 0.0227,
    "I": 0.0597,
    "L": 0.0966,
    "K": 0.0583,
    "M": 0.0241,
    "F": 0.0386,
    "P": 0.0471,
    "S": 0.0660,
    "T": 0.0534,
    "W": 0.0108,
    "Y": 0.0292,
    "V": 0.0687,
}


def protein_background() -> np.ndarray:
    """Swiss-Prot background frequencies over the full PROTEIN alphabet
    (ambiguity letters get probability 0), normalised to sum to 1."""
    freqs = np.zeros(PROTEIN.size, dtype=np.float64)
    for letter, frac in SWISSPROT_2015_FREQUENCIES.items():
        freqs[PROTEIN.index_of(letter)] = frac
    return freqs / freqs.sum()


def dna_background(gc_content: float = 0.5) -> np.ndarray:
    """DNA background over the full DNA alphabet for a given *gc_content*."""
    check_fraction("gc_content", gc_content)
    at = (1.0 - gc_content) / 2.0
    gc = gc_content / 2.0
    freqs = np.zeros(DNA.size, dtype=np.float64)
    freqs[DNA.index_of("A")] = at
    freqs[DNA.index_of("T")] = at
    freqs[DNA.index_of("G")] = gc
    freqs[DNA.index_of("C")] = gc
    return freqs


def random_codes(
    length: int,
    frequencies: np.ndarray,
    rng: RandomSource = None,
) -> np.ndarray:
    """Draw a ``uint8`` code array of *length* residues from *frequencies*."""
    check_positive("length", length)
    gen = as_generator(rng)
    frequencies = np.asarray(frequencies, dtype=np.float64)
    if not np.isclose(frequencies.sum(), 1.0):
        raise ValueError(f"frequencies must sum to 1, got {frequencies.sum()}")
    return gen.choice(len(frequencies), size=length, p=frequencies).astype(np.uint8)


def random_protein(
    length: int,
    rng: RandomSource = None,
    seq_id: str = "synthetic-protein",
) -> SequenceRecord:
    """A random protein record with Swiss-Prot residue composition."""
    codes = random_codes(length, protein_background(), rng)
    return SequenceRecord(seq_id=seq_id, codes=codes, alphabet=PROTEIN)


def random_dna(
    length: int,
    rng: RandomSource = None,
    gc_content: float = 0.5,
    seq_id: str = "synthetic-dna",
) -> SequenceRecord:
    """A random DNA record with the requested GC content."""
    codes = random_codes(length, dna_background(gc_content), rng)
    return SequenceRecord(seq_id=seq_id, codes=codes, alphabet=DNA)


def random_set(
    count: int,
    length: int,
    alphabet: Alphabet,
    rng: RandomSource = None,
    id_prefix: str = "seq",
    length_jitter: float = 0.0,
) -> SequenceSet:
    """A :class:`SequenceSet` of *count* independent random records.

    ``length_jitter`` in [0, 1) draws each record's length uniformly from
    ``[length * (1 - jitter), length * (1 + jitter)]`` to mimic the length
    spread of real reference sets.
    """
    check_positive("count", count)
    check_fraction("length_jitter", length_jitter)
    gen = as_generator(rng)
    if alphabet.name == "protein":
        freqs = protein_background()
    elif alphabet.name == "dna":
        freqs = dna_background()
    else:
        raise ValueError(f"unsupported alphabet {alphabet.name!r}")

    result = SequenceSet(alphabet=alphabet)
    for index in range(count):
        if length_jitter > 0:
            low = max(1, int(round(length * (1.0 - length_jitter))))
            high = max(low + 1, int(round(length * (1.0 + length_jitter))) + 1)
            n = int(gen.integers(low, high))
        else:
            n = length
        codes = random_codes(n, freqs, gen)
        result.add(
            SequenceRecord(
                seq_id=f"{id_prefix}-{index:06d}", codes=codes, alphabet=alphabet
            )
        )
    return result
