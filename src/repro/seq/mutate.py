"""Mutation models for sensitivity experiments and synthetic homolog families.

The paper's sensitivity benchmark (Fig. 6d) generates groups of sequences by
"randomly mutating residues from the original sequence corresponding to the
desired similarity level".  :func:`mutate_to_identity` implements exactly
that — substitution-only mutation to a target percent identity.
:func:`mutate` additionally models indels, which exercise Mendel's
sliding-window shift tolerance and the gapped-extension path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.seq.alphabet import Alphabet
from repro.seq.records import SequenceRecord
from repro.util.rng import RandomSource, as_generator
from repro.util.validation import check_fraction


def _substitute(
    codes: np.ndarray,
    positions: np.ndarray,
    alphabet: Alphabet,
    gen: np.random.Generator,
) -> np.ndarray:
    """Replace *positions* with uniformly drawn *different* canonical codes."""
    out = codes.copy()
    if positions.size == 0:
        return out
    k = alphabet.canonical_size
    # Draw from k-1 alternatives and skip over the original code: guarantees
    # every selected position actually changes.
    draws = gen.integers(0, k - 1, size=positions.size).astype(np.uint8)
    originals = out[positions]
    draws = np.where(draws >= originals, draws + 1, draws).astype(np.uint8)
    out[positions] = draws
    return out


def mutate_to_identity(
    record: SequenceRecord,
    identity: float,
    rng: RandomSource = None,
    seq_id: str | None = None,
) -> SequenceRecord:
    """Substitution-only mutant of *record* at exactly the target *identity*.

    ``round((1 - identity) * L)`` distinct positions are selected uniformly
    without replacement and each is replaced by a different canonical
    residue, so the Hamming identity of the result is exact (up to the one
    rounding step).
    """
    check_fraction("identity", identity)
    gen = as_generator(rng)
    length = len(record)
    n_mut = int(round((1.0 - identity) * length))
    if n_mut > length:
        raise ValueError("cannot mutate more positions than the sequence length")
    positions = gen.choice(length, size=n_mut, replace=False) if n_mut else np.empty(
        0, dtype=np.intp
    )
    codes = _substitute(record.codes, np.asarray(positions, dtype=np.intp),
                        record.alphabet, gen)
    return SequenceRecord(
        seq_id=seq_id or f"{record.seq_id}|id{identity:.2f}",
        codes=codes,
        alphabet=record.alphabet,
        description=f"mutant of {record.seq_id} at identity {identity:.3f}",
    )


@dataclass(frozen=True)
class MutationModel:
    """Independent per-position mutation model with indels.

    Parameters
    ----------
    substitution_rate:
        Probability a position is substituted by a different residue.
    insertion_rate:
        Expected insertions per position (each insertion adds one random
        canonical residue *after* the position).
    deletion_rate:
        Probability a position is deleted.
    """

    substitution_rate: float = 0.0
    insertion_rate: float = 0.0
    deletion_rate: float = 0.0

    def __post_init__(self) -> None:
        check_fraction("substitution_rate", self.substitution_rate)
        check_fraction("insertion_rate", self.insertion_rate)
        check_fraction("deletion_rate", self.deletion_rate)


def mutate(
    record: SequenceRecord,
    model: MutationModel,
    rng: RandomSource = None,
    seq_id: str | None = None,
) -> SequenceRecord:
    """Apply *model* to *record*, returning a new mutant record.

    Order of operations per position: substitution first, then the position
    may be deleted, then insertions may follow it.  This matches the usual
    read-simulator convention and keeps the three rates independent.
    """
    gen = as_generator(rng)
    alphabet = record.alphabet
    length = len(record)

    codes = record.codes
    if model.substitution_rate > 0 and length:
        mask = gen.random(length) < model.substitution_rate
        codes = _substitute(codes, np.flatnonzero(mask), alphabet, gen)

    keep = np.ones(length, dtype=bool)
    if model.deletion_rate > 0 and length:
        keep = gen.random(length) >= model.deletion_rate

    if model.insertion_rate > 0 and length:
        n_ins = gen.random(length) < model.insertion_rate
        pieces: list[np.ndarray] = []
        insert_positions = np.flatnonzero(n_ins)
        cursor = 0
        for pos in insert_positions:
            segment = codes[cursor : pos + 1][keep[cursor : pos + 1]]
            pieces.append(segment)
            pieces.append(
                np.array([gen.integers(0, alphabet.canonical_size)], dtype=np.uint8)
            )
            cursor = pos + 1
        pieces.append(codes[cursor:][keep[cursor:]])
        out = np.concatenate(pieces) if pieces else codes[keep]
    else:
        out = codes[keep]

    if out.size == 0:
        # Degenerate corner: everything deleted.  Keep one residue so the
        # record stays valid; callers with extreme rates can detect this via
        # the length.
        out = codes[:1].copy() if length else np.zeros(0, dtype=np.uint8)

    return SequenceRecord(
        seq_id=seq_id or f"{record.seq_id}|mut",
        codes=out,
        alphabet=alphabet,
        description=f"mutant of {record.seq_id} ({model})",
    )


def sample_read(
    record: SequenceRecord,
    length: int,
    rng: RandomSource = None,
    error_rate: float = 0.0,
    seq_id: str | None = None,
) -> SequenceRecord:
    """Sample a read of *length* from a uniform random position of *record*,
    with optional sequencing-error substitutions.

    This is how the e_coli / s_aureus style query sets are synthesised: reads
    drawn from a genome with a per-base error rate.
    """
    check_fraction("error_rate", error_rate)
    if length <= 0:
        raise ValueError(f"read length must be positive, got {length}")
    if length > len(record):
        raise ValueError(
            f"read length {length} exceeds sequence length {len(record)}"
        )
    gen = as_generator(rng)
    start = int(gen.integers(0, len(record) - length + 1))
    codes = record.codes[start : start + length].copy()
    if error_rate > 0:
        mask = gen.random(length) < error_rate
        codes = _substitute(codes, np.flatnonzero(mask), record.alphabet, gen)
    return SequenceRecord(
        seq_id=seq_id or f"{record.seq_id}|read@{start}",
        codes=codes,
        alphabet=record.alphabet,
        description=f"read from {record.seq_id} at {start}, error={error_rate}",
    )
