"""Scoring matrices and the Mendel metric transform.

Provides the substitution matrices the paper relies on:

* **BLOSUM62** — the default alignment *scoring* matrix (Henikoff &
  Henikoff 1992), in the standard NCBI 24-letter order
  ``ARNDCQEGHILKMFPSTWYVBZX*`` matching :data:`repro.seq.alphabet.PROTEIN`.
* **PAM250** — Dayhoff point-accepted-mutation matrix, provided for the
  user-configurable ``M`` query parameter (Table I of the paper).
* **DNA match/mismatch** — BLAST-style reward/penalty matrix built by
  :func:`dna_matrix`.

Scoring matrices are *not* metrics (section III-B of the paper), so Mendel
derives a **distance matrix** from a scoring matrix with the column-shift
transform

.. math:: M_{i,j} = B_{i,j} - B_{i,i}

which zeroes the diagonal while preserving the relative penalty amplitude of
each mismatch.  The literal transform is asymmetric; the vp-tree requires a
true metric, so :func:`mendel_distance_matrix` symmetrises with the
element-wise maximum of the two column shifts (see DESIGN.md §4).  The result
is validated to satisfy identity, symmetry, non-negativity, and the triangle
inequality.
"""

from __future__ import annotations

import numpy as np

from repro.seq.alphabet import PROTEIN, Alphabet

#: NCBI residue order shared by BLOSUM62/PAM250 below.
MATRIX_ORDER = "ARNDCQEGHILKMFPSTWYVBZX*"

_BLOSUM62_ROWS = """
 4 -1 -2 -2  0 -1 -1  0 -2 -1 -1 -1 -1 -2 -1  1  0 -3 -2  0 -2 -1  0 -4
-1  5  0 -2 -3  1  0 -2  0 -3 -2  2 -1 -3 -2 -1 -1 -3 -2 -3 -1  0 -1 -4
-2  0  6  1 -3  0  0  0  1 -3 -3  0 -2 -3 -2  1  0 -4 -2 -3  3  0 -1 -4
-2 -2  1  6 -3  0  2 -1 -1 -3 -4 -1 -3 -3 -1  0 -1 -4 -3 -3  4  1 -1 -4
 0 -3 -3 -3  9 -3 -4 -3 -3 -1 -1 -3 -1 -2 -3 -1 -1 -2 -2 -1 -3 -3 -2 -4
-1  1  0  0 -3  5  2 -2  0 -3 -2  1  0 -3 -1  0 -1 -2 -1 -2  0  3 -1 -4
-1  0  0  2 -4  2  5 -2  0 -3 -3  1 -2 -3 -1  0 -1 -3 -2 -2  1  4 -1 -4
 0 -2  0 -1 -3 -2 -2  6 -2 -4 -4 -2 -3 -3 -2  0 -2 -2 -3 -3 -1 -2 -1 -4
-2  0  1 -1 -3  0  0 -2  8 -3 -3 -1 -2 -1 -2 -1 -2 -2  2 -3  0  0 -1 -4
-1 -3 -3 -3 -1 -3 -3 -4 -3  4  2 -3  1  0 -3 -2 -1 -3 -1  3 -3 -3 -1 -4
-1 -2 -3 -4 -1 -2 -3 -4 -3  2  4 -2  2  0 -3 -2 -1 -2 -1  1 -4 -3 -1 -4
-1  2  0 -1 -3  1  1 -2 -1 -3 -2  5 -1 -3 -1  0 -1 -3 -2 -2  0  1 -1 -4
-1 -1 -2 -3 -1  0 -2 -3 -2  1  2 -1  5  0 -2 -1 -1 -1 -1  1 -3 -1 -1 -4
-2 -3 -3 -3 -2 -3 -3 -3 -1  0  0 -3  0  6 -4 -2 -2  1  3 -1 -3 -3 -1 -4
-1 -2 -2 -1 -3 -1 -1 -2 -2 -3 -3 -1 -2 -4  7 -1 -1 -4 -3 -2 -2 -1 -2 -4
 1 -1  1  0 -1  0  0  0 -1 -2 -2  0 -1 -2 -1  4  1 -3 -2 -2  0  0  0 -4
 0 -1  0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1  1  5 -2 -2  0 -1 -1  0 -4
-3 -3 -4 -4 -2 -2 -3 -2 -2 -3 -2 -3 -1  1 -4 -3 -2 11  2 -3 -4 -3 -2 -4
-2 -2 -2 -3 -2 -1 -2 -3  2 -1 -1 -2 -1  3 -3 -2 -2  2  7 -1 -3 -2 -1 -4
 0 -3 -3 -3 -1 -2 -2 -3 -3  3  1 -2  1 -1 -2 -2  0 -3 -1  4 -3 -2 -1 -4
-2 -1  3  4 -3  0  1 -1  0 -3 -4  0 -3 -3 -2  0 -1 -4 -3 -3  4  1 -1 -4
-1  0  0  1 -3  3  4 -2  0 -3 -3  1 -1 -3 -1  0 -1 -3 -2 -2  1  4 -1 -4
 0 -1 -1 -1 -2 -1 -1 -1 -1 -1 -1 -1 -1 -1 -2  0  0 -2 -1 -1 -1 -1 -1 -4
-4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4  1
"""

_PAM250_ORDER = "ARNDCQEGHILKMFPSTWYV"

_PAM250_ROWS = """
 2 -2  0  0 -2  0  0  1 -1 -1 -2 -1 -1 -3  1  1  1 -6 -3  0
-2  6  0 -1 -4  1 -1 -3  2 -2 -3  3  0 -4  0  0 -1  2 -4 -2
 0  0  2  2 -4  1  1  0  2 -2 -3  1 -2 -3  0  1  0 -4 -2 -2
 0 -1  2  4 -5  2  3  1  1 -2 -4  0 -3 -6 -1  0  0 -7 -4 -2
-2 -4 -4 -5 12 -5 -5 -3 -3 -2 -6 -5 -5 -4 -3  0 -2 -8  0 -2
 0  1  1  2 -5  4  2 -1  3 -2 -2  1 -1 -5  0 -1 -1 -5 -4 -2
 0 -1  1  3 -5  2  4  0  1 -2 -3  0 -2 -5 -1  0  0 -7 -4 -2
 1 -3  0  1 -3 -1  0  5 -2 -3 -4 -2 -3 -5  0  1  0 -7 -5 -1
-1  2  2  1 -3  3  1 -2  6 -2 -2  0 -2 -2  0 -1 -1 -3  0 -2
-1 -2 -2 -2 -2 -2 -2 -3 -2  5  2 -2  2  1 -2 -1  0 -5 -1  4
-2 -3 -3 -4 -6 -2 -3 -4 -2  2  6 -3  4  2 -3 -3 -2 -2 -1  2
-1  3  1  0 -5  1  0 -2  0 -2 -3  5  0 -5 -1  0  0 -3 -4 -2
-1  0 -2 -3 -5 -1 -2 -3 -2  2  4  0  6  0 -2 -2 -1 -4 -2  2
-3 -4 -3 -6 -4 -5 -5 -5 -2  1  2 -5  0  9 -5 -3 -3  0  7 -1
 1  0  0 -1 -3  0 -1  0  0 -2 -3 -1 -2 -5  6  1  0 -6 -5 -1
 1  0  1  0  0 -1  0  1 -1 -1 -3  0 -2 -3  1  2  1 -2 -3 -1
 1 -1  0  0 -2 -1  0  0 -1  0 -2  0 -1 -3  0  1  3 -5 -3  0
-6  2 -4 -7 -8 -5 -7 -7 -3 -5 -2 -3 -4  0 -6 -2 -5 17  0 -6
-3 -4 -2 -4  0 -4 -4 -5  0 -1 -1 -4 -2  7 -5 -3 -3  0 10 -2
 0 -2 -2 -2 -2 -2 -2 -1 -2  4  2 -2  2 -1 -1 -1  0 -6 -2  4
"""


def _parse_rows(text: str, order: str) -> np.ndarray:
    rows = [line.split() for line in text.strip().splitlines()]
    matrix = np.array([[int(v) for v in row] for row in rows], dtype=np.int16)
    if matrix.shape != (len(order), len(order)):
        raise AssertionError(
            f"matrix shape {matrix.shape} does not match order length {len(order)}"
        )
    if not np.array_equal(matrix, matrix.T):
        raise AssertionError("substitution matrix literal is not symmetric")
    return matrix


def _expand_to_alphabet(
    matrix: np.ndarray, order: str, alphabet: Alphabet, fill: int
) -> np.ndarray:
    """Reindex *matrix* (given in *order*) onto the full *alphabet*.

    Letters of the alphabet absent from *order* score *fill* against
    everything (and 0... no — ``fill`` on the diagonal too, matching how
    BLAST treats unknown residues pessimistically).
    """
    size = alphabet.size
    out = np.full((size, size), fill, dtype=np.int16)
    codes = np.array([alphabet.index_of(ch) for ch in order])
    out[np.ix_(codes, codes)] = matrix
    return out


BLOSUM62 = _parse_rows(_BLOSUM62_ROWS, MATRIX_ORDER)
"""BLOSUM62 over :data:`MATRIX_ORDER` (24x24, int16)."""

PAM250 = _expand_to_alphabet(
    _parse_rows(_PAM250_ROWS, _PAM250_ORDER), _PAM250_ORDER, PROTEIN, fill=-8
)
"""PAM250 expanded onto the 24-letter protein alphabet (ambiguity fills -8)."""


def dna_matrix(match: int = 5, mismatch: int = -4, n_score: int = -2) -> np.ndarray:
    """BLAST-style DNA scoring matrix over the :data:`repro.seq.alphabet.DNA`
    alphabet (default reward +5 / penalty -4, the classic BLASTN values).

    ``N`` scores *n_score* against everything including itself.
    """
    if match <= 0:
        raise ValueError(f"match reward must be positive, got {match}")
    if mismatch >= 0:
        raise ValueError(f"mismatch penalty must be negative, got {mismatch}")
    out = np.full((5, 5), mismatch, dtype=np.int16)
    np.fill_diagonal(out, match)
    out[4, :] = n_score
    out[:, 4] = n_score
    return out


def named_matrix(name: str) -> np.ndarray:
    """Resolve a scoring matrix by name (``"BLOSUM62"``, ``"PAM250"``,
    ``"DNA"``); the string form is what Table I's ``M`` parameter carries."""
    table = {
        "blosum62": BLOSUM62,
        "pam250": PAM250,
        "dna": dna_matrix(),
    }
    try:
        return table[name.lower()]
    except KeyError:
        raise ValueError(f"unknown scoring matrix {name!r}; expected {sorted(table)}")


def column_shift(matrix: np.ndarray) -> np.ndarray:
    """The paper's literal (asymmetric) transform ``M[i,j] = B[i,j] - B[i,i]``.

    Exposed for the ablation benchmark comparing it with the symmetrised
    metric actually used by the vp-tree.
    """
    matrix = np.asarray(matrix)
    diag = np.diag(matrix).astype(np.int32)
    return matrix.astype(np.int32) - diag[:, None]


def mendel_distance_matrix(matrix: np.ndarray) -> np.ndarray:
    """Metricised per-residue distance matrix derived from a scoring matrix.

    Applies the paper's column shift in both orientations and takes the
    element-wise maximum of their magnitudes::

        M[i, j] = max(|B[i,j] - B[i,i]|, |B[i,j] - B[j,j]|)

    Properties (checked by :func:`validate_metric_matrix` and the test
    suite): zero diagonal, symmetry, non-negativity, and the triangle
    inequality over single residues, so per-position sums over equal-length
    strings form a true metric as the vp-tree requires.
    """
    matrix = np.asarray(matrix, dtype=np.int32)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"scoring matrix must be square, got shape {matrix.shape}")
    shifted = np.abs(column_shift(matrix))
    dist = np.maximum(shifted, shifted.T).astype(np.float64)
    dist = _enforce_triangle(dist)
    validate_metric_matrix(dist)
    return dist


def _enforce_triangle(dist: np.ndarray) -> np.ndarray:
    """Project *dist* onto the metric cone via Floyd–Warshall shortest paths.

    The symmetrised column shift can still contain isolated triangle
    violations (scoring matrices are empirical); the shortest-path closure is
    the canonical minimal correction and leaves already-metric entries
    untouched.
    """
    n = dist.shape[0]
    closed = dist.copy()
    for k in range(n):
        # Vectorised relaxation: closed[i,j] = min(closed[i,j], closed[i,k]+closed[k,j])
        np.minimum(closed, closed[:, k : k + 1] + closed[k : k + 1, :], out=closed)
    return closed


def validate_metric_matrix(dist: np.ndarray, atol: float = 1e-9) -> None:
    """Raise ``ValueError`` if *dist* is not a per-residue metric."""
    dist = np.asarray(dist, dtype=np.float64)
    if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
        raise ValueError(f"distance matrix must be square, got {dist.shape}")
    if np.any(np.abs(np.diag(dist)) > atol):
        raise ValueError("distance matrix diagonal must be zero")
    if np.any(dist < -atol):
        raise ValueError("distance matrix must be non-negative")
    if not np.allclose(dist, dist.T, atol=atol):
        raise ValueError("distance matrix must be symmetric")
    n = dist.shape[0]
    # Triangle inequality: d(i,j) <= d(i,k) + d(k,j) for all k.
    through = dist[:, :, None] + dist[None, :, :]  # (i, k, j) -> d(i,k)+d(k,j)
    best = through.min(axis=1)
    if np.any(dist > best + atol):
        i, j = np.unravel_index(int(np.argmax(dist - best)), dist.shape)
        raise ValueError(
            f"triangle inequality violated at ({i}, {j}): "
            f"d={dist[i, j]} > min path {best[i, j]}"
        )
