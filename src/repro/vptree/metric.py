"""Metric adapter used by every vp-tree variant.

A metric can be supplied either as a plain callable ``f(a, b) -> float`` or
as an object exposing a vectorised ``batch(query, rows) -> ndarray`` (as
:class:`repro.seq.distance.MatrixDistance` does).  :class:`MetricAdapter`
normalises both into one interface and counts evaluations, which the
benchmarks use to compare search-space pruning between systems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class BatchedMetric(Protocol):
    """Structural type for metrics with a vectorised one-vs-many form."""

    def __call__(self, a: np.ndarray, b: np.ndarray) -> float: ...

    def batch(self, query: np.ndarray, rows: np.ndarray) -> np.ndarray: ...


@dataclass
class MetricAdapter:
    """Wrap *metric* with a uniform pair/batch interface and call counting.

    ``pair_evaluations`` counts logical distance evaluations (a batch of n
    rows counts as n), giving a machine-independent work measure.
    """

    metric: Callable[[np.ndarray, np.ndarray], float]
    pair_evaluations: int = field(default=0, init=False)
    _batch_fn: Callable | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        # Resolve the batched form once: runtime Protocol isinstance checks
        # are far too slow for the per-leaf hot path.
        self._batch_fn = getattr(self.metric, "batch", None)

    def pair(self, a: np.ndarray, b: np.ndarray) -> float:
        self.pair_evaluations += 1
        return float(self.metric(a, b))

    def batch(self, query: np.ndarray, rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows)
        if rows.ndim == 1:
            rows = rows[None, :]
        self.pair_evaluations += rows.shape[0]
        if self._batch_fn is not None:
            return np.asarray(self._batch_fn(query, rows), dtype=np.float64)
        return np.array(
            [self.metric(query, row) for row in rows], dtype=np.float64
        )

    def reset_counter(self) -> None:
        self.pair_evaluations = 0
