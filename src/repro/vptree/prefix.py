"""Vantage-point prefix tree: the vp-tree as an LSH function (III-E/III-F).

Each vertex of a vp-tree is annotated with a binary *prefix*: the root has
prefix ``1``; a child left-shifts its parent's prefix and adds ``1`` when it
is the right child.  The prefix is therefore an integral encoding of the
root-to-vertex path, and nearby prefixes correspond (coarsely) to nearby
regions of the metric space.

Used as a hash, the full traversal would be too fine (and too expensive), so
a **cutoff depth threshold** stops the walk early: every element routed to
the same depth-``t`` vertex receives the same hash value — a deliberate
collision that groups similar elements.  The paper sets the threshold to
half the tree's depth (a trade-off ablated in
``benchmarks/test_ablation_prefix_depth.py``).

Two traversal modes exist:

* :meth:`VPPrefixTree.hash_one` — single-path descent used when *indexing*
  (``d <= mu`` goes left, else right);
* :meth:`VPPrefixTree.hash_query` — tolerance descent used when *querying*:
  when the query lies within ``tolerance`` of a vertex boundary the walk
  branches into both children and the subquery is replicated to every
  resulting group (section V-B: "multiple groups can be selected from the
  vp-hash tree if the path branches").

The tree itself is built once over a *sample* of the dataset (it is a shared
cluster-wide hash function, not a per-node index) and is immutable
afterwards, so every node computes identical hashes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.util.rng import RandomSource
from repro.vptree.tree import VPNode, VPTree


@dataclass(frozen=True)
class PrefixHash:
    """Result of hashing one element: the prefix value and the depth at
    which the traversal stopped (cutoff or leaf, whichever came first)."""

    prefix: int
    depth: int


class VPPrefixTree:
    """A frozen vp-tree over a data sample, used as an LSH function.

    Parameters
    ----------
    sample:
        ``(n, L)`` matrix of representative elements used to shape the tree.
    metric:
        Segment metric (pair callable, optionally batched).
    depth_threshold:
        Cutoff depth.  ``None`` applies the paper's default of half the
        built tree's depth.
    bucket_capacity:
        Leaf bucket size of the underlying tree (shapes achievable depth).
    """

    def __init__(
        self,
        sample: np.ndarray,
        metric: Callable[[np.ndarray, np.ndarray], float],
        depth_threshold: int | None = None,
        bucket_capacity: int = 4,
        rng: RandomSource = None,
    ) -> None:
        sample = np.asarray(sample, dtype=np.uint8)
        if sample.ndim != 2 or sample.shape[0] < 2:
            raise ValueError(
                "prefix tree needs a 2-D sample with at least 2 elements, "
                f"got shape {sample.shape}"
            )
        self._tree = VPTree(
            points=sample,
            metric=metric,
            bucket_capacity=bucket_capacity,
            rng=rng,
        )
        built_depth = self._tree.depth
        if depth_threshold is None:
            # Paper default: half the tree's depth, at least 1.
            depth_threshold = max(1, built_depth // 2)
        if depth_threshold < 1:
            raise ValueError(f"depth_threshold must be >= 1, got {depth_threshold}")
        self.depth_threshold = int(depth_threshold)
        self.segment_length = int(sample.shape[1])
        #: Prefixes whose traversal continues one level past the cutoff
        #: (see :meth:`refine`).  Empty by default, so hashing is exactly
        #: the paper's fixed-threshold behaviour unless a group split
        #: deliberately sharpens one region.
        self._refined: set[int] = set()

    @property
    def tree_depth(self) -> int:
        return self._tree.depth

    @property
    def refined_prefixes(self) -> frozenset[int]:
        return frozenset(self._refined)

    def refine(self, prefix: int) -> tuple[int, int]:
        """Descend the frontier one level deeper at *prefix*.

        After refinement, elements that previously hashed to *prefix* hash
        to one of its two children instead — the mechanism behind splitting
        an overloaded single-prefix group (the autoscaler's ``group_split``
        action): the parent region is partitioned along the vp-tree's own
        ball boundary, so the two halves remain metrically coherent.

        Returns ``(left_prefix, right_prefix)``.  Raises :class:`KeyError`
        if *prefix* is not on the current frontier and :class:`ValueError`
        if the frontier vertex is a leaf (no deeper structure to expose).
        Refinement is cumulative and deterministic: the same sequence of
        refinements yields byte-identical hashes on every node.
        """
        node = self._frontier_node(prefix)
        if node is None:
            raise KeyError(f"prefix {prefix} is not on the hash frontier")
        if node.is_leaf:
            raise ValueError(
                f"prefix {prefix} is a leaf bucket and cannot be refined"
            )
        self._refined.add(prefix)
        return (node.left.prefix, node.right.prefix)

    def _frontier_node(self, prefix: int) -> VPNode | None:
        """The frontier vertex carrying *prefix*, or ``None``."""
        stack: list[tuple[VPNode, int]] = [(self._tree.root, 0)]
        while stack:
            node, depth = stack.pop()
            if self._at_frontier(node, depth):
                if node.prefix == prefix:
                    return node
                continue
            stack.append((node.left, depth + 1))
            stack.append((node.right, depth + 1))
        return None

    def _at_frontier(self, node: VPNode, depth: int) -> bool:
        """Whether the walk stops at *node*: a leaf, or at/past the cutoff
        without a refinement pushing the frontier one level further."""
        if node.is_leaf:
            return True
        return depth >= self.depth_threshold and node.prefix not in self._refined

    # -- hashing ------------------------------------------------------------

    def hash_one(self, point: np.ndarray) -> PrefixHash:
        """Single-path prefix hash used for data dispersion."""
        point = self._check(point)
        node = self._tree.root
        depth = 0
        while not self._at_frontier(node, depth):
            dist = self._tree.adapter.pair(point, self._tree.points[node.vantage_index])
            node = node.left if dist <= node.mu else node.right
            depth += 1
        return PrefixHash(prefix=node.prefix, depth=depth)

    def hash_query(self, point: np.ndarray, tolerance: float = 0.0) -> list[PrefixHash]:
        """Tolerance prefix hash used for query routing.

        Branches into both children whenever ``|d - mu| <= tolerance``, so a
        query near a partition boundary reaches every group that may hold
        neighbours.  ``tolerance=0`` reduces to :meth:`hash_one`.
        """
        if tolerance < 0:
            raise ValueError(f"tolerance must be non-negative, got {tolerance}")
        point = self._check(point)
        results: list[PrefixHash] = []
        self._branch_visit(self._tree.root, point, tolerance, 0, results)
        # Deduplicate while preserving traversal order.
        seen: set[int] = set()
        unique = []
        for item in results:
            if item.prefix not in seen:
                seen.add(item.prefix)
                unique.append(item)
        return unique

    def _branch_visit(
        self,
        node: VPNode,
        point: np.ndarray,
        tolerance: float,
        depth: int,
        out: list[PrefixHash],
    ) -> None:
        if self._at_frontier(node, depth):
            out.append(PrefixHash(prefix=node.prefix, depth=depth))
            return
        dist = self._tree.adapter.pair(point, self._tree.points[node.vantage_index])
        go_left = dist <= node.mu + tolerance
        go_right = dist > node.mu - tolerance
        if go_left:
            self._branch_visit(node.left, point, tolerance, depth + 1, out)
        if go_right:
            self._branch_visit(node.right, point, tolerance, depth + 1, out)

    # -- prefix enumeration ----------------------------------------------------

    def all_prefixes(self) -> list[int]:
        """Every prefix reachable at the cutoff depth, in tree (in-order)
        order — adjacent values correspond to adjacent metric regions.

        Used to build the prefix -> group assignment table.
        """
        out: list[int] = []
        self._enumerate(self._tree.root, 0, out)
        return out

    def _enumerate(self, node: VPNode, depth: int, out: list[int]) -> None:
        if self._at_frontier(node, depth):
            out.append(node.prefix)
            return
        self._enumerate(node.left, depth + 1, out)
        self._enumerate(node.right, depth + 1, out)

    def _check(self, point: np.ndarray) -> np.ndarray:
        point = np.asarray(point, dtype=np.uint8)
        if point.shape != (self.segment_length,):
            raise ValueError(
                f"point shape {point.shape} does not match segment length "
                f"{self.segment_length}"
            )
        return point
