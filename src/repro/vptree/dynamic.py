"""Dynamic vp-tree with batch insertion and rebalancing (section III-D).

The original vp-tree is build-once: naive one-at-a-time insertion degrades
it to a linked list.  Following Fu et al. (VLDB J. 2000) as adopted by the
paper, insertion resolves into four cases:

1. the target leaf bucket has room          -> append to the bucket;
2. the leaf is full but its sibling subtree
   has room                                 -> redistribute (rebuild) all
                                               elements under the parent;
3. leaf and sibling full, but some ancestor
   subtree has room                         -> rebuild under that ancestor;
4. the whole tree is at capacity            -> "split the root": rebuild the
                                               entire tree one level taller.

A subtree's *capacity* is structural: a leaf holds ``bucket_capacity``
elements; an internal vertex holds 1 (its vantage point) plus its children's
capacities.  Rebuilds reuse the static construction, so rebuilt subtrees are
balanced by median split.

The paper's practical refinement — **batch insertion** — is `insert_batch`:
large batches trigger a single full rebuild (amortised ``O(n log n)``)
instead of per-element rebalancing; small batches insert individually.
``rebuild_threshold`` controls the cutover and is ablated in
``benchmarks/test_ablation_batch_insert.py``.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.util.rng import RandomSource
from repro.vptree.tree import VPNode, VPTree, _collect_indices


class DynamicVPTree(VPTree):
    """A vp-tree supporting element and batch insertion with rebalancing."""

    def __init__(
        self,
        metric: Callable[[np.ndarray, np.ndarray], float],
        segment_length: int,
        bucket_capacity: int = 16,
        rng: RandomSource = None,
        rebuild_threshold: float = 0.25,
    ) -> None:
        if segment_length < 1:
            raise ValueError(f"segment_length must be >= 1, got {segment_length}")
        if not 0.0 < rebuild_threshold <= 1.0:
            raise ValueError(
                f"rebuild_threshold must be in (0, 1], got {rebuild_threshold}"
            )
        self.segment_length = int(segment_length)
        self.rebuild_threshold = float(rebuild_threshold)
        self.rebalance_count = 0
        self.full_rebuild_count = 0
        empty = np.empty((0, segment_length), dtype=np.uint8)
        super().__init__(
            points=empty, metric=metric, payloads=[], bucket_capacity=bucket_capacity,
            rng=rng,
        )

    # -- capacity accounting ------------------------------------------------

    def _capacity(self, node: VPNode) -> int:
        """Structural capacity of the subtree rooted at *node*."""
        if node.is_leaf:
            return self.bucket_capacity
        left = self._capacity(node.left) if node.left is not None else 0
        right = self._capacity(node.right) if node.right is not None else 0
        return 1 + left + right

    # -- insertion ------------------------------------------------------------

    def insert(self, point: np.ndarray, payload: object | None = None) -> int:
        """Insert one element; returns its row index.

        Applies the four-case rebalancing described in the module docstring.
        """
        point = np.asarray(point, dtype=np.uint8)
        if point.shape != (self.segment_length,):
            raise ValueError(
                f"point shape {point.shape} does not match segment length "
                f"{self.segment_length}"
            )
        index = self._append_point(point, payload)
        if self.root is None:
            self.root = VPNode(bucket=np.array([index], dtype=np.intp))
            return index

        path = self._descend_path(point)
        leaf = path[-1]
        # Case 1: leaf bucket has room.
        if leaf.bucket.shape[0] < self.bucket_capacity:
            leaf.bucket = np.append(leaf.bucket, np.intp(index))
            return index

        # Cases 2/3: walk up to the nearest ancestor with spare capacity.
        for ancestor in reversed(path[:-1]):
            if ancestor.subtree_size() < self._capacity(ancestor):
                self._rebuild_in_place(ancestor, extra=[index])
                self.rebalance_count += 1
                return index

        # Case 4: completely full tree -> split the root (full rebuild grows
        # the height by one).
        self._rebuild_root(extra=[index])
        self.full_rebuild_count += 1
        return index

    def insert_batch(
        self, points: np.ndarray, payloads: Sequence | None = None
    ) -> list[int]:
        """Insert many elements at once (the paper's preferred mode).

        When the batch is larger than ``rebuild_threshold`` times the current
        size the whole tree is rebuilt over the union — keeping it balanced
        at amortised cost — otherwise elements are inserted individually.
        """
        points = np.asarray(points, dtype=np.uint8)
        if points.ndim == 1:
            points = points[None, :]
        if points.shape[1] != self.segment_length:
            raise ValueError(
                f"batch segment length {points.shape[1]} does not match "
                f"{self.segment_length}"
            )
        if payloads is not None and len(payloads) != points.shape[0]:
            raise ValueError(
                f"payload count {len(payloads)} does not match batch size "
                f"{points.shape[0]}"
            )

        current = len(self)
        if current == 0 or points.shape[0] >= self.rebuild_threshold * current:
            indices = [
                self._append_point(points[i], payloads[i] if payloads else None)
                for i in range(points.shape[0])
            ]
            self._rebuild_root(extra=[])
            self.full_rebuild_count += 1
            return indices
        return [
            self.insert(points[i], payloads[i] if payloads else None)
            for i in range(points.shape[0])
        ]

    # -- internals -------------------------------------------------------------

    def _append_point(self, point: np.ndarray, payload: object | None) -> int:
        # Amortised growth: self.points is a view over a doubling backing
        # buffer, so per-element insertion stays O(L) instead of O(nL).
        index = self.points.shape[0]
        storage = getattr(self, "_storage", None)
        if storage is None or index >= storage.shape[0]:
            new_cap = max(64, 2 * (storage.shape[0] if storage is not None else 0))
            grown = np.empty((new_cap, self.segment_length), dtype=np.uint8)
            if index:
                grown[:index] = self.points
            self._storage = grown
        self._storage[index] = point
        self.points = self._storage[: index + 1]
        self.payloads.append(payload if payload is not None else index)
        return index

    def _descend_path(self, point: np.ndarray) -> list[VPNode]:
        """Root-to-leaf path the element would take (left iff ``d <= mu``)."""
        path = [self.root]
        node = self.root
        while not node.is_leaf:
            dist = self.adapter.pair(point, self.points[node.vantage_index])
            node = node.left if dist <= node.mu else node.right
            path.append(node)
        return path

    def _rebuild_in_place(self, node: VPNode, extra: list[int]) -> None:
        """Rebuild the subtree at *node* over its elements plus *extra*."""
        indices = np.array(
            sorted(set(_collect_indices(node)) | set(extra)), dtype=np.intp
        )
        rebuilt = self._build(indices, prefix=node.prefix)
        node.vantage_index = rebuilt.vantage_index
        node.mu = rebuilt.mu
        node.left = rebuilt.left
        node.right = rebuilt.right
        node.bucket = rebuilt.bucket
        node.low = rebuilt.low
        node.high = rebuilt.high

    def _rebuild_root(self, extra: list[int]) -> None:
        all_indices = np.arange(self.points.shape[0], dtype=np.intp)
        del extra  # indices already appended to the point matrix
        self.root = self._build(all_indices, prefix=1) if all_indices.size else None
