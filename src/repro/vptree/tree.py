"""Static bucketed vantage-point tree (Yianilos 1993, section III-A/III-D).

The tree recursively partitions equal-length code vectors around a vantage
point: elements with distance ``<= mu`` (the median) go left, the rest right.
Leaves hold *buckets* of up to ``bucket_capacity`` elements — the first of
the paper's two memory/time optimisations — and every internal vertex keeps
the classic four values (vantage point, radius ``mu``, left child, right
child) plus the subtree's lower/upper distance bounds as seen from the
vantage point (the second optimisation, enabling tighter pruning).

Construction is batch-vectorised: the distance from the vantage point to all
remaining elements is computed with one call to the metric's batched form,
so building over ``n`` elements costs ``O(n log n)`` metric-row evaluations
with no Python-level per-residue work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.util.rng import RandomSource, as_generator
from repro.vptree.metric import MetricAdapter


@dataclass
class VPNode:
    """One vertex of a vp-tree.

    Internal vertices carry ``vantage_index``/``mu`` and two children; leaf
    vertices carry ``bucket`` (indices into the tree's point matrix).  The
    ``low``/``high`` fields bound the distances from this vertex's vantage
    point to everything stored beneath it.
    """

    vantage_index: int = -1
    mu: float = 0.0
    left: "VPNode | None" = None
    right: "VPNode | None" = None
    bucket: np.ndarray | None = None
    low: float = 0.0
    high: float = 0.0
    prefix: int = 1

    @property
    def is_leaf(self) -> bool:
        return self.bucket is not None

    def subtree_size(self) -> int:
        """Number of stored elements beneath (and at) this vertex."""
        if self.is_leaf:
            return int(self.bucket.shape[0])
        size = 1  # the vantage point itself is stored at the vertex
        if self.left is not None:
            size += self.left.subtree_size()
        if self.right is not None:
            size += self.right.subtree_size()
        return size

    def depth(self) -> int:
        """Height of the subtree rooted here (a lone leaf has depth 1)."""
        if self.is_leaf:
            return 1
        left = self.left.depth() if self.left is not None else 0
        right = self.right.depth() if self.right is not None else 0
        return 1 + max(left, right)


class VPTree:
    """Immutable bucketed vp-tree over a matrix of equal-length code vectors.

    Parameters
    ----------
    points:
        ``(n, L)`` ``uint8`` matrix; row ``i`` is element ``i``.
    metric:
        Pair metric, optionally with a vectorised ``batch`` method.
    payloads:
        Optional per-row payloads returned from searches (defaults to row
        indices).
    bucket_capacity:
        Maximum leaf bucket size (paper optimisation 1).
    rng:
        Seed/generator for vantage-point selection.
    """

    def __init__(
        self,
        points: np.ndarray,
        metric: Callable[[np.ndarray, np.ndarray], float],
        payloads: Sequence | None = None,
        bucket_capacity: int = 16,
        rng: RandomSource = None,
    ) -> None:
        points = np.asarray(points, dtype=np.uint8)
        if points.ndim != 2:
            raise ValueError(f"points must be a 2-D matrix, got shape {points.shape}")
        if bucket_capacity < 1:
            raise ValueError(f"bucket_capacity must be >= 1, got {bucket_capacity}")
        self.points = points
        self.adapter = (
            metric if isinstance(metric, MetricAdapter) else MetricAdapter(metric)
        )
        if payloads is None:
            self.payloads: list = list(range(points.shape[0]))
        else:
            self.payloads = list(payloads)
            if len(self.payloads) != points.shape[0]:
                raise ValueError(
                    f"payload count {len(self.payloads)} does not match "
                    f"point count {points.shape[0]}"
                )
        self.bucket_capacity = int(bucket_capacity)
        self._rng = as_generator(rng)
        indices = np.arange(points.shape[0], dtype=np.intp)
        self.root: VPNode | None = (
            self._build(indices, prefix=1) if points.shape[0] else None
        )

    # -- construction -----------------------------------------------------

    def _select_vantage(self, indices: np.ndarray) -> int:
        """Pick a vantage point among *indices* (uniform random; Yianilos'
        sampling heuristic is available through subclassing)."""
        return int(indices[self._rng.integers(0, indices.shape[0])])

    def _build(self, indices: np.ndarray, prefix: int) -> VPNode:
        if indices.shape[0] <= self.bucket_capacity:
            return VPNode(bucket=indices.copy(), prefix=prefix)

        pos = self._select_vantage(indices)
        rest = indices[indices != pos]
        dists = self.adapter.batch(self.points[pos], self.points[rest])
        mu = float(np.median(dists))
        near = dists <= mu
        # Guard against degenerate splits when many elements are equidistant:
        # force both sides non-empty by moving the farthest "near" elements.
        if near.all() or not near.any():
            order = np.argsort(dists, kind="stable")
            half = rest.shape[0] // 2
            near = np.zeros(rest.shape[0], dtype=bool)
            near[order[:half]] = True
            mu = float(dists[order[half - 1]]) if half else float(dists.min())
        node = VPNode(
            vantage_index=pos,
            mu=mu,
            low=float(dists.min()),
            high=float(dists.max()),
            prefix=prefix,
        )
        node.left = self._build(rest[near], prefix=(prefix << 1))
        node.right = self._build(rest[~near], prefix=(prefix << 1) | 1)
        return node

    # -- queries -----------------------------------------------------------

    def knn(
        self, query: np.ndarray, k: int, max_radius: float = float("inf")
    ) -> list[tuple[float, object]]:
        """The *k* nearest stored elements to *query*.

        Returns ``(distance, payload)`` pairs sorted by ascending distance.
        Implements the single-traversal search of section III-C: ``tau``
        starts at ``max_radius`` (default: unbounded) and shrinks to the
        current k-th best distance; subtrees are visited only when the
        ``tau``-ball around the query can intersect them.
        """
        from repro.vptree.search import knn_search  # local import: avoids cycle

        return knn_search(self, query, k, max_radius=max_radius)

    def radius_search(self, query: np.ndarray, radius: float) -> list[tuple[float, object]]:
        """All stored elements within *radius* of *query*."""
        from repro.vptree.search import radius_search

        return radius_search(self, query, radius)

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return 0 if self.root is None else self.root.subtree_size()

    @property
    def depth(self) -> int:
        return 0 if self.root is None else self.root.depth()

    def payload_of(self, index: int):
        return self.payloads[index]

    def validate_invariants(self) -> None:
        """Walk the tree checking the vp-tree partition invariants; raises
        ``AssertionError`` on violation.  Used by the property-based tests.
        """
        if self.root is None:
            return
        self._validate(self.root)

    def _validate(self, node: VPNode) -> None:
        if node.is_leaf:
            if node.bucket.shape[0] > self.bucket_capacity:
                # Leaves are only allowed to exceed capacity transiently in
                # the dynamic tree; the static tree must respect it.
                raise AssertionError(
                    f"leaf bucket size {node.bucket.shape[0]} exceeds capacity "
                    f"{self.bucket_capacity}"
                )
            return
        vantage = self.points[node.vantage_index]
        for child, side in ((node.left, "left"), (node.right, "right")):
            if child is None:
                raise AssertionError(f"internal node missing {side} child")
            for idx in _collect_indices(child):
                dist = self.adapter.pair(vantage, self.points[idx])
                if side == "left" and dist > node.mu:
                    raise AssertionError(
                        f"left-subtree element {idx} at distance {dist} > mu {node.mu}"
                    )
                if side == "right" and dist <= node.mu:
                    raise AssertionError(
                        f"right-subtree element {idx} at distance {dist} <= mu {node.mu}"
                    )
            self._validate(child)


def _collect_indices(node: VPNode) -> list[int]:
    """All point indices stored in the subtree rooted at *node*."""
    out: list[int] = []
    stack = [node]
    while stack:
        current = stack.pop()
        if current.is_leaf:
            out.extend(int(i) for i in current.bucket)
            continue
        out.append(int(current.vantage_index))
        if current.left is not None:
            stack.append(current.left)
        if current.right is not None:
            stack.append(current.right)
    return out
