"""Nearest-neighbour and radius search over vp-trees (paper section III-C).

Both searches are a single traversal with a shrinking ``tau`` radius.  At an
internal vertex with vantage point ``p`` and radius ``mu`` three cases arise
for the query ball ``B(q, tau)``:

1. entirely inside ``B(p, mu)``   -> right subtree pruned;
2. entirely outside ``B(p, mu)``  -> left subtree pruned;
3. intersecting the boundary      -> both subtrees visited.

The stored lower/upper bounds (``node.low``/``node.high``) tighten case
detection beyond the plain ``mu`` test.  Leaf buckets are scored with one
vectorised batch call.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.vptree.tree import VPNode, VPTree


class _KBest:
    """Bounded max-heap of the best (smallest-distance) k candidates.

    ``max_radius`` caps the pruning radius from the start: candidates beyond
    it are never collected and subtrees beyond it are never visited.  Mendel
    passes the largest distance its identity filter could ever accept, so
    bounding is lossless for the query pipeline.
    """

    def __init__(self, k: int, max_radius: float = float("inf")) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.max_radius = float(max_radius)
        self._heap: list[tuple[float, int, int]] = []  # (-dist, tiebreak, index)
        self._counter = itertools.count()

    @property
    def tau(self) -> float:
        """Current pruning radius: the k-th best distance (or the cap)."""
        if len(self._heap) < self.k:
            return self.max_radius
        return min(-self._heap[0][0], self.max_radius)

    def offer(self, dist: float, index: int) -> None:
        if dist > self.max_radius:
            return
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (-dist, next(self._counter), index))
        elif dist < -self._heap[0][0]:
            heapq.heapreplace(self._heap, (-dist, next(self._counter), index))

    def offer_batch(self, dists: np.ndarray, indices: np.ndarray) -> None:
        # Only candidates beating the current tau can matter; pre-filter to
        # keep heap churn low on big buckets.
        tau = self.tau
        if np.isfinite(tau):
            # <= so boundary candidates still enter while the heap is short.
            mask = dists <= tau
            dists, indices = dists[mask], indices[mask]
        order = np.argsort(dists, kind="stable")
        for pos in order:
            self.offer(float(dists[pos]), int(indices[pos]))

    def sorted_items(self) -> list[tuple[float, int]]:
        return sorted((-neg, idx) for neg, _, idx in self._heap)


def knn_search(
    tree: "VPTree",
    query: np.ndarray,
    k: int,
    max_radius: float = float("inf"),
) -> list[tuple[float, object]]:
    """The k nearest elements of *tree* to *query* as ``(distance, payload)``
    pairs, ascending by distance.

    ``max_radius`` restricts results (and the search) to a ball around the
    query — see :class:`_KBest`.
    """
    query = np.asarray(query, dtype=np.uint8)
    if tree.root is None:
        return []
    if query.shape != (tree.points.shape[1],):
        raise ValueError(
            f"query length {query.shape} does not match indexed "
            f"segment length {tree.points.shape[1]}"
        )
    best = _KBest(k, max_radius=max_radius)
    _knn_visit(tree, tree.root, query, best)
    return [(dist, tree.payloads[idx]) for dist, idx in best.sorted_items()]


def _knn_visit(tree: "VPTree", node: "VPNode", query: np.ndarray, best: _KBest) -> None:
    if node.is_leaf:
        if node.bucket.shape[0]:
            dists = tree.adapter.batch(query, tree.points[node.bucket])
            best.offer_batch(dists, node.bucket)
        return

    dist = tree.adapter.pair(query, tree.points[node.vantage_index])
    best.offer(dist, node.vantage_index)

    # Subtree-level reject via the stored bounds: every element beneath this
    # vertex lies at distance within [low, high] of its vantage point, so if
    # the tau-ball around the query cannot reach that annulus, skip it all.
    if dist - best.tau > node.high or dist + best.tau < node.low:
        return

    # Descend the side the query falls on first so tau shrinks early, then
    # re-test the far side against the (possibly smaller) tau.  The left
    # subtree holds distances <= mu, the right holds > mu (section III-C's
    # three cases: both tests pass only when the tau-ball straddles mu).
    if dist <= node.mu:
        if node.left is not None and dist - best.tau <= node.mu:
            _knn_visit(tree, node.left, query, best)
        if node.right is not None and dist + best.tau > node.mu:
            _knn_visit(tree, node.right, query, best)
    else:
        if node.right is not None and dist + best.tau > node.mu:
            _knn_visit(tree, node.right, query, best)
        if node.left is not None and dist - best.tau <= node.mu:
            _knn_visit(tree, node.left, query, best)


def radius_search(
    tree: "VPTree", query: np.ndarray, radius: float
) -> list[tuple[float, object]]:
    """All elements within *radius* of *query*, ascending by distance."""
    query = np.asarray(query, dtype=np.uint8)
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    if tree.root is None:
        return []
    hits: list[tuple[float, int]] = []
    _radius_visit(tree, tree.root, query, float(radius), hits)
    hits.sort()
    return [(dist, tree.payloads[idx]) for dist, idx in hits]


def _radius_visit(
    tree: "VPTree",
    node: "VPNode",
    query: np.ndarray,
    radius: float,
    hits: list[tuple[float, int]],
) -> None:
    if node.is_leaf:
        if node.bucket.shape[0]:
            dists = tree.adapter.batch(query, tree.points[node.bucket])
            mask = dists <= radius
            hits.extend(
                (float(d), int(i)) for d, i in zip(dists[mask], node.bucket[mask])
            )
        return

    dist = tree.adapter.pair(query, tree.points[node.vantage_index])
    if dist <= radius:
        hits.append((dist, int(node.vantage_index)))
    # Subtree-level prune via stored bounds (children's vantage points are
    # included in [low, high], so rejecting here cannot lose hits).
    if dist - radius > node.high or dist + radius < node.low:
        return
    if node.left is not None and dist - radius <= node.mu:
        _radius_visit(tree, node.left, query, radius, hits)
    if node.right is not None and dist + radius > node.mu:
        _radius_visit(tree, node.right, query, radius, hits)
