"""Vantage-point tree substrate: static bucketed trees, k-NN / radius
search, dynamic rebalancing insertion, and the vp-prefix LSH."""

from repro.vptree.dynamic import DynamicVPTree
from repro.vptree.metric import BatchedMetric, MetricAdapter
from repro.vptree.prefix import PrefixHash, VPPrefixTree
from repro.vptree.search import knn_search, radius_search
from repro.vptree.tree import VPNode, VPTree

__all__ = [
    "DynamicVPTree",
    "BatchedMetric",
    "MetricAdapter",
    "PrefixHash",
    "VPPrefixTree",
    "knn_search",
    "radius_search",
    "VPNode",
    "VPTree",
]
