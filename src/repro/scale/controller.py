"""The autoscaler controller: signals -> policy -> topology actions.

One :class:`AutoScaler` watches one deployment through its
:class:`~repro.obs.health.HealthMonitor` and executes at most one
topology action per tick:

* ``add_node`` — tier-2 growth of the hottest group (streaming block
  rebalance via the group's placement hash);
* ``split_group`` — tier-1 repartition of a skewed group, refining the
  vp-prefix frontier one level when the group owns a single prefix;
* ``merge_groups`` / ``remove_node`` — scale-in after a sustained calm
  stretch, never below the deployment's configured shape and never
  violating the replication factor (the index refuses).

Splits and merges run in two phases for in-flight query correctness:
the routing update and block *copy* happen at action time, but the old
copies are dropped only on the **next** tick (``TopologyChange.settle``)
— a dual-ownership window during which queries routed under either
table version still find every block.

Clocking mirrors the health monitor: chaos/scenario runs spawn
:meth:`AutoScaler.tick_proc` on the simulation, the serving gateway
calls :meth:`AutoScaler.maybe_tick` lazily from its read paths.  All
decisions are pure functions of the observed frame, so a run is
byte-deterministic under a fixed ``CHAOS_SEED``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

from repro.core.index import MendelIndex, TopologyChange
from repro.obs.events import EventLog
from repro.obs.health import HealthMonitor
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.scale.policy import (
    ACTION_ADD_NODE,
    ACTION_HOLD,
    ACTION_MERGE_GROUPS,
    ACTION_REMOVE_NODE,
    ACTION_SPLIT_GROUP,
    ScaleDecision,
    ScalerPolicy,
    ScaleSignals,
)


@dataclass
class _PendingSettle:
    """A two-phase topology change awaiting its settle tick."""

    change: TopologyChange
    #: nodes whose storage is dropped at settle (merge sources)
    drained_nodes: tuple[str, ...] = ()
    #: minimum ticks before the settle is considered
    ticks_left: int = 0
    #: when the change was executed (in-flight cutoff for safe settling)
    created_at: float = 0.0


@dataclass
class AutoScaler:
    """Elastic control loop over one :class:`MendelIndex`.

    Parameters
    ----------
    index:
        The deployment to scale.
    monitor:
        Health monitor supplying firing alerts and burn rates; the
        scaler shares its clock and event log unless overridden.
    policy:
        Decision thresholds; defaults to :class:`ScalerPolicy`.
    interval:
        Tick spacing; defaults to twice the monitor's interval (scaling
        decisions should see at least one fresh health tick each).
    queue_depth_fn / queue_capacity:
        Admission-queue occupancy source (the gateway wires these).
    event_log:
        Topology-change event destination; defaults to the monitor's.
    wall:
        ``True`` on the gateway: events carry wall time, and two-phase
        changes settle immediately (no simulation tick to defer to).
    settle_ticks:
        Minimum ticks a two-phase change keeps its dual-ownership window
        open (sim mode only).  When the engine wires
        :attr:`inflight_before`, the window additionally stays open until
        every query that arrived before the change has completed — no
        query ever straddles a copy drop.
    """

    index: MendelIndex
    monitor: HealthMonitor
    policy: ScalerPolicy = field(default_factory=ScalerPolicy)
    interval: float | None = None
    queue_depth_fn: Callable[[], int] | None = None
    queue_capacity: int | None = None
    event_log: EventLog | None = None
    registry: MetricsRegistry | None = None
    wall: bool = False
    settle_ticks: int = 2
    #: set by ``run_batch``: count of queries that arrived before a cutoff
    #: time and are still in flight (guards settles)
    inflight_before: Callable[[float], int] | None = None

    def __post_init__(self) -> None:
        if self.interval is None:
            self.interval = 2.0 * self.monitor.interval
        if self.event_log is None:
            self.event_log = self.monitor.events
        if self.registry is None:
            self.registry = default_registry()
        config = self.index.config
        self._baseline_group_size = config.group_size
        self._baseline_group_count = config.group_count
        self._replication = config.replication
        self._cooldown = 0
        self._idle_ticks = 0
        self._pending: list[_PendingSettle] = []
        self._last_tick: float | None = None
        #: (now, decision) per tick, newest last
        self.decisions: list[tuple[float, ScaleDecision]] = []
        #: executed actions, as event-like dicts
        self.actions: list[dict] = []
        self._m_ticks = self.registry.counter(
            "repro_scaler_ticks_total", "Autoscaler control-loop ticks"
        )
        self._m_decisions = self.registry.counter(
            "repro_scaler_decisions_total",
            "Autoscaler decisions by action (including holds)",
            ("action",),
        )
        self._m_actions = self.registry.counter(
            "repro_scaler_actions_total",
            "Topology actions the autoscaler executed",
            ("action",),
        )
        self._m_groups = self.registry.gauge(
            "repro_scaler_groups", "Storage groups in the scaled topology"
        )
        self._m_nodes = self.registry.gauge(
            "repro_scaler_nodes", "Storage nodes in the scaled topology"
        )

    # -- signal gathering ------------------------------------------------------

    def signals(self, now: float) -> ScaleSignals:
        """Build the immutable observation frame for *now*."""
        topology = self.index.topology
        group_blocks = {g.group_id: 0 for g in topology.groups}
        for node_id in self.index.node_of_block.values():
            gid = node_id.split(".", 1)[0]
            if gid in group_blocks:
                group_blocks[gid] += 1
        group_sizes = {g.group_id: len(g.nodes) for g in topology.groups}
        unhealthy = frozenset(
            g.group_id
            for g in topology.groups
            if any((not n.alive) or n.suspected for n in g.nodes)
        )
        states = self.monitor.slo_engine.states
        firing = tuple(sorted(self.monitor.alerts_firing()))
        max_burn = max(
            (st.burn_fast for st in states.values()), default=0.0
        )
        depth = self.queue_depth_fn() if self.queue_depth_fn else 0
        return ScaleSignals(
            now=now,
            firing=firing,
            max_burn=max_burn,
            queue_depth=depth,
            queue_capacity=self.queue_capacity,
            group_blocks=group_blocks,
            group_sizes=group_sizes,
            unhealthy_groups=unhealthy,
            idle_ticks=self._idle_ticks,
            baseline_group_size=self._baseline_group_size,
            baseline_group_count=self._baseline_group_count,
            replication=self._replication,
        )

    # -- the control loop ------------------------------------------------------

    def tick(self, now: float) -> ScaleDecision:
        """One control-loop iteration: settle, observe, decide, act."""
        self._last_tick = now
        self._m_ticks.inc()
        self._settle_pending(now)
        frame = self.signals(now)
        if self.policy.is_hot(frame):
            self._idle_ticks = 0
        else:
            self._idle_ticks += 1
            frame = replace(frame, idle_ticks=self._idle_ticks)
        decision = self.policy.decide(frame)
        if decision.action != ACTION_HOLD:
            if self._cooldown > 0:
                self._cooldown -= 1
                decision = ScaleDecision(
                    ACTION_HOLD,
                    reason=f"cooldown ({self._cooldown + 1} ticks): "
                    f"wanted {decision.action}",
                )
            else:
                self._execute(now, decision, frame)
                self._cooldown = self.policy.cooldown_ticks
        else:
            self._cooldown = max(0, self._cooldown - 1)
        self.decisions.append((now, decision))
        self._m_decisions.labels(action=decision.action).inc()
        topology = self.index.topology
        self._m_groups.set(float(len(topology.groups)))
        self._m_nodes.set(float(len(topology.nodes)))
        return decision

    def tick_proc(self, sim, stop_at: float):
        """Generator process ticking the scaler on a simulation clock.

        Terminates before *stop_at* (the heap must drain) and settles any
        pending two-phase change on exit so the run ends quiesced.
        """
        while sim.now + self.interval <= stop_at:
            yield self.interval
            self.tick(sim.now)
        self.flush(sim.now)

    def maybe_tick(self, now: float) -> bool:
        """Lazy gateway clocking: tick if an interval elapsed since the
        last one.  Returns whether a tick ran."""
        if self._last_tick is not None and now - self._last_tick < self.interval:
            return False
        self.tick(now)
        return True

    def flush(self, now: float) -> None:
        """Settle every pending two-phase change immediately."""
        self._settle_pending(now, force=True)

    # -- execution -------------------------------------------------------------

    def _settle_pending(self, now: float, force: bool = False) -> None:
        keep: list[_PendingSettle] = []
        for item in self._pending:
            item.ticks_left -= 1
            straddlers = (
                self.inflight_before(item.created_at)
                if self.inflight_before is not None
                else 0
            )
            if (item.ticks_left > 0 or straddlers) and not force:
                keep.append(item)
                continue
            item.change.settle()
            for node_id in item.drained_nodes:
                self._emit(
                    "node_drained", now, node_id,
                    f"{node_id} drained after {item.change.kind} of "
                    f"{item.change.source}",
                    group=item.change.source, phase="settle",
                )
        self._pending = keep

    def _flush_changed(self, *group_ids: str | None) -> None:
        """Checkpoint the WALs of every group a scale action touched.

        A topology change moves blocks in bulk; flushing folds that burst
        of WAL inserts into a compact snapshot so a node that crashes right
        after the change recovers the *new* placement cheaply instead of
        replaying the whole migration."""
        for group_id in {g for g in group_ids if g is not None}:
            try:
                group = self.index.topology.group(group_id)
            except KeyError:
                continue  # merged-away source group no longer exists
            for node in group.nodes:
                if node.alive:
                    node.flush_durable()

    def _execute(
        self, now: float, decision: ScaleDecision, frame: ScaleSignals
    ) -> None:
        cause = ",".join(frame.firing) or (
            "queue" if frame.queue_capacity else "idle"
        )
        index = self.index
        action = decision.action
        if action == ACTION_ADD_NODE:
            change = index.expand_group(decision.group, settle=self.wall)
            if not self.wall:
                self._pending.append(
                    _PendingSettle(change, ticks_left=self.settle_ticks,
                                   created_at=now)
                )
            self._emit(
                "node_added", now, change.target, decision.reason,
                group=decision.group, moved=change.moved_blocks,
                cause=cause,
            )
        elif action == ACTION_REMOVE_NODE:
            group = index.topology.group(decision.group)
            node_id = group.nodes[-1].node_id
            index.remove_node(node_id)
            self._emit(
                "node_drained", now, node_id, decision.reason,
                group=decision.group, cause=cause,
            )
        elif action == ACTION_SPLIT_GROUP:
            change = index.split_group(decision.group, settle=self.wall)
            if not self.wall:
                self._pending.append(
                    _PendingSettle(change, ticks_left=self.settle_ticks,
                                   created_at=now)
                )
            self._emit(
                "group_split", now, decision.group, decision.reason,
                target=change.target, moved=change.moved_blocks,
                refined=list(change.refined) if change.refined else None,
                cause=cause,
            )
        elif action == ACTION_MERGE_GROUPS:
            source_nodes = tuple(
                n.node_id for n in index.topology.group(decision.group).nodes
            )
            change = index.merge_groups(
                decision.group, decision.target, settle=self.wall
            )
            if not self.wall:
                self._pending.append(
                    _PendingSettle(change, drained_nodes=source_nodes,
                                   ticks_left=self.settle_ticks,
                                   created_at=now)
                )
            self._emit(
                "group_merged", now, decision.target, decision.reason,
                source=decision.group, moved=change.moved_blocks,
                cause=cause,
            )
        else:  # pragma: no cover - the ladder never emits other actions
            raise ValueError(f"unexpected scale action {action!r}")
        self._flush_changed(
            decision.group, decision.target,
            change.target if action == ACTION_SPLIT_GROUP else None,
        )
        self._m_actions.labels(action=action).inc()
        self.actions.append(
            {"at": now, "cause": cause, **decision.to_dict()}
        )

    def _emit(
        self, kind: str, now: float, actor: str, message: str, **fields
    ) -> None:
        clean = {k: v for k, v in fields.items() if v is not None}
        self.event_log.emit(
            kind, actor, message,
            sim_time=None if self.wall else now, **clean,
        )

    # -- introspection ---------------------------------------------------------

    def status(self) -> dict:
        """Dashboard frame for the SCALE verb / ``repro watch``."""
        topology = self.index.topology
        last = self.decisions[-1] if self.decisions else None
        return {
            "interval": self.interval,
            "wall": self.wall,
            "cooldown_remaining": self._cooldown,
            "idle_ticks": self._idle_ticks,
            "pending_settles": len(self._pending),
            "ticks": len(self.decisions),
            "last_decision": (
                {"at": last[0], **last[1].to_dict()} if last else None
            ),
            "actions": list(self.actions),
            "topology": {
                g.group_id: {
                    "nodes": len(g.nodes),
                    "blocks": g.block_count,
                }
                for g in topology.groups
            },
            "index_version": self.index.version,
        }
