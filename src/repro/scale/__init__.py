"""repro.scale — the elastic autoscaling control plane.

Watches SLO burn rates, admission-queue depth, and group skew
(:mod:`repro.obs.health`, :mod:`repro.cluster.balance`) and executes
topology actions on a live :class:`~repro.core.index.MendelIndex`:
tier-2 node add/drain and tier-1 group split/merge, with two-phase
settles so in-flight queries stay correct and the replication factor
is never violated mid-action.
"""

from repro.scale.controller import AutoScaler
from repro.scale.policy import (
    ACTION_ADD_NODE,
    ACTION_HOLD,
    ACTION_MERGE_GROUPS,
    ACTION_REMOVE_NODE,
    ACTION_SPLIT_GROUP,
    ScaleDecision,
    ScalerPolicy,
    ScaleSignals,
)
from repro.scale.scenario import (
    ScaleScenarioResult,
    run_diurnal_scenario,
    run_flash_crowd_scenario,
)

__all__ = [
    "ACTION_ADD_NODE",
    "ACTION_HOLD",
    "ACTION_MERGE_GROUPS",
    "ACTION_REMOVE_NODE",
    "ACTION_SPLIT_GROUP",
    "AutoScaler",
    "ScaleDecision",
    "ScalerPolicy",
    "ScaleSignals",
    "ScaleScenarioResult",
    "run_diurnal_scenario",
    "run_flash_crowd_scenario",
]
