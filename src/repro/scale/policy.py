"""Autoscaling policy: pure decision logic over health + topology signals.

The policy is a *function*, not a process: given one immutable
:class:`ScaleSignals` frame it returns one :class:`ScaleDecision`.  All
state (cooldowns, idle counters, pending settles) lives in the controller
(:mod:`repro.scale.controller`), so the policy is trivially unit-testable
and — crucial for chaos reproducibility — byte-deterministic: equal
signal frames always produce equal decisions, with ties broken by group
id, never by dict order or randomness.

The decision ladder mirrors the paper's load story (Fig. 5 group skew):

* **hot** (an SLO burns or the admission queue nears capacity) —
  if one group holds most of the data, *split* it (tier-1 repartition,
  possibly refining the vp-prefix frontier one level); otherwise *add a
  node* to the hottest group (tier-2 growth);
* **calm for a while** — *merge* a near-empty surplus group away, or
  *drain* a node from the most over-provisioned group, never shrinking
  below the deployment's configured shape or the replication factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

ACTION_HOLD = "hold"
ACTION_ADD_NODE = "add_node"
ACTION_REMOVE_NODE = "remove_node"
ACTION_SPLIT_GROUP = "split_group"
ACTION_MERGE_GROUPS = "merge_groups"

ACTIONS = (
    ACTION_HOLD,
    ACTION_ADD_NODE,
    ACTION_REMOVE_NODE,
    ACTION_SPLIT_GROUP,
    ACTION_MERGE_GROUPS,
)


@dataclass(frozen=True)
class ScaleSignals:
    """One immutable observation frame the policy decides on.

    Built by the controller from the health monitor (firing alerts, burn
    rates), the serving gateway (admission queue), and the index itself
    (primary-block ownership per group; healthier than folding exported
    gauges, which are collect-time callbacks).
    """

    now: float
    #: names of SLOs currently in warning/critical, sorted
    firing: tuple[str, ...] = ()
    #: max fast-window burn rate across all SLOs (context for reasons)
    max_burn: float = 0.0
    #: admission queue occupancy (0 / None outside the gateway)
    queue_depth: int = 0
    queue_capacity: int | None = None
    #: primary blocks owned per group (from ``index.node_of_block``)
    group_blocks: dict[str, int] = field(default_factory=dict)
    #: member count per group
    group_sizes: dict[str, int] = field(default_factory=dict)
    #: groups with a dead or suspected member — never scaled in
    unhealthy_groups: frozenset[str] = frozenset()
    #: consecutive calm ticks observed by the controller
    idle_ticks: int = 0
    #: deployment shape: scale-in floor for group size / group count
    baseline_group_size: int = 1
    baseline_group_count: int = 1
    replication: int = 1

    @property
    def total_blocks(self) -> int:
        return sum(self.group_blocks.values())


@dataclass(frozen=True)
class ScaleDecision:
    """What the policy wants done this tick (at most one action)."""

    action: str
    group: str | None = None
    #: merge destination (``merge_groups`` only)
    target: str | None = None
    reason: str = ""

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(f"unknown scale action {self.action!r}")

    def to_dict(self) -> dict:
        out = {"action": self.action, "reason": self.reason}
        if self.group is not None:
            out["group"] = self.group
        if self.target is not None:
            out["target"] = self.target
        return out


def _hold(reason: str) -> ScaleDecision:
    return ScaleDecision(ACTION_HOLD, reason=reason)


@dataclass(frozen=True)
class ScalerPolicy:
    """Threshold configuration for the decision ladder."""

    #: queue occupancy fraction that counts as hot even without an alert
    hot_queue_fraction: float = 0.8
    #: a hot group holding this fraction of all blocks splits instead of
    #: growing (tier-1 skew beats tier-2 growth)
    split_load_fraction: float = 0.6
    #: never split groups smaller than this (blocks)
    split_min_blocks: int = 64
    #: tier-2 growth ceiling per group
    max_group_size: int = 8
    #: tier-1 growth ceiling (total groups)
    max_groups: int = 16
    #: a surplus group below this fraction of all blocks merges away
    merge_load_fraction: float = 0.05
    #: calm ticks required before any scale-in
    idle_ticks_before_scale_in: int = 4
    #: ticks to wait after an executed action before acting again
    cooldown_ticks: int = 2
    #: master switch for merge/remove (scale-out is always allowed)
    enable_scale_in: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.hot_queue_fraction <= 1.0:
            raise ValueError("hot_queue_fraction must be in (0, 1]")
        if not 0.0 < self.split_load_fraction <= 1.0:
            raise ValueError("split_load_fraction must be in (0, 1]")
        if not 0.0 <= self.merge_load_fraction < 1.0:
            raise ValueError("merge_load_fraction must be in [0, 1)")
        if self.max_group_size < 1 or self.max_groups < 1:
            raise ValueError("max_group_size and max_groups must be >= 1")
        if self.cooldown_ticks < 0 or self.idle_ticks_before_scale_in < 0:
            raise ValueError("tick counts must be >= 0")

    # -- signal classification ------------------------------------------------

    def is_hot(self, signals: ScaleSignals) -> bool:
        """Whether the cluster needs more capacity right now."""
        if signals.firing:
            return True
        if signals.queue_capacity:
            occupancy = signals.queue_depth / signals.queue_capacity
            if occupancy >= self.hot_queue_fraction:
                return True
        return False

    # -- the decision ladder --------------------------------------------------

    def decide(self, signals: ScaleSignals) -> ScaleDecision:
        if not signals.group_blocks:
            return _hold("no groups")
        if self.is_hot(signals):
            return self._scale_out(signals)
        return self._scale_in(signals)

    def _scale_out(self, signals: ScaleSignals) -> ScaleDecision:
        cause = ",".join(signals.firing) or "queue"
        healthy = sorted(
            g for g in signals.group_blocks if g not in signals.unhealthy_groups
        )
        if not healthy:
            return _hold(f"hot ({cause}) but every group is unhealthy")
        # Hottest group: highest per-node primary load; ties by block count
        # then id, so equal frames always pick the same group.
        hottest = max(
            healthy,
            key=lambda g: (
                signals.group_blocks[g] / max(1, signals.group_sizes[g]),
                signals.group_blocks[g],
                g,
            ),
        )
        blocks = signals.group_blocks[hottest]
        total = max(1, signals.total_blocks)
        can_split = (
            blocks >= self.split_min_blocks
            and len(signals.group_blocks) < self.max_groups
        )
        heavily_skewed = blocks >= self.split_load_fraction * total
        if heavily_skewed and can_split:
            return ScaleDecision(
                ACTION_SPLIT_GROUP,
                group=hottest,
                reason=(
                    f"{cause}: {hottest} holds {blocks}/{total} blocks "
                    f"(>= {self.split_load_fraction:.0%}), splitting tier-1"
                ),
            )
        if signals.group_sizes[hottest] < self.max_group_size:
            return ScaleDecision(
                ACTION_ADD_NODE,
                group=hottest,
                reason=(
                    f"{cause}: growing {hottest} "
                    f"({signals.group_sizes[hottest]} nodes, {blocks} blocks)"
                ),
            )
        if can_split:
            return ScaleDecision(
                ACTION_SPLIT_GROUP,
                group=hottest,
                reason=f"{cause}: {hottest} at max size, splitting tier-1",
            )
        return _hold(f"hot ({cause}) but at max_group_size and max_groups")

    def _scale_in(self, signals: ScaleSignals) -> ScaleDecision:
        if not self.enable_scale_in:
            return _hold("calm (scale-in disabled)")
        if signals.idle_ticks < self.idle_ticks_before_scale_in:
            return _hold(
                f"calm ({signals.idle_ticks}/"
                f"{self.idle_ticks_before_scale_in} idle ticks)"
            )
        healthy = sorted(
            g for g in signals.group_blocks if g not in signals.unhealthy_groups
        )
        total = max(1, signals.total_blocks)
        # Merge a near-empty surplus group (only beyond the deployment's
        # configured group count — the seed topology is never merged away).
        if (
            len(signals.group_blocks) > signals.baseline_group_count
            and len(healthy) >= 2
        ):
            coldest = min(
                healthy,
                key=lambda g: (signals.group_blocks[g], g),
            )
            if signals.group_blocks[coldest] <= self.merge_load_fraction * total:
                others = [g for g in healthy if g != coldest]
                target = min(
                    others, key=lambda g: (signals.group_blocks[g], g)
                )
                return ScaleDecision(
                    ACTION_MERGE_GROUPS,
                    group=coldest,
                    target=target,
                    reason=(
                        f"idle: {coldest} holds {signals.group_blocks[coldest]}"
                        f"/{total} blocks, merging into {target}"
                    ),
                )
        # Drain one node from the most over-provisioned group; floors:
        # the configured group size and the replication factor.
        floor = max(signals.baseline_group_size, signals.replication, 1)
        shrinkable = [g for g in healthy if signals.group_sizes[g] > floor]
        if shrinkable:
            group = min(
                shrinkable,
                key=lambda g: (
                    signals.group_blocks[g] / max(1, signals.group_sizes[g]),
                    g,
                ),
            )
            return ScaleDecision(
                ACTION_REMOVE_NODE,
                group=group,
                reason=(
                    f"idle: draining one of {signals.group_sizes[group]} "
                    f"nodes from {group} (floor {floor})"
                ),
            )
        return _hold("calm (topology at baseline)")
