"""Autoscaling scenarios: traffic shapes that exercise the control loop.

Two canonical load stories drive the :class:`~repro.scale.controller.
AutoScaler` end to end on the simulation clock:

* **flash crowd** (:func:`run_flash_crowd_scenario`) — a calm warm-up,
  then a sustained burst arriving faster than the seed topology can
  serve.  Turnarounds blow past the latency objective, the SLO burns,
  the scaler splits/grows the hot group, throughput rises, the backlog
  drains, and the alert resolves *while the burst is still arriving* —
  the closed loop with no human input.
* **diurnal** (:func:`run_diurnal_scenario`) — sinusoidal arrival
  spacing over two day/night cycles: scale-out at the peaks, and (once
  enough calm ticks accumulate) merge/drain at the troughs, never below
  the deployment's configured shape.

Timing derives from a *calibration* run: a throwaway, identically seeded
deployment measures the single-query turnaround ``t_base``; the latency
objective and every arrival interval are multiples of it, so the story
holds across hardware profiles and parameter tweaks.  Everything else
derives from ``seed`` — two equal calls produce byte-identical event
logs (the ``CHAOS_SEED`` replay contract).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.framework import Mendel
from repro.core.params import MendelConfig, QueryParams
from repro.core.query import QueryReport
from repro.obs.events import EventLog, TOPOLOGY_KINDS
from repro.obs.health import HealthMonitor
from repro.obs.trace import TraceContext
from repro.scale.controller import AutoScaler
from repro.scale.policy import ScalerPolicy
from repro.seq import PROTEIN, random_set
from repro.seq.mutate import mutate_to_identity


@dataclass
class ScaleScenarioResult:
    """Outcome of one autoscaling experiment."""

    #: scenario name ("flash_crowd" or "diurnal")
    scenario: str
    seed: int
    #: whether the controller was enabled for this run
    controller_enabled: bool
    #: per-query reports, in arrival order
    reports: list[QueryReport]
    #: the arrival schedule that was replayed (simulated seconds)
    arrival_times: list[float]
    #: calibrated single-query turnaround and latency objective
    t_base: float
    latency_threshold: float
    monitor: HealthMonitor
    event_log: EventLog
    #: the controller (``None`` when disabled)
    scaler: AutoScaler | None = None
    #: final topology: group id -> {"nodes": int, "blocks": int}
    final_topology: dict = field(default_factory=dict)

    @property
    def alert_transitions(self) -> list[dict]:
        return [t.to_dict() for t in self.monitor.slo_engine.transitions]

    @property
    def actions(self) -> list[dict]:
        return list(self.scaler.actions) if self.scaler is not None else []

    @property
    def topology_events(self) -> list[dict]:
        return [
            e for e in self.event_log.to_dicts()
            if e["kind"] in TOPOLOGY_KINDS
        ]

    def fired_at(self) -> float | None:
        """Time the first alert started firing, if any."""
        for t in self.alert_transitions:
            if t["to"] in ("warning", "critical"):
                return t["time"]
        return None

    def resolved_at(self) -> float | None:
        """Time the last firing alert resolved, if it did."""
        fired = self.fired_at()
        if fired is None:
            return None
        out = None
        for t in self.alert_transitions:
            if t["time"] >= fired and t["to"] in ("resolved", "ok"):
                out = t["time"]
        return out

    def loop_closed(self) -> bool:
        """The tentpole contract: an alert fired, the scaler acted, and
        the alert resolved afterwards with no human input."""
        fired = self.fired_at()
        resolved = self.resolved_at()
        if fired is None or resolved is None:
            return False
        acted = [a["at"] for a in self.actions if fired <= a["at"] <= resolved]
        return bool(acted)

    @property
    def mean_turnaround(self) -> float:
        if not self.reports:
            return 0.0
        return sum(r.stats.turnaround for r in self.reports) / len(self.reports)

    @property
    def p_max_turnaround(self) -> float:
        return max((r.stats.turnaround for r in self.reports), default=0.0)

    def summary_rows(self) -> list[tuple[str, str]]:
        """Key/value rows for tabular display (CLI and example)."""
        fired = self.fired_at()
        resolved = self.resolved_at()
        return [
            ("scenario", self.scenario),
            ("seed", str(self.seed)),
            ("controller", "on" if self.controller_enabled else "off"),
            ("queries", str(len(self.reports))),
            ("t_base", f"{self.t_base * 1e3:.3f} ms"),
            ("latency objective", f"{self.latency_threshold * 1e3:.3f} ms"),
            ("alert fired", f"{fired * 1e3:.3f} ms" if fired is not None
             else "never"),
            ("alert resolved", f"{resolved * 1e3:.3f} ms"
             if resolved is not None else "never"),
            ("scale actions", str(len(self.actions))),
            ("loop closed", "yes" if self.loop_closed() else "no"),
            ("mean turnaround", f"{self.mean_turnaround * 1e3:.3f} ms"),
            ("max turnaround", f"{self.p_max_turnaround * 1e3:.3f} ms"),
            ("final topology", ", ".join(
                f"{gid}:{info['nodes']}n/{info['blocks']}b"
                for gid, info in sorted(self.final_topology.items())
            )),
        ]


def _build(seed: int, group_count: int, group_size: int,
           database_size: int, sequence_length: int,
           replication: int) -> Mendel:
    database = random_set(
        count=database_size,
        length=sequence_length,
        alphabet=PROTEIN,
        rng=seed + 1,
        id_prefix="ref",
    )
    config = MendelConfig(
        group_count=group_count,
        group_size=group_size,
        replication=replication,
        sample_size=256,
        seed=seed + 2,
    )
    return Mendel.build(database, config)


def _calibrate(seed: int, group_count: int, group_size: int,
               database_size: int, sequence_length: int,
               replication: int, params: QueryParams) -> float:
    """Single-query turnaround on a throwaway identically-seeded
    deployment (keeps the scenario run's metrics and events clean)."""
    mendel = _build(seed, group_count, group_size, database_size,
                    sequence_length, replication)
    probe = mutate_to_identity(
        mendel.index.database.records[0], 0.9, rng=seed + 9,
        seq_id="calibrate",
    )
    report = mendel.engine.run_batch([probe], params)[0]
    return max(report.stats.turnaround, 1e-9)


def _run(
    scenario: str,
    arrival_times: list[float],
    *,
    seed: int,
    controller: bool,
    group_count: int,
    group_size: int,
    database_size: int,
    sequence_length: int,
    replication: int,
    params: QueryParams,
    t_base: float,
    latency_threshold: float,
    policy: ScalerPolicy | None,
    fast_window: float,
) -> ScaleScenarioResult:
    mendel = _build(seed, group_count, group_size, database_size,
                    sequence_length, replication)
    database = mendel.index.database
    count = len(arrival_times)
    probes = [
        mutate_to_identity(
            database.records[i % database_size], 0.9,
            rng=seed + 100 + i, seq_id=f"probe-{i}",
        )
        for i in range(count)
    ]
    contexts = [
        TraceContext(trace_id=f"scale-{scenario}-{seed}-q{i}")
        for i in range(count)
    ]
    event_log = EventLog()
    horizon = arrival_times[-1] if arrival_times else 1.0
    slow = max(horizon, 4.0 * fast_window)
    monitor = HealthMonitor(
        windows=(fast_window, slow),
        latency_threshold=latency_threshold,
        event_log=event_log,
        label=f"scale-{scenario}",
    )
    scaler = None
    if controller:
        scaler = AutoScaler(
            index=mendel.index,
            monitor=monitor,
            policy=policy or ScalerPolicy(
                cooldown_ticks=1,
                idle_ticks_before_scale_in=3,
                split_min_blocks=32,
            ),
            event_log=event_log,
        )
    reports = mendel.engine.run_batch(
        probes,
        params,
        arrival_times=arrival_times,
        trace_contexts=contexts,
        monitor=monitor,
        autoscaler=scaler,
    )
    return ScaleScenarioResult(
        scenario=scenario,
        seed=seed,
        controller_enabled=controller,
        reports=reports,
        arrival_times=list(arrival_times),
        t_base=t_base,
        latency_threshold=latency_threshold,
        monitor=monitor,
        event_log=event_log,
        scaler=scaler,
        final_topology={
            g.group_id: {"nodes": len(g.nodes), "blocks": g.block_count}
            for g in mendel.index.topology.groups
        },
    )


def run_flash_crowd_scenario(
    seed: int = 0,
    controller: bool = True,
    group_count: int = 1,
    group_size: int = 2,
    database_size: int = 12,
    sequence_length: int = 120,
    replication: int = 1,
    calm_queries: int = 4,
    burst_queries: int = 28,
    tail_queries: int = 8,
    params: QueryParams | None = None,
    policy: ScalerPolicy | None = None,
) -> ScaleScenarioResult:
    """Sustained overload: calm warm-up, a burst arriving at ``0.55 *
    t_base`` — faster than the seed topology serves, slower than the
    scaled one — then a decaying tail.  With the controller on, the
    alert fires early in the burst, the scaler splits and grows, the
    backlog drains, and the alert resolves while tail traffic is still
    arriving.
    """
    params = params or QueryParams(k=4, n=6, i=0.7)
    t_base = _calibrate(seed, group_count, group_size, database_size,
                        sequence_length, replication, params)
    theta = 1.5 * t_base
    calm_interval = 8.0 * t_base
    burst_interval = 0.55 * t_base
    tail_interval = 2.5 * t_base
    arrivals: list[float] = [i * calm_interval for i in range(calm_queries)]
    burst_start = arrivals[-1] + calm_interval if arrivals else 0.0
    arrivals += [
        burst_start + i * burst_interval for i in range(burst_queries)
    ]
    tail_start = arrivals[-1] + tail_interval if arrivals else 0.0
    arrivals += [
        tail_start + i * tail_interval for i in range(tail_queries)
    ]
    fast_window = 6.0 * burst_interval
    return _run(
        "flash_crowd", arrivals,
        seed=seed, controller=controller,
        group_count=group_count, group_size=group_size,
        database_size=database_size, sequence_length=sequence_length,
        replication=replication, params=params,
        t_base=t_base, latency_threshold=theta,
        policy=policy, fast_window=fast_window,
    )


def run_diurnal_scenario(
    seed: int = 0,
    controller: bool = True,
    group_count: int = 2,
    group_size: int = 2,
    database_size: int = 12,
    sequence_length: int = 120,
    replication: int = 1,
    queries_per_cycle: int = 20,
    cycles: int = 2,
    params: QueryParams | None = None,
    policy: ScalerPolicy | None = None,
) -> ScaleScenarioResult:
    """Two day/night cycles: arrival spacing swings sinusoidally between
    ``0.6 * t_base`` (peak) and ``8 * t_base`` (trough), so the scaler
    grows node-by-node at the peaks and — after enough calm ticks —
    drains back down at the troughs, never below the configured shape.
    Splits are disabled by the default policy here: diurnal load is a
    *throughput* swing, not a skew change, so tier-2 elasticity is the
    right (and reversible) response.
    """
    params = params or QueryParams(k=4, n=6, i=0.7)
    if policy is None:
        policy = ScalerPolicy(
            split_min_blocks=1_000_000_000,  # tier-2 only: add/drain nodes
            cooldown_ticks=1,
            idle_ticks_before_scale_in=2,
        )
    t_base = _calibrate(seed, group_count, group_size, database_size,
                        sequence_length, replication, params)
    theta = 1.5 * t_base
    lo, hi = 0.6 * t_base, 8.0 * t_base
    count = queries_per_cycle * cycles
    arrivals: list[float] = []
    now = 0.0
    for i in range(count):
        # Phase runs trough -> peak -> trough each cycle; spacing is the
        # sinusoid's value at the *departure* point, so the peak packs
        # queries densely and the trough spreads them out.
        phase = 2.0 * math.pi * (i / queries_per_cycle)
        level = 0.5 * (1.0 - math.cos(phase))  # 0 at trough, 1 at peak
        interval = hi + (lo - hi) * level
        arrivals.append(now)
        now += interval
    fast_window = 5.0 * lo
    return _run(
        "diurnal", arrivals,
        seed=seed, controller=controller,
        group_count=group_count, group_size=group_size,
        database_size=database_size, sequence_length=sequence_length,
        replication=replication, params=params,
        t_base=t_base, latency_threshold=theta,
        policy=policy, fast_window=fast_window,
    )
