"""Discrete-event simulation substrate standing in for the paper's
physical 50-node LAN cluster."""

from repro.sim.engine import AllOf, AnyOf, SimError, SimEvent, Simulation
from repro.sim.network import LinkFault, Network, NetworkStats
from repro.sim.resource import Resource

__all__ = [
    "AllOf",
    "AnyOf",
    "SimError",
    "SimEvent",
    "Simulation",
    "LinkFault",
    "Network",
    "NetworkStats",
    "Resource",
]
