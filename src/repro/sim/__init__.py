"""Discrete-event simulation substrate standing in for the paper's
physical 50-node LAN cluster."""

from repro.sim.engine import AllOf, SimError, SimEvent, Simulation
from repro.sim.network import Network, NetworkStats
from repro.sim.resource import Resource

__all__ = ["AllOf", "SimError", "SimEvent", "Simulation", "Network", "NetworkStats", "Resource"]
