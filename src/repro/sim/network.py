"""Simulated LAN model.

The paper's testbed is a single-switch LAN of commodity servers; its
dominant network costs are per-message latency and serialisation at the NIC.
:class:`Network` models a message send as

``delay = base_latency + size_bytes / bandwidth (+ jitter)``

and accumulates per-link traffic statistics so benchmarks can report message
and byte counts alongside turnaround times.  Loopback (``src == dst``) is
free apart from a small local dispatch cost, matching a zero-hop DHT where a
node can answer its own requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.sim.engine import Simulation
from repro.util.rng import RandomSource, as_generator
from repro.util.validation import check_non_negative, check_positive


@dataclass
class NetworkStats:
    """Aggregate traffic counters."""

    messages: int = 0
    bytes_sent: int = 0
    loopback_messages: int = 0

    def merge(self, other: "NetworkStats") -> "NetworkStats":
        return NetworkStats(
            messages=self.messages + other.messages,
            bytes_sent=self.bytes_sent + other.bytes_sent,
            loopback_messages=self.loopback_messages + other.loopback_messages,
        )


@dataclass
class Network:
    """Latency/bandwidth network attached to a :class:`Simulation`.

    Parameters
    ----------
    sim:
        The simulation clock messages are scheduled on.
    base_latency:
        Fixed per-message one-way latency in seconds (default 200 us — a
        typical gigabit-LAN RPC floor).
    bandwidth:
        Effective per-flow bandwidth in bytes/second (default 10^8, i.e.
        ~1 Gb/s with protocol overhead).
    jitter:
        Fractional uniform jitter applied to each delay (0 disables; keeps
        the simulation deterministic by default).
    local_dispatch:
        Cost of a loopback delivery in seconds.
    """

    sim: Simulation
    base_latency: float = 200e-6
    bandwidth: float = 1e8
    jitter: float = 0.0
    local_dispatch: float = 5e-6
    rng: RandomSource = None
    stats: NetworkStats = field(default_factory=NetworkStats)

    def __post_init__(self) -> None:
        check_non_negative("base_latency", self.base_latency)
        check_positive("bandwidth", self.bandwidth)
        check_non_negative("jitter", self.jitter)
        check_non_negative("local_dispatch", self.local_dispatch)
        self._gen = as_generator(self.rng)

    def delay_for(self, src: str, dst: str, size_bytes: int) -> float:
        """Modelled one-way delivery delay for a *size_bytes* message."""
        check_non_negative("size_bytes", size_bytes)
        if src == dst:
            return self.local_dispatch
        delay = self.base_latency + size_bytes / self.bandwidth
        if self.jitter > 0:
            delay *= 1.0 + float(self._gen.uniform(-self.jitter, self.jitter))
        return delay

    def send(
        self,
        src: str,
        dst: str,
        size_bytes: int,
        handler: Callable[..., Any],
        *args: Any,
    ) -> float:
        """Deliver a message: schedule ``handler(*args)`` after the modelled
        delay.  Returns the delay charged."""
        delay = self.delay_for(src, dst, size_bytes)
        self.stats.messages += 1
        if src == dst:
            self.stats.loopback_messages += 1
        else:
            self.stats.bytes_sent += size_bytes
        self.sim.call_later(delay, handler, *args)
        return delay

    def transfer(self, src: str, dst: str, size_bytes: int) -> float:
        """Charge a message without scheduling a callback; returns the delay
        for a generator process to ``yield``.  Preferred inside process-style
        code where control flow already lives in the generator."""
        delay = self.delay_for(src, dst, size_bytes)
        self.stats.messages += 1
        if src == dst:
            self.stats.loopback_messages += 1
        else:
            self.stats.bytes_sent += size_bytes
        return delay

    def reset_stats(self) -> None:
        self.stats = NetworkStats()
