"""Simulated LAN model.

The paper's testbed is a single-switch LAN of commodity servers; its
dominant network costs are per-message latency and serialisation at the NIC.
:class:`Network` models a message send as

``delay = base_latency + size_bytes / bandwidth (+ jitter)``

and accumulates per-link traffic statistics so benchmarks can report message
and byte counts alongside turnaround times.  Loopback (``src == dst``) is
free apart from a small local dispatch cost, matching a zero-hop DHT where a
node can answer its own requests.

Fault injection (the :mod:`repro.faults` chaos layer) extends the model with
*lossy* and *partitionable* links:

* a per-link :class:`LinkFault` adds a drop probability and extra delay
  (``set_link_fault`` / ``clear_link_fault``), plus an optional
  network-wide ``default_fault`` applied to every non-loopback link;
* a partition (``set_partition``) splits the cluster into disjoint sides;
  messages crossing a side boundary are silently dropped until
  ``clear_partition``.

Faulty delivery goes through :meth:`Network.try_transfer`, which reports
whether the message survived; the legacy :meth:`send`/:meth:`transfer` paths
ignore drops (always deliver) so fault-oblivious code keeps working.  Drop
decisions draw from the network's seeded RNG, so chaos runs replay
identically from a seed.  Ids in ``immune`` (the pseudo-node ``"client"``)
are never dropped or partitioned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.sim.engine import Simulation
from repro.util.rng import RandomSource, as_generator
from repro.util.validation import check_fraction, check_non_negative, check_positive


@dataclass
class NetworkStats:
    """Aggregate traffic counters."""

    messages: int = 0
    bytes_sent: int = 0
    loopback_messages: int = 0
    #: messages lost to link faults or partitions (fault-injection extension)
    dropped: int = 0

    def merge(self, other: "NetworkStats") -> "NetworkStats":
        return NetworkStats(
            messages=self.messages + other.messages,
            bytes_sent=self.bytes_sent + other.bytes_sent,
            loopback_messages=self.loopback_messages + other.loopback_messages,
            dropped=self.dropped + other.dropped,
        )


@dataclass(frozen=True)
class LinkFault:
    """Fault parameters for one directed link (or the whole network)."""

    #: probability a message on this link is silently lost
    drop: float = 0.0
    #: extra one-way delay (seconds) added on top of the base model
    extra_delay: float = 0.0

    def __post_init__(self) -> None:
        check_fraction("drop", self.drop)
        check_non_negative("extra_delay", self.extra_delay)


@dataclass
class Network:
    """Latency/bandwidth network attached to a :class:`Simulation`.

    Parameters
    ----------
    sim:
        The simulation clock messages are scheduled on.
    base_latency:
        Fixed per-message one-way latency in seconds (default 200 us — a
        typical gigabit-LAN RPC floor).
    bandwidth:
        Effective per-flow bandwidth in bytes/second (default 10^8, i.e.
        ~1 Gb/s with protocol overhead).
    jitter:
        Fractional uniform jitter applied to each delay (0 disables; keeps
        the simulation deterministic by default).
    local_dispatch:
        Cost of a loopback delivery in seconds.
    default_fault:
        Optional :class:`LinkFault` applied to every non-loopback link that
        has no explicit per-link fault.
    immune:
        Ids exempt from faults and partitions (clients talk to the cluster
        edge; chaos targets the cluster interior).
    """

    sim: Simulation
    base_latency: float = 200e-6
    bandwidth: float = 1e8
    jitter: float = 0.0
    local_dispatch: float = 5e-6
    rng: RandomSource = None
    stats: NetworkStats = field(default_factory=NetworkStats)
    default_fault: LinkFault | None = None
    immune: frozenset = frozenset({"client"})

    def __post_init__(self) -> None:
        check_non_negative("base_latency", self.base_latency)
        check_positive("bandwidth", self.bandwidth)
        check_non_negative("jitter", self.jitter)
        check_non_negative("local_dispatch", self.local_dispatch)
        self._gen = as_generator(self.rng)
        self._link_faults: dict[tuple[str, str], LinkFault] = {}
        self._partition: tuple[frozenset, ...] | None = None

    # -- fault injection -------------------------------------------------------

    def set_link_fault(
        self,
        src: str,
        dst: str,
        drop: float = 0.0,
        extra_delay: float = 0.0,
        symmetric: bool = True,
    ) -> None:
        """Make the ``src -> dst`` link lossy and/or slow (both directions
        when *symmetric*)."""
        fault = LinkFault(drop=drop, extra_delay=extra_delay)
        self._link_faults[(src, dst)] = fault
        if symmetric:
            self._link_faults[(dst, src)] = fault

    def clear_link_fault(self, src: str, dst: str, symmetric: bool = True) -> None:
        self._link_faults.pop((src, dst), None)
        if symmetric:
            self._link_faults.pop((dst, src), None)

    def set_partition(self, *sides: Iterable[str]) -> None:
        """Partition the network into disjoint *sides*.

        A message is deliverable only if every side contains either both or
        neither of its endpoints (ids not named in any side form an implicit
        extra side).  Immune ids cross freely.
        """
        frozen = tuple(frozenset(side) for side in sides)
        if len(frozen) < 1 or not all(frozen):
            raise ValueError("partition needs at least one non-empty side")
        seen: set[str] = set()
        for side in frozen:
            if side & seen:
                raise ValueError("partition sides must be disjoint")
            seen |= side
        self._partition = frozen

    def clear_partition(self) -> None:
        self._partition = None

    def partitioned(self, src: str, dst: str) -> bool:
        """True if the current partition blocks ``src -> dst``."""
        if self._partition is None or src == dst:
            return False
        if src in self.immune or dst in self.immune:
            return False
        return any((src in side) != (dst in side) for side in self._partition)

    def link_fault(self, src: str, dst: str) -> LinkFault | None:
        """The fault rule applying to ``src -> dst``, if any."""
        if src == dst or src in self.immune or dst in self.immune:
            return None
        return self._link_faults.get((src, dst), self.default_fault)

    # -- delay model -----------------------------------------------------------

    def delay_for(self, src: str, dst: str, size_bytes: int) -> float:
        """Modelled one-way delivery delay for a *size_bytes* message."""
        check_non_negative("size_bytes", size_bytes)
        if src == dst:
            return self.local_dispatch
        delay = self.base_latency + size_bytes / self.bandwidth
        if self.jitter > 0:
            delay *= 1.0 + float(self._gen.uniform(-self.jitter, self.jitter))
        fault = self.link_fault(src, dst)
        if fault is not None:
            delay += fault.extra_delay
        return delay

    def send(
        self,
        src: str,
        dst: str,
        size_bytes: int,
        handler: Callable[..., Any],
        *args: Any,
    ) -> float:
        """Deliver a message: schedule ``handler(*args)`` after the modelled
        delay.  Returns the delay charged.  Ignores drops (always delivers);
        fault-aware callers use :meth:`try_transfer`."""
        delay = self.delay_for(src, dst, size_bytes)
        self._count(src, dst, size_bytes)
        self.sim.call_later(delay, handler, *args)
        return delay

    def transfer(self, src: str, dst: str, size_bytes: int) -> float:
        """Charge a message without scheduling a callback; returns the delay
        for a generator process to ``yield``.  Preferred inside process-style
        code where control flow already lives in the generator.  Ignores
        drops; fault-aware callers use :meth:`try_transfer`."""
        delay = self.delay_for(src, dst, size_bytes)
        self._count(src, dst, size_bytes)
        return delay

    def try_transfer(self, src: str, dst: str, size_bytes: int) -> tuple[bool, float]:
        """Fault-aware :meth:`transfer`: returns ``(delivered, delay)``.

        The sender is charged the full delay either way (the message leaves
        the NIC before vanishing); partitions and link-fault drop draws
        decide whether it arrives.  Loopback and immune endpoints always
        deliver.
        """
        delay = self.delay_for(src, dst, size_bytes)
        self._count(src, dst, size_bytes)
        if self.partitioned(src, dst):
            self.stats.dropped += 1
            return False, delay
        fault = self.link_fault(src, dst)
        if fault is not None and fault.drop > 0:
            if float(self._gen.uniform(0.0, 1.0)) < fault.drop:
                self.stats.dropped += 1
                return False, delay
        return True, delay

    def _count(self, src: str, dst: str, size_bytes: int) -> None:
        self.stats.messages += 1
        if src == dst:
            self.stats.loopback_messages += 1
        else:
            self.stats.bytes_sent += size_bytes

    def reset_stats(self) -> None:
        self.stats = NetworkStats()
