"""Discrete-event simulation kernel.

Substitutes for the paper's physical 50-node LAN testbed: cluster components
run as generator *processes* over a shared virtual clock, so concurrency
(parallel subquery fan-out, aggregation barriers) is modelled faithfully
while the actual algorithmic work executes natively in-process.

The kernel is deliberately small — an event heap plus three coordination
forms a process can ``yield``:

* a non-negative number — suspend for that many simulated seconds;
* a :class:`SimEvent` — suspend until it fires, resuming with its value;
* an :class:`AllOf` — barrier over several events (resumes with their values
  in the order given, once all have fired);
* an :class:`AnyOf` — race over several events (resumes with the
  ``(index, value)`` of the first to fire; later fires are ignored).

Determinism: heap ties break on a monotone sequence number, so identical
runs replay identically.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable


class SimError(RuntimeError):
    """Raised for invalid simulator usage (e.g. firing an event twice)."""


@dataclass
class SimEvent:
    """A one-shot event carrying an optional value.

    Waiters are plain callbacks ``fn(value)``; they are scheduled (not
    invoked inline) when the event fires, preserving heap ordering.
    """

    sim: "Simulation"
    name: str = ""
    fired: bool = False
    value: Any = None
    _waiters: list[Callable[[Any], None]] = field(default_factory=list, repr=False)

    def fire(self, value: Any = None) -> None:
        """Fire the event now, scheduling every waiter at the current time."""
        if self.fired:
            raise SimError(f"event {self.name!r} fired twice")
        self.fired = True
        self.value = value
        for callback in self._waiters:
            self.sim.call_later(0.0, callback, value)
        self._waiters.clear()

    def fire_at(self, delay: float, value: Any = None) -> None:
        """Fire the event after *delay* simulated seconds."""
        self.sim.call_later(delay, self.fire, value)

    def subscribe(self, callback: Callable[[Any], None]) -> None:
        """Run ``callback(value)`` when the event fires (immediately
        scheduled if it already has)."""
        if self.fired:
            self.sim.call_later(0.0, callback, self.value)
        else:
            self._waiters.append(callback)


@dataclass
class AllOf:
    """Barrier over several events; a waiting process resumes with the list
    of their values in the order given (regardless of completion order)."""

    events: list[SimEvent]

    def __post_init__(self) -> None:
        self.events = list(self.events)
        if not self.events:
            raise SimError("AllOf requires at least one event")


@dataclass
class AnyOf:
    """Race over several events; a waiting process resumes with the
    ``(index, value)`` pair of the first event to fire (ties break on list
    order).  The losing events still fire normally — only this waiter stops
    listening.  Used for timeouts: race a work event against a timer."""

    events: list[SimEvent]

    def __post_init__(self) -> None:
        self.events = list(self.events)
        if not self.events:
            raise SimError("AnyOf requires at least one event")


ProcessGen = Generator[Any, Any, Any]


class Simulation:
    """Event-heap simulator with generator processes."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable, tuple]] = []
        self._counter = itertools.count()
        self.events_processed: int = 0

    # -- low-level scheduling -------------------------------------------------

    def call_later(self, delay: float, fn: Callable, *args: Any) -> None:
        """Invoke ``fn(*args)`` after *delay* simulated seconds."""
        if delay < 0:
            raise SimError(f"delay must be non-negative, got {delay}")
        heapq.heappush(self._heap, (self.now + delay, next(self._counter), fn, args))

    def event(self, name: str = "") -> SimEvent:
        """Create a fresh unfired event."""
        return SimEvent(sim=self, name=name)

    # -- processes ----------------------------------------------------------------

    def spawn(self, generator: ProcessGen, name: str = "") -> SimEvent:
        """Start a generator process; returns an event that fires with the
        process's return value when it finishes."""
        done = self.event(f"done:{name}")
        self.call_later(0.0, self._step, generator, None, done, name)
        return done

    def _step(self, gen: ProcessGen, send_value: Any, done: SimEvent, name: str) -> None:
        try:
            yielded = gen.send(send_value)
        except StopIteration as stop:
            done.fire(stop.value)
            return
        self._dispatch(gen, yielded, done, name)

    def _dispatch(self, gen: ProcessGen, yielded: Any, done: SimEvent, name: str) -> None:
        resume = lambda value: self._step(gen, value, done, name)  # noqa: E731
        if isinstance(yielded, (int, float)):
            if yielded < 0:
                raise SimError(f"process {name!r} yielded negative delay {yielded}")
            self.call_later(float(yielded), resume, None)
        elif isinstance(yielded, SimEvent):
            yielded.subscribe(resume)
        elif isinstance(yielded, AllOf):
            self._wait_all(yielded.events, resume)
        elif isinstance(yielded, AnyOf):
            self._wait_any(yielded.events, resume)
        else:
            raise SimError(
                f"process {name!r} yielded unsupported {type(yielded)!r}; "
                "yield a delay, SimEvent, AllOf, or AnyOf"
            )

    def _wait_all(
        self, events: Iterable[SimEvent], resume: Callable[[Any], None]
    ) -> None:
        events = list(events)
        state = {"remaining": sum(1 for e in events if not e.fired)}
        if state["remaining"] == 0:
            self.call_later(0.0, resume, [e.value for e in events])
            return

        def on_fire(_value: Any) -> None:
            state["remaining"] -= 1
            if state["remaining"] == 0:
                resume([e.value for e in events])

        for event in events:
            if not event.fired:
                event.subscribe(on_fire)

    def _wait_any(
        self, events: list[SimEvent], resume: Callable[[Any], None]
    ) -> None:
        for index, event in enumerate(events):
            if event.fired:
                self.call_later(0.0, resume, (index, event.value))
                return

        state = {"won": False}

        def make_on_fire(index: int) -> Callable[[Any], None]:
            def on_fire(value: Any) -> None:
                if not state["won"]:
                    state["won"] = True
                    resume((index, value))

            return on_fire

        for index, event in enumerate(events):
            event.subscribe(make_on_fire(index))

    # -- running ----------------------------------------------------------------------

    def run(self, until: float | None = None) -> float:
        """Drain the event heap (optionally stopping at time *until*);
        returns the final simulated time."""
        while self._heap:
            when, _, fn, args = self._heap[0]
            if until is not None and when > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = when
            self.events_processed += 1
            fn(*args)
        return self.now
