"""FIFO resources for the discrete-event simulator.

A :class:`Resource` models an exclusive (or bounded-capacity) server — a
storage node's CPU, for instance.  Processes ``yield resource.request()`` to
acquire a slot and call :meth:`Resource.release` when done; waiters are
granted strictly in request order, keeping simulations deterministic.

Used by the concurrent-query execution path: overlapping queries contend
for each node, so turnaround under load reflects queueing, not just raw
service times.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.sim.engine import SimError, SimEvent, Simulation


@dataclass
class Resource:
    """Bounded-capacity FIFO resource."""

    sim: Simulation
    capacity: int = 1
    name: str = ""
    _in_use: int = field(default=0, init=False)
    _waiters: deque = field(default_factory=deque, init=False)
    #: total grants, for utilisation accounting
    grants: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self) -> SimEvent:
        """An event that fires when a slot is granted to this requester."""
        event = self.sim.event(f"grant:{self.name}")
        if self._in_use < self.capacity:
            self._in_use += 1
            self.grants += 1
            event.fire()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Free one slot; the oldest waiter (if any) is granted immediately."""
        if self._in_use <= 0:
            raise SimError(f"release of idle resource {self.name!r}")
        if self._waiters:
            # Hand the slot straight to the next waiter (in_use unchanged).
            self.grants += 1
            self._waiters.popleft().fire()
        else:
            self._in_use -= 1
