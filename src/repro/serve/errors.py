"""Structured serving errors.

Every failure the gateway can hand back to a caller is a
:class:`ServeError` subclass with a stable machine-readable ``code``.  The
wire protocol maps them to ``{"ok": false, "error": <code>, "message": ...}``
responses, so clients can branch on the code (shed vs. timed out vs. bad
request) without parsing prose.
"""

from __future__ import annotations


class ServeError(Exception):
    """Base class for structured serving failures."""

    code = "error"

    def to_dict(self) -> dict:
        """The wire form of this error."""
        return {"error": self.code, "message": str(self)}


class Overloaded(ServeError):
    """Admission queue full: the request was shed without being executed."""

    code = "overloaded"


class DeadlineExceeded(ServeError):
    """The request's deadline passed before a result was produced."""

    code = "deadline_exceeded"


class InvalidRequest(ServeError):
    """The request could not be decoded or validated."""

    code = "invalid_request"


class ServiceClosed(ServeError):
    """The service is shutting down and accepts no new work."""

    code = "service_closed"


class DegradedResult(ServeError):
    """The query ran but covered only part of the index (node failures),
    and the request asked for complete answers (``allow_partial=False``)."""

    code = "degraded"

    def __init__(self, message: str, coverage: float = 0.0,
                 failed_nodes: list | None = None) -> None:
        super().__init__(message)
        self.coverage = coverage
        self.failed_nodes = list(failed_nodes or [])

    def to_dict(self) -> dict:
        out = super().to_dict()
        out["coverage"] = self.coverage
        out["failed_nodes"] = self.failed_nodes
        return out


class Unavailable(ServeError):
    """The client could not reach the server (after retries)."""

    code = "unavailable"


class ClientTimeout(ServeError):
    """The client gave up waiting for a response."""

    code = "client_timeout"
