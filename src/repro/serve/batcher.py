"""Micro-batching: coalesce requests arriving close together in time.

Requests submitted within a small *window* of each other — and sharing a
group key (for the query service: identical ``QueryParams``) — are executed
as one batch through a single ``execute(key, items)`` call.  For Mendel
that means one ``query_many`` pass over the simulated cluster instead of N
independent passes, which is exactly how a serving tier amortises dispatch
overhead under concurrent load.

Flush policy: a group flushes when its oldest item has waited *window*
seconds, or immediately once it reaches *max_batch* items.  Execution is
dispatched to an executor when one is supplied (concurrent batches), else
run inline on the flusher thread.

Result convention: ``execute`` returns one result per item, in order; a
result that is an ``Exception`` instance is delivered by *raising* it from
that item's future, letting one batch mix successes and per-item failures
(e.g. deadline-expired requests dropped at execution time).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

from repro.serve.errors import ServiceClosed


@dataclass
class BatcherStats:
    batches: int = 0
    items: int = 0
    largest_batch: int = 0

    @property
    def mean_batch(self) -> float:
        return self.items / self.batches if self.batches else 0.0

    def snapshot(self) -> dict:
        return {
            "batches": self.batches,
            "items": self.items,
            "largest_batch": self.largest_batch,
            "mean_batch": round(self.mean_batch, 3),
        }


@dataclass
class _Group:
    key: str
    flush_at: float
    items: list = field(default_factory=list)
    futures: list[Future] = field(default_factory=list)


class MicroBatcher:
    """Coalesces submitted items into keyed batches executed together.

    Parameters
    ----------
    execute:
        ``execute(key, items) -> list[result]`` — one result per item, in
        order (``Exception`` instances fail that item's future).
    window:
        Seconds a group's first item may wait for company before the group
        flushes.  ``0`` flushes as soon as the flusher wakes (items that
        race in before the wakeup still coalesce).
    max_batch:
        Flush a group immediately once it holds this many items.
    executor:
        Optional ``concurrent.futures`` executor for batch execution; when
        ``None``, batches run inline on the flusher thread (serialised).
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        execute,
        window: float = 0.002,
        max_batch: int = 8,
        executor=None,
        clock=time.monotonic,
    ) -> None:
        if window < 0:
            raise ValueError(f"window must be >= 0, got {window}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._execute = execute
        self.window = window
        self.max_batch = max_batch
        self._executor = executor
        self._clock = clock
        self.stats = BatcherStats()
        self._groups: dict[str, _Group] = {}
        self._cond = threading.Condition()
        self._closed = False
        self._flusher = threading.Thread(
            target=self._run_flusher, name="repro-serve-batcher", daemon=True
        )
        self._flusher.start()

    # -- submission ------------------------------------------------------------

    def submit(self, key: str, item) -> Future:
        """Queue *item* under *key*; the future resolves with its result."""
        future: Future = Future()
        with self._cond:
            if self._closed:
                raise ServiceClosed("batcher is closed")
            group = self._groups.get(key)
            if group is None:
                group = _Group(key=key, flush_at=self._clock() + self.window)
                self._groups[key] = group
            group.items.append(item)
            group.futures.append(future)
            self._cond.notify()
        return future

    def flush(self) -> None:
        """Force every pending group to flush on the next flusher wakeup."""
        with self._cond:
            for group in self._groups.values():
                group.flush_at = self._clock()
            self._cond.notify()

    def close(self, timeout: float | None = 5.0) -> None:
        """Stop accepting work; pending groups flush before the thread exits."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            for group in self._groups.values():
                group.flush_at = self._clock()
            self._cond.notify()
        self._flusher.join(timeout=timeout)

    # -- flusher ---------------------------------------------------------------

    def _run_flusher(self) -> None:
        while True:
            with self._cond:
                while True:
                    if self._groups:
                        now = self._clock()
                        due = [
                            key
                            for key, group in self._groups.items()
                            if group.flush_at <= now
                            or len(group.items) >= self.max_batch
                        ]
                        if due:
                            ready = [self._groups.pop(key) for key in due]
                            break
                        wake_in = min(
                            group.flush_at for group in self._groups.values()
                        ) - now
                        self._cond.wait(timeout=max(wake_in, 0.0))
                    elif self._closed:
                        return
                    else:
                        self._cond.wait()
            for group in ready:
                self._dispatch(group)

    def _dispatch(self, group: _Group) -> None:
        self.stats.batches += 1
        self.stats.items += len(group.items)
        self.stats.largest_batch = max(self.stats.largest_batch, len(group.items))
        if self._executor is not None:
            self._executor.submit(self._run_batch, group)
        else:
            self._run_batch(group)

    def _run_batch(self, group: _Group) -> None:
        try:
            results = self._execute(group.key, group.items)
            if len(results) != len(group.items):
                raise RuntimeError(
                    f"execute returned {len(results)} results for "
                    f"{len(group.items)} items"
                )
        except Exception as exc:
            for future in group.futures:
                if not future.done():
                    future.set_exception(exc)
            return
        for future, result in zip(group.futures, results):
            if future.done():
                continue
            if isinstance(result, BaseException):
                future.set_exception(result)
            else:
                future.set_result(result)
