"""The JSON-lines wire protocol shared by the server and client.

One request per line, one response per line, UTF-8 JSON objects:

Requests::

    {"op": "query", "id": "q1", "seq": "MKV...", "params": {"n": 8},
     "deadline": 2.0, "top": 5, "allow_partial": false, "trace": true}
    {"op": "explain", "id": "q2", "seq": "MKV...", "params": {"n": 8}}
    {"op": "stats"}
    {"op": "health"}
    {"op": "metrics"}
    {"op": "alerts"}
    {"op": "scale"}
    {"op": "profile", "action": "start", "hz": 67}

Responses::

    {"id": "q1", "ok": true, "cached": false, "trace_id": "t0000000007",
     "query_id": "q1", "alignments": [...], "coverage": 1.0,
     "degraded": false, "failed_nodes": [], "stats": {...}}
    {"id": "q1", "ok": false, "error": "overloaded", "message": "..."}
    {"ok": true, "content_type": "text/plain; version=0.0.4",
     "metrics": "# HELP repro_queries_total ...\n..."}

Every query response carries the ``trace_id`` of the span tree recorded
for the request (``null`` when tracing is off or the answer was served
from cache without a recorded trace); ``"trace": true`` additionally
returns the span tree itself under ``"trace"``.  ``{"op": "metrics"}``
returns the shared registry's Prometheus text exposition.
``{"op": "health"}`` includes the firing-alert list (and flips ``status``
to ``"alerting"`` when objectives are burning); ``{"op": "alerts"}``
returns the gateway monitor's full frame — rolling SLI windows, per-SLO
alert states with correlated causes and trace ids, recent transitions,
and the event tail.  ``{"op": "scale"}`` returns the autoscaler's status
frame (decision history, executed topology actions, current topology) or
``{"enabled": false}`` when the gateway runs without one; reading it also
ticks the lazy control loop, like HEALTH/ALERTS tick the monitor.
``{"op": "profile"}`` drives the continuous profiler (``action`` is
``start``, ``snapshot``, or ``stop``; ``hz`` sets the sampling rate on
start) and returns the profile frame under ``"profile"`` — sampled stage
shares, top functions, self-measured overhead, and the deterministic
cost profile.

``{"op": "explain"}`` runs the query once with tracing attached (bypassing
cache and batching) and returns the structured
:class:`~repro.core.explain.QueryPlan` under ``"plan"`` — routing, fan-out,
and the per-stage attrition funnel — plus its rendered form under
``"rendered"``.

``allow_partial`` (default true) controls degraded-mode behaviour: under
node failures a query may cover only part of the index; with
``allow_partial: false`` such an answer becomes an ``{"error": "degraded"}``
response instead of a best-effort result.

``params`` accepts any :class:`~repro.core.params.QueryParams` field by
name (Table I knobs plus the documented extensions); unknown names are an
``invalid_request`` error rather than silently ignored.
"""

from __future__ import annotations

import dataclasses
import json

from repro.align.result import Alignment
from repro.core.params import QueryParams
from repro.core.query import QueryReport
from repro.serve.errors import InvalidRequest

#: Longest accepted request/response line (guards the asyncio reader too).
MAX_LINE_BYTES = 4 * 1024 * 1024

_PARAM_FIELDS = {field.name for field in dataclasses.fields(QueryParams)}


def encode(message: dict) -> bytes:
    """One wire line for *message* (newline-terminated UTF-8 JSON)."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> dict:
    """Parse one wire line into a message dict; structured error on junk."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise InvalidRequest(f"undecodable request line: {exc}") from None
    if not isinstance(message, dict):
        raise InvalidRequest(
            f"request must be a JSON object, got {type(message).__name__}"
        )
    return message


def params_from_dict(raw: dict | None) -> QueryParams:
    """Build :class:`QueryParams` from wire knobs, validating strictly."""
    if raw is None:
        return QueryParams()
    if not isinstance(raw, dict):
        raise InvalidRequest(
            f"params must be a JSON object, got {type(raw).__name__}"
        )
    unknown = sorted(set(raw) - _PARAM_FIELDS)
    if unknown:
        raise InvalidRequest(f"unknown query params: {', '.join(unknown)}")
    try:
        return QueryParams(**raw)
    except (TypeError, ValueError) as exc:
        raise InvalidRequest(f"bad query params: {exc}") from None


def alignment_to_dict(alignment: Alignment) -> dict:
    return {
        "query_id": alignment.query_id,
        "subject_id": alignment.subject_id,
        "query_start": alignment.query_start,
        "query_end": alignment.query_end,
        "subject_start": alignment.subject_start,
        "subject_end": alignment.subject_end,
        "score": alignment.score,
        "bit_score": alignment.bit_score,
        "evalue": alignment.evalue,
        "identity": alignment.identity,
    }


def report_to_dict(report: QueryReport, top: int | None = None) -> dict:
    """The wire form of one query report (optionally truncated to *top*)."""
    alignments = report.alignments
    if top is not None:
        alignments = alignments[: max(0, int(top))]
    return {
        "query_id": report.query_id,
        "alignment_count": len(report.alignments),
        "alignments": [alignment_to_dict(a) for a in alignments],
        "coverage": report.coverage,
        "degraded": report.degraded,
        "failed_nodes": report.failed_nodes,
        "stats": dataclasses.asdict(report.stats),
    }
