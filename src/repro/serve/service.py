"""The concurrent query service: admission control, cache, micro-batching.

:class:`QueryService` fronts one built :class:`~repro.core.framework.Mendel`
deployment with the serving behaviours a library facade lacks:

* a **thread pool** executes queries concurrently (batches dispatched to
  workers, so distinct parameter groups overlap);
* a **bounded admission queue** caps in-flight work — submissions past the
  bound fast-fail with a structured :class:`~repro.serve.errors.Overloaded`
  error instead of growing an unbounded backlog (load shedding);
* **per-request deadlines** — requests that expire while queued are dropped
  at execution time, and waiters get a structured
  :class:`~repro.serve.errors.DeadlineExceeded`;
* a **result cache** (LRU + TTL) short-circuits repeated searches, and is
  invalidated whenever the index version changes (cache coherence with
  ``insert`` / ``add_node``);
* a **micro-batcher** coalesces near-simultaneous same-params requests into
  one ``query_many`` pass over the simulated cluster.

The service measures *wall-clock* latency (what a caller experiences on
this process); each report still carries the paper's *simulated* cluster
turnaround.  DESIGN.md discusses how the two layers compose.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field

from repro.core.explain import build_funnel
from repro.core.framework import Mendel
from repro.core.params import QueryParams
from repro.core.query import QueryReport
from repro.obs.analyze import (
    cluster_slow_queries,
    critical_path_table,
    merge_critical_tables,
    trace_fingerprint,
)
from repro.obs.events import EventLog
from repro.obs.export import prometheus_text
from repro.obs.health import HealthMonitor
from repro.obs.metrics import FamilySnapshot, MetricsRegistry, Sample, default_registry
from repro.obs.profile import Profiler
from repro.obs.trace import TraceContext
from repro.seq.records import SequenceRecord
from repro.serve.batcher import MicroBatcher
from repro.serve.cache import MISS, ResultCache
from repro.serve.errors import (
    DeadlineExceeded,
    DegradedResult,
    InvalidRequest,
    Overloaded,
    ServiceClosed,
)
from repro.serve.stats import ServiceStats


@dataclass
class ServeResult:
    """What the service resolves a request's future with."""

    report: QueryReport
    cached: bool = False
    #: wall-clock seconds from submission to completion (0 for cache hits)
    latency: float = 0.0
    #: trace id of the span tree recorded for this request (None when
    #: tracing is off or a custom runner handled the batch)
    trace_id: str | None = None


@dataclass
class _Request:
    record: SequenceRecord
    params: QueryParams
    cache_key: str
    deadline_at: float | None
    submitted_at: float = 0.0
    #: accept a degraded (coverage < 1) report instead of a structured error
    allow_partial: bool = True


class QueryService:
    """Concurrent, cached, load-shedding front end over one deployment.

    Parameters
    ----------
    mendel:
        The built deployment to serve.
    max_workers:
        Thread-pool width for batch execution.
    max_pending:
        Admission bound: maximum requests in flight (queued in the batcher
        plus executing).  Submissions beyond it are shed.
    batch_window / max_batch:
        Micro-batching knobs (see :class:`~repro.serve.batcher.MicroBatcher`).
    cache_capacity / cache_ttl:
        Result-cache shape; ``cache_capacity=0`` disables caching.
    default_deadline:
        Deadline (seconds) applied when a request does not carry one;
        ``None`` means no implicit deadline.
    runner:
        Override for the batch execution callable
        (``runner(records, params) -> list[QueryReport]``); defaults to
        ``mendel.query_many``.  A test seam, and the hook for serving
        alternative backends.  Custom runners keep the two-argument
        signature and are never traced.
    tracing:
        Record a span tree per executed request (``result.trace_id``; the
        tree rides on ``report.root_span``).  Only applies to the default
        runner.
    slow_query_threshold / slow_log_size:
        Requests whose wall-clock latency exceeds the threshold (seconds)
        are kept — span-tree summary included — in a bounded log surfaced
        as ``snapshot()["slow_queries"]``.  ``None`` disables the log.
    registry:
        Metrics registry to account into; defaults to the process-global
        one (so one METRICS scrape covers cluster and gateway).
    monitor:
        The wall-clock :class:`~repro.obs.health.HealthMonitor` backing the
        HEALTH/ALERTS verbs; auto-created (1s/10s/60s windows, latency SLO
        at the slow-query threshold when one is set) unless given.  Ticked
        lazily whenever health/alerts/stats are read, so an idle gateway
        spends nothing on it.
    event_log:
        Event log the service emits into (slow queries, alerts); defaults
        to the process-global log shared with the cluster.
    """

    def __init__(
        self,
        mendel: Mendel,
        *,
        max_workers: int = 4,
        max_pending: int = 64,
        batch_window: float = 0.002,
        max_batch: int = 8,
        cache_capacity: int = 1024,
        cache_ttl: float | None = None,
        default_deadline: float | None = None,
        runner=None,
        clock=time.monotonic,
        tracing: bool = True,
        slow_query_threshold: float | None = None,
        slow_log_size: int = 32,
        registry: MetricsRegistry | None = None,
        monitor: HealthMonitor | None = None,
        event_log: EventLog | None = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.mendel = mendel
        self.max_pending = max_pending
        self.default_deadline = default_deadline
        self.registry = registry if registry is not None else default_registry()
        self.stats = ServiceStats(clock=clock, registry=self.registry)
        self.tracing = tracing
        self.slow_query_threshold = slow_query_threshold
        self.cache = (
            ResultCache(capacity=cache_capacity, ttl=cache_ttl, clock=clock)
            if cache_capacity
            else None
        )
        self._traced_runner = runner is None
        self._runner = runner or mendel.query_many
        self._slow_log: deque[dict] = deque(maxlen=max(1, slow_log_size))
        self._m_slow = self.registry.counter(
            "repro_slow_queries_total",
            "Requests that exceeded the gateway's slow-query threshold",
            ("service",),
        ).labels(service=self.stats.service)
        self._clock = clock
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        self._batcher = MicroBatcher(
            self._execute_batch,
            window=batch_window,
            max_batch=max_batch,
            executor=self._pool,
            clock=clock,
        )
        self._lock = threading.Lock()
        self._inflight = 0
        self._seen_version = mendel.index_version
        self._closed = False
        # Collect-time callback: cache hit/miss counts and queue depth are
        # already tracked by the cache and admission layers, so METRICS
        # derives them at scrape time instead of double-counting.
        self._collect_cb = self.registry.register_callback(self._derived_families)
        # Balance audit gauges ride the same registry; the auditor caches
        # against index.version so scrapes stay cheap.
        self._balance = mendel._balance_auditor()
        self._balance.install(self.registry)
        # Continuous health on the gateway's wall clock: request latencies
        # and degradation feed the SLIs; ticking happens lazily on reads.
        if monitor is None:
            monitor = HealthMonitor(
                windows=(1.0, 10.0, 60.0),
                latency_threshold=slow_query_threshold,
                event_log=event_log,
                label=self.stats.service,
            )
        self.monitor = monitor
        self.monitor.install(self.registry)
        #: optional elastic control loop (see :meth:`enable_autoscaler`)
        self.scaler = None
        #: live continuous profiler (see :meth:`profile`), plus the last
        #: snapshot retained after a stop so PROFILE stays inspectable
        self._profiler: Profiler | None = None
        self._last_profile: dict | None = None

    # -- elasticity ------------------------------------------------------------

    def enable_autoscaler(self, policy=None, **kwargs) -> "AutoScaler":
        """Attach an :class:`~repro.scale.controller.AutoScaler` to this
        gateway.

        The scaler shares the service's wall-clock monitor, registry, and
        event log, reads the admission queue for pressure, and is ticked
        lazily from the same read paths that tick the monitor
        (:meth:`snapshot` / :meth:`health` / :meth:`alerts` /
        :meth:`scale_status`) — no extra thread.  Keyword arguments pass
        through to the controller."""
        from repro.scale.controller import AutoScaler

        if self.scaler is None:
            self.scaler = AutoScaler(
                index=self.mendel.index,
                monitor=self.monitor,
                queue_depth_fn=lambda: self.queue_depth,
                queue_capacity=self.max_pending,
                registry=self.registry,
                wall=True,
                **({"policy": policy} if policy is not None else {}),
                **kwargs,
            )
        return self.scaler

    def _maybe_scale(self, now: float) -> None:
        if self.scaler is not None:
            self.scaler.maybe_tick(now)

    def scale_status(self) -> dict:
        """The SCALE verb: autoscaler state, or ``enabled: False``."""
        if self.scaler is None:
            return {"enabled": False}
        now = self._clock()
        self.monitor.tick(now)
        self._maybe_scale(now)
        return {"enabled": True, **self.scaler.status()}

    # -- submission ------------------------------------------------------------

    def submit_text(
        self,
        text: str,
        params: QueryParams | None = None,
        query_id: str = "query",
        deadline: float | None = None,
        allow_partial: bool = True,
    ) -> Future:
        """Encode *text* under the index alphabet and submit it."""
        try:
            record = SequenceRecord.from_text(
                query_id, text, self.mendel.index.alphabet
            )
        except (ValueError, KeyError) as exc:
            self.stats.inc("received")
            self.stats.inc("invalid")
            return _failed(InvalidRequest(str(exc)))
        return self.submit(
            record, params, deadline=deadline, allow_partial=allow_partial
        )

    def submit(
        self,
        record: SequenceRecord,
        params: QueryParams | None = None,
        deadline: float | None = None,
        allow_partial: bool = True,
    ) -> Future:
        """Admit one query; returns a future resolving to :class:`ServeResult`.

        Structured failures (:class:`Overloaded`, :class:`DeadlineExceeded`,
        :class:`InvalidRequest`, :class:`ServiceClosed`,
        :class:`DegradedResult`) are delivered by raising from the future,
        never by crashing the service.

        ``allow_partial=False`` turns a degraded report (node failures left
        ``coverage < 1``) into a :class:`DegradedResult` error; the default
        accepts best-effort answers and lets callers inspect
        ``report.coverage`` themselves.
        """
        self.stats.inc("received")
        if self._closed:
            return _failed(ServiceClosed("service is closed"))
        params = params or QueryParams()
        problem = self._validate(record)
        if problem is not None:
            self.stats.inc("invalid")
            return _failed(problem)

        self._refresh_cache_epoch()
        key = ResultCache.make_key(
            self.mendel.index.alphabet.name, record.text, params
        )
        if self.cache is not None:
            hit = self.cache.get(key)
            if hit is not MISS:
                replayed = _replay(hit, record.seq_id)
                return _done(
                    ServeResult(
                        report=replayed, cached=True,
                        trace_id=replayed.trace_id,
                    )
                )

        with self._lock:
            if self._inflight >= self.max_pending:
                self.stats.inc("shed")
                return _failed(
                    Overloaded(
                        f"admission queue full ({self._inflight} in flight, "
                        f"bound {self.max_pending})"
                    )
                )
            self._inflight += 1

        deadline = deadline if deadline is not None else self.default_deadline
        now = self._clock()
        request = _Request(
            record=record,
            params=params,
            cache_key=key,
            deadline_at=(now + deadline) if deadline is not None else None,
            submitted_at=now,
            allow_partial=allow_partial,
        )
        try:
            future = self._batcher.submit(params.cache_key(), request)
        except ServiceClosed as exc:
            with self._lock:
                self._inflight -= 1
            return _failed(exc)
        future.add_done_callback(self._on_done)
        return future

    def query(
        self,
        record: SequenceRecord,
        params: QueryParams | None = None,
        deadline: float | None = None,
        allow_partial: bool = True,
    ) -> ServeResult:
        """Synchronous submit-and-wait; raises structured errors directly."""
        deadline = deadline if deadline is not None else self.default_deadline
        future = self.submit(
            record, params, deadline=deadline, allow_partial=allow_partial
        )
        try:
            return future.result(timeout=deadline)
        except FutureTimeoutError:
            self.stats.inc("timeouts")
            raise DeadlineExceeded(
                f"no result within the {deadline}s deadline"
            ) from None

    def query_text(
        self,
        text: str,
        params: QueryParams | None = None,
        query_id: str = "query",
        deadline: float | None = None,
        allow_partial: bool = True,
    ) -> ServeResult:
        deadline = deadline if deadline is not None else self.default_deadline
        future = self.submit_text(
            text, params, query_id=query_id, deadline=deadline,
            allow_partial=allow_partial,
        )
        try:
            return future.result(timeout=deadline)
        except FutureTimeoutError:
            self.stats.inc("timeouts")
            raise DeadlineExceeded(
                f"no result within the {deadline}s deadline"
            ) from None

    # -- explain ---------------------------------------------------------------

    def explain(self, record: SequenceRecord, params: QueryParams | None = None):
        """EXPLAIN *record*: run it once traced and return the structured
        :class:`~repro.core.explain.QueryPlan`.

        Deliberately bypasses the cache and the micro-batcher — the plan
        must reflect a real, solo cluster execution, not a replayed or
        coalesced one.  Raises :class:`InvalidRequest` /
        :class:`ServiceClosed` like :meth:`submit`.
        """
        if self._closed:
            raise ServiceClosed("service is closed")
        problem = self._validate(record)
        if problem is not None:
            raise problem
        return self.mendel.explain(record, params)

    def submit_explain(
        self,
        text: str,
        params: QueryParams | None = None,
        query_id: str = "explain",
    ) -> Future:
        """Encode *text* and EXPLAIN it on the worker pool (async form the
        TCP gateway awaits); resolves to a :class:`QueryPlan`."""
        try:
            record = SequenceRecord.from_text(
                query_id, text, self.mendel.index.alphabet
            )
        except (ValueError, KeyError) as exc:
            return _failed(InvalidRequest(str(exc)))
        if self._closed:
            return _failed(ServiceClosed("service is closed"))
        problem = self._validate(record)
        if problem is not None:
            return _failed(problem)
        return self._pool.submit(self.mendel.explain, record, params)

    # -- execution -------------------------------------------------------------

    def _execute_batch(self, key: str, requests: list[_Request]) -> list:
        """Run one coalesced batch; one result (or exception) per request."""
        now = self._clock()
        out: list = [None] * len(requests)
        live: list[tuple[int, _Request]] = []
        for i, request in enumerate(requests):
            if request.deadline_at is not None and now > request.deadline_at:
                self.stats.inc("timeouts")
                waited = now - request.submitted_at
                out[i] = DeadlineExceeded(
                    f"deadline expired after {waited * 1e3:.1f} ms in queue"
                )
            else:
                live.append((i, request))
        if not live:
            return out
        records = [request.record for _, request in live]
        params = live[0][1].params
        try:
            if self._traced_runner and self.tracing:
                contexts = [TraceContext() for _ in live]
                reports = self._runner(records, params, trace_contexts=contexts)
            else:
                reports = self._runner(records, params)
        except Exception as exc:  # backend failure: fail each live request
            self.stats.inc("errors", by=len(live))
            for i, _request in live:
                out[i] = exc
            return out
        done = self._clock()
        for (i, request), report in zip(live, reports):
            if report.degraded:
                # A degraded answer reflects transient cluster state, not the
                # search — never cache it, or the failure outlives the repair.
                self.stats.inc("degraded")
                if not request.allow_partial:
                    self.stats.inc("partial_rejected")
                    out[i] = DegradedResult(
                        f"only {report.coverage:.1%} of the index was "
                        f"searchable ({len(report.failed_nodes)} node(s) "
                        "failed) and the request required a complete answer",
                        coverage=report.coverage,
                        failed_nodes=report.failed_nodes,
                    )
                    continue
            elif self.cache is not None:
                self.cache.put(request.cache_key, report)
            latency = done - request.submitted_at
            self.stats.record_latency(latency)
            self.monitor.observe_request(
                done, latency, degraded=report.degraded,
                trace_id=report.trace_id,
            )
            if (
                self.slow_query_threshold is not None
                and latency > self.slow_query_threshold
            ):
                self._note_slow(request, report, latency)
            out[i] = ServeResult(
                report=report, cached=False, latency=latency,
                trace_id=report.trace_id,
            )
        return out

    def _note_slow(
        self, request: _Request, report: QueryReport, latency: float
    ) -> None:
        """Keep a span-tree summary of a threshold-exceeding request.

        Beyond the rendered tree, each entry carries the reconciled EXPLAIN
        attrition funnel, the trace fingerprint, and its own critical-path
        table — all JSON-shaped, so families stay joinable to query plans
        from a STATS/ANALYZE payload without re-running anything.
        """
        root = report.root_span
        fingerprint = trace_fingerprint(root) if root is not None else None
        entry = {
            "query_id": request.record.seq_id,
            "trace_id": report.trace_id,
            "latency_ms": round(latency * 1e3, 3),
            "turnaround_ms": round(report.stats.turnaround * 1e3, 3),
            "coverage": report.coverage,
            "degraded": report.degraded,
            "spans": root.format_tree() if root is not None else None,
            "funnel": [stage.to_dict() for stage in build_funnel(report)],
            "fingerprint": (
                fingerprint.to_dict() if fingerprint is not None else None
            ),
            "family": (
                fingerprint.family if fingerprint is not None else "untraced"
            ),
            "critical_path": (
                critical_path_table([root]) if root is not None else []
            ),
        }
        with self._lock:
            self._slow_log.append(entry)
        self._m_slow.inc()
        # The same entry, joinable: the event log row carries the trace id
        # the slow-log entry does, so a slow query, its span tree, and any
        # alert it contributed to all meet on one key.
        self.monitor.events.emit(
            "slow_query",
            self.stats.service,
            f"{request.record.seq_id} took {latency * 1e3:.1f} ms",
            trace_id=report.trace_id,
            latency_ms=round(latency * 1e3, 3),
            turnaround_ms=round(report.stats.turnaround * 1e3, 3),
            degraded=report.degraded,
        )

    # -- lifecycle & introspection --------------------------------------------

    def _on_done(self, _future: Future) -> None:
        with self._lock:
            self._inflight -= 1

    def _validate(self, record: SequenceRecord) -> InvalidRequest | None:
        index = self.mendel.index
        if record.alphabet.name != index.alphabet.name:
            return InvalidRequest(
                f"query alphabet {record.alphabet.name!r} does not match the "
                f"indexed alphabet {index.alphabet.name!r}"
            )
        if len(record) < index.segment_length:
            return InvalidRequest(
                f"query length {len(record)} is shorter than the indexed "
                f"segment length {index.segment_length}"
            )
        return None

    def _refresh_cache_epoch(self) -> None:
        """Invalidate the cache when the index has mutated since last seen."""
        if self.cache is None:
            return
        version = self.mendel.index_version
        with self._lock:
            if version != self._seen_version:
                self._seen_version = version
                self.cache.invalidate()

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return self._inflight

    def snapshot(self) -> dict:
        """Everything the STATS op reports."""
        out = self.stats.snapshot()
        out["queue_depth"] = self.queue_depth
        out["max_pending"] = self.max_pending
        out["index_version"] = self.mendel.index_version
        out["cache"] = self.cache.snapshot() if self.cache is not None else None
        out["batcher"] = self._batcher.stats.snapshot()
        out["slow_query_threshold"] = self.slow_query_threshold
        with self._lock:
            out["slow_queries"] = list(self._slow_log)
        out["balance"] = self._balance.report().summary()
        now = self._clock()
        self.monitor.tick(now)
        self._maybe_scale(now)
        out["alerts_firing"] = self.monitor.alerts_firing()
        return out

    def metrics_text(self) -> str:
        """The Prometheus text exposition of this service's registry (the
        process-global one by default, so cluster counters ride along) —
        what the METRICS verb returns."""
        return prometheus_text(self.registry)

    def _derived_families(self) -> list[FamilySnapshot]:
        """Collect-time samples for values other components already track."""
        labels = (("service", self.stats.service),)
        snaps = [
            FamilySnapshot(
                name="repro_serve_queue_depth",
                kind="gauge",
                help="Requests currently in flight at the gateway",
                samples=[Sample("repro_serve_queue_depth", labels,
                                float(self.queue_depth))],
            )
        ]
        if self.cache is not None:
            cache = self.cache.stats
            snaps.append(
                FamilySnapshot(
                    name="repro_cache_hits_total",
                    kind="counter",
                    help="Result-cache hits at the serving gateway",
                    samples=[Sample("repro_cache_hits_total", labels,
                                    float(cache.hits))],
                )
            )
            snaps.append(
                FamilySnapshot(
                    name="repro_cache_misses_total",
                    kind="counter",
                    help="Result-cache misses at the serving gateway",
                    samples=[Sample("repro_cache_misses_total", labels,
                                    float(cache.misses))],
                )
            )
        profiler = self._profiler
        if profiler is not None:
            sampling = profiler.sampler
            snaps.append(
                FamilySnapshot(
                    name="repro_profile_samples_total",
                    kind="counter",
                    help="Stacks captured by the continuous profiler",
                    samples=[Sample("repro_profile_samples_total", labels,
                                    float(sampling.snapshot()["samples"]))],
                )
            )
            snaps.append(
                FamilySnapshot(
                    name="repro_profile_overhead_ratio",
                    kind="gauge",
                    help=(
                        "Fraction of wall time the sampling profiler "
                        "spends on itself"
                    ),
                    samples=[Sample("repro_profile_overhead_ratio", labels,
                                    float(sampling.overhead))],
                )
            )
            share_samples = [
                Sample("repro_profile_stage_share",
                       labels + (("stage", row["stage"]),),
                       float(row["share"]))
                for row in sampling.stage_shares()
            ]
            if share_samples:
                snaps.append(
                    FamilySnapshot(
                        name="repro_profile_stage_share",
                        kind="gauge",
                        help=(
                            "Share of sampled wall-clock stacks per "
                            "pipeline stage"
                        ),
                        samples=share_samples,
                    )
                )
        with self._lock:
            entries = list(self._slow_log)
        if entries:
            count_samples = []
            turnaround_samples = []
            for family in cluster_slow_queries(entries):
                family_labels = labels + (("family", family["family"]),)
                count_samples.append(
                    Sample("repro_slowfamily_queries", family_labels,
                           float(family["count"]))
                )
                turnaround_samples.append(
                    Sample("repro_slowfamily_turnaround_ms", family_labels,
                           float(family["mean_turnaround_ms"]))
                )
            snaps.append(
                FamilySnapshot(
                    name="repro_slowfamily_queries",
                    kind="gauge",
                    help=(
                        "Slow-log entries per trace family "
                        "(span-shape cluster)"
                    ),
                    samples=count_samples,
                )
            )
            snaps.append(
                FamilySnapshot(
                    name="repro_slowfamily_turnaround_ms",
                    kind="gauge",
                    help="Mean sim-clock turnaround per slow trace family",
                    samples=turnaround_samples,
                )
            )
        return snaps

    def health(self) -> dict:
        """Liveness summary: service state plus the cluster's.

        ``status`` is ``"degraded"`` (not ``"ok"``) while any storage node
        is dead — answers may be partial until repair or rejoin completes.
        """
        cluster = self.mendel.cluster_health()
        if self._closed:
            status = "closed"
        elif cluster["nodes_dead"]:
            status = "degraded"
        else:
            status = "ok"
        now = self._clock()
        self.monitor.tick(now)
        self._maybe_scale(now)
        firing = self.monitor.alerts_firing()
        if status == "ok" and firing:
            status = "alerting"
        durability = self.mendel.durability()
        return {
            "status": status,
            "queue_depth": self.queue_depth,
            "max_pending": self.max_pending,
            "index_version": self.mendel.index_version,
            "cluster": cluster,
            "balance": self._balance.report().summary(),
            "alerts_firing": firing,
            "alerts": self.monitor.slo_engine.states_dict(),
            # The durable substrate, rolled up: RAM can be rebuilt, these
            # can't — a degraded WAL or full device is pre-outage signal.
            "durability": {
                "durable_blocks": durability["durable_blocks"],
                "wal_records": durability["wal_records"],
                "degraded_nodes": durability["degraded_nodes"],
            },
            # Tier occupancy rollup: zeroes while the deployment is all-RAM.
            "storage": self._storage_health(),
        }

    def _storage_health(self) -> dict:
        tier = self.mendel.index.tier_report()
        cache = tier.get("cache") or {}
        return {
            "tiered": tier["enabled"],
            "spilled_nodes": tier["spilled_nodes"],
            "bytes_on_disk": tier["bytes_on_disk"],
            "compression_ratio": tier["compression_ratio"],
            "resident_fraction": tier["resident_fraction"],
            "pinned_pages": tier.get("pinned_pages", 0),
            "cold_read_seeks": tier.get("cold_read_seeks", 0),
            "cold_read_bytes": tier.get("cold_read_bytes", 0),
            "cache_hits": cache.get("hits", 0.0),
            "cache_misses": cache.get("misses", 0.0),
            "cache_evictions": cache.get("evictions", 0.0),
            "cache_resident_pages": cache.get("resident_pages", 0),
        }

    # -- durability and integrity ----------------------------------------------

    def scrub(self, heal: bool = True) -> dict:
        """The SCRUB verb: one wall-clock anti-entropy pass over every
        replica copy.

        Digest-verifies each copy, quarantines confirmed-corrupt ones, and
        (with ``heal=True``) streams them back from verified replicas
        immediately.  Observations feed the gateway monitor's ``integrity``
        SLI and the shared event log, so a scrub that finds rot also fires
        the integrity alert with a correlated cause.
        """
        if self._closed:
            raise ServiceClosed("service is closed")
        from repro.faults.repair import ReReplicator
        from repro.store.scrub import IntegrityScrubber

        now = self._clock()
        repairer = ReReplicator(self.mendel.index)
        scrubber = IntegrityScrubber(
            self.mendel.index,
            event_log=self.monitor.events,
            recorder=self.monitor.recorder,
            registry=self.registry,
            heal=(
                (lambda group, findings: repairer.sync_group(group))
                if heal
                else None
            ),
        )
        scrubber.scrub_all(now=now)
        if scrubber.report.quarantined:
            # Holdings changed: queries must not replay pre-scrub answers.
            self.mendel.index.version += 1
        self.monitor.tick(self._clock())
        return {"healed": heal, **scrubber.report.to_dict()}

    def recover(self, node_id: str | None = None) -> dict:
        """The RECOVER verb: restart crashed node(s) from durable state.

        With ``node_id`` recovers that node; without, every dead node.
        Each recovery replays the node's snapshot + WAL and reconciles its
        group back to canonical placement.  Returns the per-node replay
        reports (blocks replayed, torn records, CRC errors).
        """
        if self._closed:
            raise ServiceClosed("service is closed")
        index = self.mendel.index
        dead = sorted(
            n.node_id for n in index.topology.nodes if not n.alive
        )
        targets = [node_id] if node_id is not None else dead
        recovered = {}
        for target in targets:
            node = index.recover_node(target)  # KeyError for unknown nodes
            recovered[target] = dict(node.last_recovery or {})
            self.monitor.events.emit(
                "restart", target,
                f"{target} recovered from durable state "
                f"({recovered[target].get('blocks', 0)} blocks replayed)",
            )
        return {
            "was_dead": dead,
            "recovered": recovered,
            "still_dead": sorted(
                n.node_id for n in index.topology.nodes if not n.alive
            ),
        }

    def durability(self) -> dict:
        """Per-node durable-state status (the HEALTH verb's detail view)."""
        return self.mendel.durability()

    def alerts(self) -> dict:
        """The ALERTS verb: the monitor's full frame — SLI windows, alert
        states with correlated causes, recent transitions, event tail.

        The frame also carries the tier-storage rollup so ``repro watch
        --gateway`` can render its tier-cache panel from one poll."""
        now = self._clock()
        self.monitor.tick(now)
        self._maybe_scale(now)
        out = self.monitor.snapshot(now)
        out["firing"] = self.monitor.alerts_firing()
        out["storage"] = self._storage_health()
        if self._profiler is not None:
            out["profile"] = self._profiler.snapshot()
        return out

    def profile(self, action: str = "snapshot", hz: float | None = None) -> dict:
        """The PROFILE verb: start/snapshot/stop the continuous profiler.

        ``start`` attaches a :class:`~repro.obs.profile.Profiler` (sampling
        wall-clock stacks tagged with span stages, plus the deterministic
        cost profiler charging sim counters to code sites); idempotent —
        a second start reports the running profiler.  ``snapshot`` returns
        the live aggregate without disturbing it (or the last retained one
        after a stop).  ``stop`` detaches and returns the final profile.
        """
        if action not in ("start", "snapshot", "stop"):
            raise InvalidRequest(
                f"unknown profile action {action!r}; "
                "expected start, snapshot, or stop"
            )
        if action == "start":
            if self._closed:
                raise ServiceClosed("service is closed")
            if self._profiler is None:
                self._profiler = Profiler(**({"hz": hz} if hz else {}))
                self._profiler.start()
            snap = self._profiler.snapshot()
            snap["action"] = "start"
            return snap
        if action == "stop":
            if self._profiler is None:
                raise InvalidRequest("no profiler is running")
            snap = self._profiler.stop()
            snap["action"] = "stop"
            self._last_profile = snap
            self._profiler = None
            return snap
        if self._profiler is not None:
            snap = self._profiler.snapshot()
        elif self._last_profile is not None:
            snap = dict(self._last_profile)
        else:
            raise InvalidRequest(
                "no profiler is running and none has run; "
                "start one with action='start'"
            )
        snap["action"] = "snapshot"
        return snap

    def analyze(self) -> dict:
        """The ANALYZE verb: trace analytics over the slow-query log.

        Clusters the logged entries into span-shape families (named, with
        exemplar trace ids) and merges their per-entry critical-path
        tables into one flamegraph-style per-stage breakdown whose
        self-times sum to the logged turnarounds exactly.
        """
        with self._lock:
            entries = list(self._slow_log)
        return {
            "slow_queries": len(entries),
            "slow_query_threshold": self.slow_query_threshold,
            "families": cluster_slow_queries(entries),
            "critical_path": merge_critical_tables(
                entry.get("critical_path") or [] for entry in entries
            ),
        }

    def close(self) -> None:
        """Stop admitting work, flush pending batches, release the pool."""
        if self._closed:
            return
        self._closed = True
        if self._profiler is not None:
            self._last_profile = self._profiler.stop()
            self._profiler = None
        self.registry.unregister_callback(self._collect_cb)
        self._balance.uninstall()
        self.monitor.uninstall()
        self._batcher.close()
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def _replay(report: QueryReport, query_id: str) -> QueryReport:
    """A cache hit re-addressed to the requesting query id.

    Alignments keep the original query's id (they are frozen and shared);
    only the report envelope is re-labelled.
    """
    return QueryReport(
        query_id=query_id,
        alignments=report.alignments,
        stats=report.stats,
        trace=report.trace,
        coverage=report.coverage,
        degraded=report.degraded,
        failed_nodes=report.failed_nodes,
        root_span=report.root_span,
    )


def _failed(error: Exception) -> Future:
    future: Future = Future()
    future.set_exception(error)
    return future


def _done(result: ServeResult) -> Future:
    future: Future = Future()
    future.set_result(result)
    return future
