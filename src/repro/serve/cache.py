"""LRU + TTL result cache for the query-serving gateway.

Keys are a canonical SHA-256 of ``(alphabet, query residues, QueryParams)``
— see :func:`ResultCache.make_key` — so two requests that mean the same
search share one entry regardless of query id or parameter spelling
(``M="blosum62"`` vs ``"BLOSUM62"``, ``S=1`` vs ``S=1.0``).

The cache is thread-safe, bounded (least-recently-used eviction), and
optionally time-bounded (per-entry TTL).  ``invalidate()`` drops every
entry at once; the service calls it whenever the underlying index version
changes (sequence inserts, node additions), keeping cached reports coherent
with the data they were computed from.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.params import QueryParams

#: Sentinel returned by :meth:`ResultCache.get` on a miss (``None`` is a
#: legitimate cached value).
MISS = object()


@dataclass
class CacheStats:
    """Counter block surfaced through the STATS op."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    expirations: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass
class _Entry:
    value: object
    expires_at: float = field(default=float("inf"))


class ResultCache:
    """Bounded, thread-safe LRU cache with optional per-entry TTL.

    Parameters
    ----------
    capacity:
        Maximum entries held; inserting past it evicts the least recently
        used entry.
    ttl:
        Seconds an entry stays fresh; ``None`` means entries never expire.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        capacity: int = 1024,
        ttl: float | None = None,
        clock=time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be positive or None, got {ttl}")
        self.capacity = capacity
        self.ttl = ttl
        self.stats = CacheStats()
        self._clock = clock
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        self._lock = threading.Lock()

    # -- keys -----------------------------------------------------------------

    @staticmethod
    def make_key(alphabet: str, seq_text: str, params: QueryParams) -> str:
        """Canonical cache key for one search.

        Query id and parameter spelling are deliberately excluded /
        normalised: the key depends only on what is searched and how.
        """
        payload = f"{alphabet}|{seq_text}|{params.cache_key()}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- operations -----------------------------------------------------------

    def get(self, key: str):
        """The cached value for *key*, or the :data:`MISS` sentinel."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return MISS
            if entry.expires_at <= self._clock():
                del self._entries[key]
                self.stats.expirations += 1
                self.stats.misses += 1
                return MISS
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry.value

    def put(self, key: str, value) -> None:
        with self._lock:
            expires = (
                self._clock() + self.ttl if self.ttl is not None else float("inf")
            )
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = _Entry(value=value, expires_at=expires)
            self.stats.puts += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def invalidate(self) -> int:
        """Drop every entry (index rebuild / mutation); returns the count."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.stats.invalidations += 1
            return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> dict:
        with self._lock:
            out = self.stats.snapshot()
            out["size"] = len(self._entries)
            out["capacity"] = self.capacity
            out["ttl"] = self.ttl
            return out
