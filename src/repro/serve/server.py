"""Asyncio TCP front end: JSON-lines requests bridged into the service.

:class:`QueryServer` accepts connections on an event loop and keeps every
connection handler non-blocking: QUERY work is submitted to the
:class:`~repro.serve.service.QueryService` thread pool and awaited through
``asyncio.wrap_future``, so slow searches never stall other connections —
the event loop only shuttles lines and futures.

For synchronous callers (tests, examples, the CLI client side) ,
:class:`BackgroundServer` runs the whole loop on a daemon thread and exposes
the bound address once the socket is listening.
"""

from __future__ import annotations

import asyncio
import threading

from repro.serve.errors import DeadlineExceeded, InvalidRequest, ServeError
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    decode_line,
    encode,
    params_from_dict,
    report_to_dict,
)
from repro.serve.service import QueryService

#: Wall-clock slack past a request's deadline before the server gives up on
#: the in-flight future itself (the service usually resolves the structured
#: timeout first; this is the backstop for stuck compute).
_DEADLINE_GRACE = 0.25


class QueryServer:
    """One listening socket bridging the wire protocol into a service."""

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        """Bind and start accepting; ``self.port`` is the real bound port."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=MAX_LINE_BYTES
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling ---------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                while True:
                    try:
                        line = await reader.readline()
                    except (asyncio.LimitOverrunError, ValueError):
                        writer.write(
                            encode(
                                {
                                    "ok": False,
                                    **InvalidRequest(
                                        "request line too long"
                                    ).to_dict(),
                                }
                            )
                        )
                        await writer.drain()
                        break
                    if not line:
                        break
                    response = await self._dispatch(line)
                    writer.write(encode(response))
                    await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError):
                    pass
        except asyncio.CancelledError:
            # Event-loop teardown cancelled this connection mid-await; the
            # transport dies with the loop — exit without re-raising so the
            # streams machinery doesn't log a spurious traceback.
            writer.close()

    async def _dispatch(self, line: bytes) -> dict:
        request_id = None
        try:
            message = decode_line(line)
            request_id = message.get("id")
            op = message.get("op")
            if op == "query":
                return await self._op_query(message, request_id)
            if op == "explain":
                return await self._op_explain(message, request_id)
            if op == "stats":
                return {"id": request_id, "ok": True, "stats": self.service.snapshot()}
            if op == "health":
                return {"id": request_id, "ok": True, **self.service.health()}
            if op == "alerts":
                return {"id": request_id, "ok": True, **self.service.alerts()}
            if op == "analyze":
                return {"id": request_id, "ok": True, **self.service.analyze()}
            if op == "scale":
                return {
                    "id": request_id, "ok": True,
                    **self.service.scale_status(),
                }
            if op == "profile":
                return self._op_profile(message, request_id)
            if op == "scrub":
                return await self._op_scrub(message, request_id)
            if op == "recover":
                return await self._op_recover(message, request_id)
            if op == "metrics":
                return {
                    "id": request_id,
                    "ok": True,
                    "content_type": "text/plain; version=0.0.4",
                    "metrics": self.service.metrics_text(),
                }
            raise InvalidRequest(f"unknown op {op!r}")
        except ServeError as exc:
            return {"id": request_id, "ok": False, **exc.to_dict()}
        except Exception as exc:  # never crash a connection on a bad request
            return {
                "id": request_id,
                "ok": False,
                "error": "internal",
                "message": f"{type(exc).__name__}: {exc}",
            }

    async def _op_query(self, message: dict, request_id) -> dict:
        seq = message.get("seq")
        if not isinstance(seq, str) or not seq:
            raise InvalidRequest("query needs a non-empty string 'seq'")
        params = params_from_dict(message.get("params"))
        deadline = message.get("deadline")
        if deadline is not None and (
            not isinstance(deadline, (int, float)) or deadline <= 0
        ):
            raise InvalidRequest(f"deadline must be a positive number, got {deadline!r}")
        allow_partial = message.get("allow_partial", True)
        if not isinstance(allow_partial, bool):
            raise InvalidRequest(
                f"allow_partial must be a boolean, got {allow_partial!r}"
            )
        want_trace = message.get("trace", False)
        if not isinstance(want_trace, bool):
            raise InvalidRequest(
                f"trace must be a boolean, got {want_trace!r}"
            )
        future = self.service.submit_text(
            seq,
            params,
            query_id=str(request_id) if request_id is not None else "query",
            deadline=deadline,
            allow_partial=allow_partial,
        )
        timeout = (deadline + _DEADLINE_GRACE) if deadline is not None else None
        try:
            result = await asyncio.wait_for(asyncio.wrap_future(future), timeout)
        except asyncio.TimeoutError:
            self.service.stats.inc("timeouts")
            raise DeadlineExceeded(
                f"no result within the {deadline}s deadline"
            ) from None
        response = {
            "id": request_id,
            "ok": True,
            "cached": result.cached,
            "trace_id": result.trace_id,
            **report_to_dict(result.report, top=message.get("top")),
        }
        if want_trace and result.report.root_span is not None:
            response["trace"] = result.report.root_span.to_dict()
        return response

    def _op_profile(self, message: dict, request_id) -> dict:
        action = message.get("action", "snapshot")
        if not isinstance(action, str):
            raise InvalidRequest(f"action must be a string, got {action!r}")
        hz = message.get("hz")
        if hz is not None and (
            not isinstance(hz, (int, float)) or hz <= 0
        ):
            raise InvalidRequest(f"hz must be a positive number, got {hz!r}")
        snap = self.service.profile(action=action, hz=hz)
        return {"id": request_id, "ok": True, "profile": snap}

    async def _op_scrub(self, message: dict, request_id) -> dict:
        heal = message.get("heal", True)
        if not isinstance(heal, bool):
            raise InvalidRequest(f"heal must be a boolean, got {heal!r}")
        # Scrub walks every replica copy — run it off the event loop so
        # concurrent queries keep flowing while digests are verified.
        report = await asyncio.get_running_loop().run_in_executor(
            None, lambda: self.service.scrub(heal=heal)
        )
        return {"id": request_id, "ok": True, **report}

    async def _op_recover(self, message: dict, request_id) -> dict:
        node = message.get("node")
        if node is not None and not isinstance(node, str):
            raise InvalidRequest(f"node must be a string, got {node!r}")
        try:
            outcome = await asyncio.get_running_loop().run_in_executor(
                None, lambda: self.service.recover(node_id=node)
            )
        except KeyError as exc:
            raise InvalidRequest(f"unknown node {node!r}") from exc
        return {"id": request_id, "ok": True, **outcome}

    async def _op_explain(self, message: dict, request_id) -> dict:
        seq = message.get("seq")
        if not isinstance(seq, str) or not seq:
            raise InvalidRequest("explain needs a non-empty string 'seq'")
        params = params_from_dict(message.get("params"))
        future = self.service.submit_explain(
            seq,
            params,
            query_id=str(request_id) if request_id is not None else "explain",
        )
        plan = await asyncio.wrap_future(future)
        return {
            "id": request_id,
            "ok": True,
            "plan": plan.to_dict(),
            "rendered": plan.render(),
        }


class BackgroundServer:
    """Run a :class:`QueryServer` on a daemon thread (for sync callers).

    Context-manager use::

        with BackgroundServer(service) as server:
            client = ServeClient(server.host, server.port)
            ...

    The ``with`` body runs only after the socket is listening; exit stops
    the loop and joins the thread.
    """

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._server = QueryServer(service, host=host, port=port)
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-server", daemon=True
        )
        self._startup_error: BaseException | None = None

    @property
    def host(self) -> str:
        return self._server.host

    @property
    def port(self) -> int:
        return self._server.port

    def start(self, timeout: float = 10.0) -> "BackgroundServer":
        self._thread.start()
        if not self._ready.wait(timeout=timeout):
            raise RuntimeError("server failed to start within the timeout")
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        return self

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=timeout)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            await self._server.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            raise
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await self._server.stop()

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()
