"""Service-level accounting: request counters and latency percentiles.

Everything here measures *wall-clock service behaviour* (queueing, batching,
cache hits), which is distinct from the *simulated* turnaround carried
inside each :class:`~repro.core.query.QueryReport` — see DESIGN.md for how
the two clocks layer.
"""

from __future__ import annotations

import threading
import time
from collections import deque


class LatencyTracker:
    """Streaming latency summary over a bounded reservoir of recent samples.

    Exact count / mean / max over the whole stream; percentiles over the
    last *reservoir* samples (recent-window percentiles are what you watch
    on a serving dashboard anyway).
    """

    def __init__(self, reservoir: int = 1024) -> None:
        if reservoir < 1:
            raise ValueError(f"reservoir must be >= 1, got {reservoir}")
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self._recent: deque[float] = deque(maxlen=reservoir)

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds
        self._recent.append(seconds)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """The *p*-th percentile (0..100) of the recent window; 0 if empty."""
        if not self._recent:
            return 0.0
        ordered = sorted(self._recent)
        rank = max(0, min(len(ordered) - 1, round(p / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "mean_ms": round(self.mean * 1e3, 3),
            "p50_ms": round(self.percentile(50) * 1e3, 3),
            "p90_ms": round(self.percentile(90) * 1e3, 3),
            "p99_ms": round(self.percentile(99) * 1e3, 3),
            "max_ms": round(self.max * 1e3, 3),
        }


class ServiceStats:
    """Thread-safe counters for the gateway, surfaced through STATS."""

    def __init__(self, clock=time.monotonic) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self.started_at = clock()
        self.received = 0
        self.completed = 0
        self.shed = 0
        self.timeouts = 0
        self.invalid = 0
        self.errors = 0
        #: completed queries whose report came back degraded (coverage < 1)
        self.degraded = 0
        #: degraded results rejected because the caller required completeness
        self.partial_rejected = 0
        self.latency = LatencyTracker()

    def inc(self, name: str, by: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + by)

    def record_latency(self, seconds: float) -> None:
        with self._lock:
            self.completed += 1
            self.latency.record(seconds)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "uptime_s": round(self._clock() - self.started_at, 3),
                "received": self.received,
                "completed": self.completed,
                "shed": self.shed,
                "timeouts": self.timeouts,
                "invalid": self.invalid,
                "errors": self.errors,
                "degraded": self.degraded,
                "partial_rejected": self.partial_rejected,
                "latency": self.latency.snapshot(),
            }
