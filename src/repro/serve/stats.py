"""Service-level accounting: request counters and latency percentiles.

Everything here measures *wall-clock service behaviour* (queueing, batching,
cache hits), which is distinct from the *simulated* turnaround carried
inside each :class:`~repro.core.query.QueryReport` — see DESIGN.md for how
the clocks layer.

Since the observability subsystem landed, both classes are thin views over
:mod:`repro.obs.metrics` primitives in a shared registry: the gateway's
request counters are children of ``repro_serve_requests_total{service,event}``
and its latencies a child of
``repro_serve_request_latency_seconds{service}``, so the METRICS scrape and
the STATS snapshot read the *same* numbers.  Each service instance gets its
own ``service`` label (``svc0``, ``svc1``, ...) so several gateways in one
process stay distinguishable while sharing the one registry.
"""

from __future__ import annotations

import itertools
import time

from repro.obs.metrics import MetricsRegistry, default_registry

_service_ids = itertools.count()

#: The request-outcome events the gateway counts (the ``event`` label values
#: of ``repro_serve_requests_total``).
EVENTS = (
    "received",
    "completed",
    "shed",
    "timeouts",
    "invalid",
    "errors",
    "degraded",
    "partial_rejected",
)


def next_service_label() -> str:
    """A process-unique ``service`` label value (``svc0``, ``svc1``, ...)."""
    return f"svc{next(_service_ids)}"


class LatencyTracker:
    """Latency summary backed by one obs histogram child.

    Exact count / mean / max over the whole stream; percentiles over the
    last *reservoir* samples (recent-window percentiles are what you watch
    on a serving dashboard anyway).  The same observations feed the
    Prometheus buckets of ``repro_serve_request_latency_seconds``.

    *reservoir* applies when this tracker creates the histogram family; a
    family that already exists in *registry* keeps its original reservoir.
    """

    def __init__(
        self,
        reservoir: int = 1024,
        registry: MetricsRegistry | None = None,
        service: str | None = None,
    ) -> None:
        if reservoir < 1:
            raise ValueError(f"reservoir must be >= 1, got {reservoir}")
        registry = registry if registry is not None else default_registry()
        self.service = service if service is not None else next_service_label()
        self._hist = registry.histogram(
            "repro_serve_request_latency_seconds",
            "Wall-clock request latency observed at the serving gateway",
            ("service",),
            reservoir=reservoir,
        ).labels(service=self.service)

    def record(self, seconds: float) -> None:
        self._hist.observe(seconds)

    @property
    def count(self) -> int:
        return int(self._hist.count)

    @property
    def total(self) -> float:
        return self._hist.sum

    @property
    def max(self) -> float:
        return self._hist.max

    @property
    def mean(self) -> float:
        return self._hist.mean

    def percentile(self, p: float) -> float:
        """The *p*-th percentile (0..100) of the recent window; 0 if empty."""
        return self._hist.percentile(p)

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "mean_ms": round(self.mean * 1e3, 3),
            "p50_ms": round(self.percentile(50) * 1e3, 3),
            "p90_ms": round(self.percentile(90) * 1e3, 3),
            "p99_ms": round(self.percentile(99) * 1e3, 3),
            "max_ms": round(self.max * 1e3, 3),
        }


class ServiceStats:
    """Thread-safe gateway counters, surfaced through STATS *and* METRICS.

    Counter names (``received``, ``completed``, ...) read as plain
    attributes for compatibility, but the values live in the shared metrics
    registry under ``repro_serve_requests_total{service,event}``; sheds are
    additionally counted as ``repro_admission_rejections_total{service}``.
    """

    def __init__(
        self,
        clock=time.monotonic,
        registry: MetricsRegistry | None = None,
        service: str | None = None,
    ) -> None:
        self._clock = clock
        self.started_at = clock()
        self.registry = registry if registry is not None else default_registry()
        self.service = service if service is not None else next_service_label()
        family = self.registry.counter(
            "repro_serve_requests_total",
            "Gateway requests by outcome event",
            ("service", "event"),
        )
        self._events = {
            name: family.labels(service=self.service, event=name)
            for name in EVENTS
        }
        self._rejections = self.registry.counter(
            "repro_admission_rejections_total",
            "Requests shed by gateway admission control",
            ("service",),
        ).labels(service=self.service)
        self.latency = LatencyTracker(registry=self.registry, service=self.service)

    def __getattr__(self, name: str):
        events = self.__dict__.get("_events")
        if events is not None and name in events:
            return int(events[name].value)
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def inc(self, name: str, by: int = 1) -> None:
        self._events[name].inc(by)
        if name == "shed":
            self._rejections.inc(by)

    def record_latency(self, seconds: float) -> None:
        self._events["completed"].inc()
        self.latency.record(seconds)

    def snapshot(self) -> dict:
        out = {"uptime_s": round(self._clock() - self.started_at, 3)}
        for name in EVENTS:
            out[name] = int(self._events[name].value)
        out["latency"] = self.latency.snapshot()
        return out
