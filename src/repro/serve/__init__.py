"""repro.serve — the query-serving gateway over a built Mendel deployment.

The layers, bottom-up:

* :mod:`~repro.serve.cache` — LRU + TTL result cache with canonical keys;
* :mod:`~repro.serve.batcher` — micro-batching of near-simultaneous
  same-params requests into one ``query_many`` cluster pass;
* :mod:`~repro.serve.service` — the thread-pool :class:`QueryService` with
  bounded admission (load shedding) and per-request deadlines;
* :mod:`~repro.serve.server` / :mod:`~repro.serve.client` — an asyncio TCP
  JSON-lines front end and a retrying blocking client;
* :mod:`~repro.serve.stats` — wall-clock latency/queue/cache accounting
  surfaced through the STATS op.

Quick start::

    from repro.serve import QueryService, BackgroundServer, ServeClient

    service = mendel.service(max_workers=4, max_pending=64)
    with BackgroundServer(service) as server:
        with ServeClient(server.host, server.port) as client:
            print(client.query("MKV...", deadline=2.0))
"""

from repro.serve.batcher import BatcherStats, MicroBatcher
from repro.serve.cache import MISS, CacheStats, ResultCache
from repro.serve.client import ServeClient
from repro.serve.errors import (
    ClientTimeout,
    DeadlineExceeded,
    DegradedResult,
    InvalidRequest,
    Overloaded,
    ServeError,
    ServiceClosed,
    Unavailable,
)
from repro.serve.server import BackgroundServer, QueryServer
from repro.serve.service import QueryService, ServeResult
from repro.serve.stats import LatencyTracker, ServiceStats

__all__ = [
    "BackgroundServer",
    "BatcherStats",
    "CacheStats",
    "ClientTimeout",
    "DeadlineExceeded",
    "DegradedResult",
    "InvalidRequest",
    "LatencyTracker",
    "MISS",
    "MicroBatcher",
    "Overloaded",
    "QueryServer",
    "QueryService",
    "ResultCache",
    "ServeClient",
    "ServeError",
    "ServeResult",
    "ServiceClosed",
    "ServiceStats",
    "Unavailable",
]
