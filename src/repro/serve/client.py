"""Blocking JSON-lines client with retry-with-backoff.

:class:`ServeClient` speaks the protocol of :mod:`repro.serve.protocol`
over one TCP connection.  Connection establishment retries with
exponential backoff (servers restart; clients shouldn't crash), reads honour
a socket timeout (surfaced as a structured
:class:`~repro.serve.errors.ClientTimeout`), and a connection that drops
mid-request is re-dialled once before giving up — queries are idempotent,
so the retry is safe.
"""

from __future__ import annotations

import dataclasses
import socket
import time

from repro.core.params import QueryParams
from repro.serve.errors import ClientTimeout, Unavailable
from repro.serve.protocol import MAX_LINE_BYTES, decode_line, encode


class ServeClient:
    """A synchronous client for one gateway address.

    Parameters
    ----------
    host / port:
        Server address.
    timeout:
        Socket timeout (seconds) for connects and reads.
    retries:
        Connection attempts beyond the first before raising
        :class:`Unavailable`.
    backoff / backoff_factor:
        First retry delay and its multiplier (exponential backoff).
    sleep:
        Injectable sleep (tests observe backoff without waiting).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        retries: int = 3,
        backoff: float = 0.05,
        backoff_factor: float = 2.0,
        sleep=time.sleep,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_factor = backoff_factor
        self._sleep = sleep
        self._sock: socket.socket | None = None
        self._buffer = b""

    # -- connection ------------------------------------------------------------

    def connect(self) -> None:
        """Dial the server, retrying with exponential backoff."""
        if self._sock is not None:
            return
        delay = self.backoff
        last_error: OSError | None = None
        for attempt in range(self.retries + 1):
            if attempt:
                self._sleep(delay)
                delay *= self.backoff_factor
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
                self._buffer = b""
                return
            except OSError as exc:
                last_error = exc
        raise Unavailable(
            f"cannot reach {self.host}:{self.port} after "
            f"{self.retries + 1} attempts: {last_error}"
        ) from last_error

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
                self._buffer = b""

    # -- requests --------------------------------------------------------------

    def request(self, message: dict) -> dict:
        """Send one request object, return the decoded response object."""
        for attempt in (0, 1):
            self.connect()
            try:
                self._sock.sendall(encode(message))
                return decode_line(self._read_line())
            except socket.timeout:
                self.close()
                raise ClientTimeout(
                    f"no response from {self.host}:{self.port} within "
                    f"{self.timeout}s"
                ) from None
            except (ConnectionError, OSError) as exc:
                # Dropped mid-request: re-dial once, then give up.
                self.close()
                if attempt:
                    raise Unavailable(
                        f"connection to {self.host}:{self.port} failed: {exc}"
                    ) from exc
        raise AssertionError("unreachable")

    def _read_line(self) -> bytes:
        while b"\n" not in self._buffer:
            if len(self._buffer) > MAX_LINE_BYTES:
                self.close()
                raise Unavailable("response line exceeds the protocol maximum")
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        return line

    # -- ops -------------------------------------------------------------------

    def query(
        self,
        seq: str,
        params: QueryParams | dict | None = None,
        query_id: str = "query",
        deadline: float | None = None,
        top: int | None = None,
        allow_partial: bool = True,
        trace: bool = False,
    ) -> dict:
        """QUERY op; returns the raw response dict (check ``ok``).

        ``allow_partial=False`` asks the server to reject degraded
        (partial-coverage) answers with an ``{"error": "degraded"}``
        response instead of returning them.  ``trace=True`` asks for the
        request's span tree (``response["trace"]``) alongside the result.
        """
        if isinstance(params, QueryParams):
            params = dataclasses.asdict(params)
        message: dict = {"op": "query", "id": query_id, "seq": seq}
        if params:
            message["params"] = params
        if deadline is not None:
            message["deadline"] = deadline
        if top is not None:
            message["top"] = top
        if not allow_partial:
            message["allow_partial"] = False
        if trace:
            message["trace"] = True
        return self.request(message)

    def explain(
        self,
        seq: str,
        params: QueryParams | dict | None = None,
        query_id: str = "explain",
    ) -> dict:
        """EXPLAIN op; ``response["plan"]`` is the structured query plan and
        ``response["rendered"]`` its human-readable funnel rendering."""
        if isinstance(params, QueryParams):
            params = dataclasses.asdict(params)
        message: dict = {"op": "explain", "id": query_id, "seq": seq}
        if params:
            message["params"] = params
        return self.request(message)

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def health(self) -> dict:
        return self.request({"op": "health"})

    def metrics(self) -> dict:
        """METRICS op; ``response["metrics"]`` is Prometheus text."""
        return self.request({"op": "metrics"})

    def alerts(self) -> dict:
        """ALERTS op; the gateway monitor's full frame — SLI windows,
        alert states with correlated causes, transitions, event tail."""
        return self.request({"op": "alerts"})

    def analyze(self) -> dict:
        """ANALYZE op; trace analytics over the gateway's slow-query log —
        span-shape families with exemplar trace ids plus the merged
        critical-path table."""
        return self.request({"op": "analyze"})

    def scrub(self, heal: bool = True) -> dict:
        """SCRUB op; one anti-entropy pass over every replica copy.
        ``heal=False`` audits (detects) without quarantining heals."""
        return self.request({"op": "scrub", "heal": heal})

    def recover(self, node: str | None = None) -> dict:
        """RECOVER op; restart *node* (or every dead node when ``None``)
        from durable state and return the per-node replay reports."""
        message: dict = {"op": "recover"}
        if node is not None:
            message["node"] = node
        return self.request(message)

    def profile(self, action: str = "snapshot", hz: float | None = None) -> dict:
        """PROFILE op; start/snapshot/stop the gateway's continuous
        profiler.  ``response["profile"]`` carries the sampling aggregate
        (stage shares, top functions, self-measured overhead) and the
        deterministic cost profile."""
        message: dict = {"op": "profile", "action": action}
        if hz is not None:
            message["hz"] = hz
        return self.request(message)

    def scale(self) -> dict:
        """SCALE op; the gateway autoscaler's status frame (or
        ``enabled: false``).  Reading it ticks the lazy control loop."""
        return self.request({"op": "scale"})

    def __enter__(self) -> "ServeClient":
        self.connect()
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
