"""Scripted fault schedules: deterministic, replayable chaos.

A :class:`FaultSchedule` is a list of :class:`FaultEvent` entries scripted
against *simulated* time, plus the knobs that shape failure handling
(heartbeat cadence, detection threshold, auto-repair, RNG seed).  The same
schedule attached to two identical runs produces byte-identical behaviour —
every random draw (link drops) comes from the schedule's seed, and every
event fires at a scripted simulated instant.

Event kinds:

``crash``
    Crash-stop a node (process dies; on-disk data survives).
``restart``
    Bring a crashed node back (data intact but possibly stale; the chaos
    controller reconciles placement on rejoin).
``slowdown``
    Straggler injection: scale a node's speed by ``factor`` (< 1 is
    slower), optionally auto-restoring after ``duration`` seconds.
``restore_speed``
    End a slowdown explicitly.
``drop_link`` / ``heal_link``
    Make one link lossy/slow (``drop`` probability, ``extra_delay``), or
    clear it.
``partition`` / ``heal_partition``
    Split the cluster into disjoint sides / reconnect everything.
``bit_flip``
    Silent bit rot: flip one bit of a node's durable copy of ``block``
    (no error is raised — only digest verification can catch it).
``torn_write``
    Arm a one-shot torn append on a node's device: the next WAL record
    persists only a prefix (replay truncates it away).
``disk_full`` / ``disk_free``
    Set / clear a node's device ENOSPC flag: durable appends fail cleanly
    and the node serves from RAM with degraded durability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.util.validation import check_fraction, check_non_negative, check_positive

_KINDS = frozenset(
    {
        "crash",
        "restart",
        "slowdown",
        "restore_speed",
        "drop_link",
        "heal_link",
        "partition",
        "heal_partition",
        "bit_flip",
        "torn_write",
        "disk_full",
        "disk_free",
    }
)


@dataclass(frozen=True)
class FaultEvent:
    """One scripted event at simulated time ``at``.

    Use the class-method constructors (:meth:`crash`, :meth:`restart`, …)
    rather than filling fields by hand; they validate per kind.
    """

    at: float
    kind: str
    node: str | None = None
    src: str | None = None
    dst: str | None = None
    factor: float = 1.0
    duration: float | None = None
    drop: float = 0.0
    extra_delay: float = 0.0
    sides: tuple[frozenset, ...] = ()
    #: corruption targeting (``bit_flip``): which durable block, which bit
    block: int | None = None
    bit: int = 0

    def __post_init__(self) -> None:
        check_non_negative("at", self.at)
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind in (
            "crash", "restart", "slowdown", "restore_speed",
            "bit_flip", "torn_write", "disk_full", "disk_free",
        ):
            if not self.node:
                raise ValueError(f"{self.kind} event needs a node id")
        if self.kind == "bit_flip" and self.block is None:
            raise ValueError("bit_flip event needs a block id")
        if self.kind in ("drop_link", "heal_link"):
            if not self.src or not self.dst:
                raise ValueError(f"{self.kind} event needs src and dst node ids")
        if self.kind == "slowdown":
            check_positive("factor", self.factor)
            if self.duration is not None:
                check_positive("duration", self.duration)
        if self.kind == "drop_link":
            check_fraction("drop", self.drop)
            check_non_negative("extra_delay", self.extra_delay)
        if self.kind == "partition" and not self.sides:
            raise ValueError("partition event needs at least one side")

    # -- constructors ----------------------------------------------------------

    @classmethod
    def crash(cls, at: float, node: str) -> "FaultEvent":
        return cls(at=at, kind="crash", node=node)

    @classmethod
    def restart(cls, at: float, node: str) -> "FaultEvent":
        return cls(at=at, kind="restart", node=node)

    @classmethod
    def slowdown(
        cls, at: float, node: str, factor: float, duration: float | None = None
    ) -> "FaultEvent":
        return cls(at=at, kind="slowdown", node=node, factor=factor, duration=duration)

    @classmethod
    def restore_speed(cls, at: float, node: str) -> "FaultEvent":
        return cls(at=at, kind="restore_speed", node=node)

    @classmethod
    def drop_link(
        cls,
        at: float,
        src: str,
        dst: str,
        drop: float = 1.0,
        extra_delay: float = 0.0,
    ) -> "FaultEvent":
        return cls(
            at=at, kind="drop_link", src=src, dst=dst, drop=drop,
            extra_delay=extra_delay,
        )

    @classmethod
    def heal_link(cls, at: float, src: str, dst: str) -> "FaultEvent":
        return cls(at=at, kind="heal_link", src=src, dst=dst)

    @classmethod
    def partition(cls, at: float, *sides: Iterable[str]) -> "FaultEvent":
        return cls(
            at=at, kind="partition",
            sides=tuple(frozenset(side) for side in sides),
        )

    @classmethod
    def heal_partition(cls, at: float) -> "FaultEvent":
        return cls(at=at, kind="heal_partition")

    @classmethod
    def bit_flip(
        cls, at: float, node: str, block: int, bit: int = 0
    ) -> "FaultEvent":
        return cls(at=at, kind="bit_flip", node=node, block=block, bit=bit)

    @classmethod
    def torn_write(cls, at: float, node: str) -> "FaultEvent":
        return cls(at=at, kind="torn_write", node=node)

    @classmethod
    def disk_full(cls, at: float, node: str) -> "FaultEvent":
        return cls(at=at, kind="disk_full", node=node)

    @classmethod
    def disk_free(cls, at: float, node: str) -> "FaultEvent":
        return cls(at=at, kind="disk_free", node=node)


@dataclass(frozen=True)
class FaultSchedule:
    """A scripted chaos scenario plus failure-handling configuration.

    Parameters
    ----------
    events:
        The scripted fault events (any order; applied in time order, ties
        breaking on listing order).
    seed:
        RNG seed for every stochastic draw of the run (link drops).
    heartbeat_interval:
        Simulated seconds between heartbeat rounds from each group's
        monitor; 0 disables detection (and therefore auto-repair).
    miss_threshold:
        Consecutive missed heartbeats before a suspected node is declared
        dead (the first miss marks it suspected).
    auto_repair:
        Re-replicate a dead node's blocks from surviving replicas once the
        detector declares it dead.
    scrub_interval:
        Simulated seconds between anti-entropy scrub rounds (one group per
        round, round-robin); 0 disables background scrubbing.
    scrub_auto_heal:
        Let the scrubber chain quarantined blocks into the repair path
        (``False`` detects and quarantines without healing).
    horizon:
        Simulated time at which heartbeat monitoring stops (the simulation
        cannot drain while monitors loop).  Defaults to the last scripted
        event plus enough rounds to detect and repair it.
    """

    events: tuple[FaultEvent, ...] = ()
    seed: int = 0
    heartbeat_interval: float = 0.002
    miss_threshold: int = 3
    auto_repair: bool = True
    scrub_interval: float = 0.0
    scrub_auto_heal: bool = True
    horizon: float | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        check_non_negative("heartbeat_interval", self.heartbeat_interval)
        check_non_negative("scrub_interval", self.scrub_interval)
        if self.miss_threshold < 1:
            raise ValueError(
                f"miss_threshold must be >= 1, got {self.miss_threshold}"
            )
        if self.horizon is not None:
            check_positive("horizon", self.horizon)

    def ordered(self) -> list[FaultEvent]:
        """Events in application order (stable for equal times)."""
        return sorted(self.events, key=lambda e: e.at)

    @property
    def last_event_at(self) -> float:
        return max((event.at for event in self.events), default=0.0)

    @property
    def effective_horizon(self) -> float:
        """When monitoring stops: explicit horizon, or late enough to detect
        (and start repairing) the last scripted event."""
        if self.horizon is not None:
            return self.horizon
        settle = self.heartbeat_interval * (self.miss_threshold + 3)
        return self.last_event_at + settle


def kill_and_recover(
    node_ids: Sequence[str],
    kill_at: float,
    recover_at: float | None = None,
    **knobs,
) -> FaultSchedule:
    """The canonical scenario: crash *node_ids* at ``kill_at`` and (if
    ``recover_at`` is given) restart them all at ``recover_at``."""
    check_non_negative("kill_at", kill_at)
    events = [FaultEvent.crash(kill_at, node_id) for node_id in node_ids]
    if recover_at is not None:
        if recover_at <= kill_at:
            raise ValueError(
                f"recover_at ({recover_at}) must be after kill_at ({kill_at})"
            )
        events.extend(FaultEvent.restart(recover_at, node_id) for node_id in node_ids)
    return FaultSchedule(events=tuple(events), **knobs)
