"""The canonical chaos experiment: kill one node per group, then recover.

``run_kill_recover_scenario`` builds a fresh deployment, measures a healthy
baseline, then replays the same query batch while a scripted
:class:`~repro.faults.schedule.FaultSchedule` crashes the first node of
every group at ``kill_at`` and restarts it at ``recover_at`` (default
``2 * kill_at``), with queries arriving throughout the failure window.  It
reports *recall under failure* (did degraded queries still find the planted
subject?) alongside per-query coverage — the experiment behind
``repro chaos`` and ``examples/chaos.py``.

Everything is seeded: the database, the probes, the deployment, and the
schedule all derive from ``seed``, so two calls with equal arguments
produce byte-identical reports (the replayability contract chaos testing
depends on).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.framework import Mendel
from repro.core.params import MendelConfig, QueryParams
from repro.core.query import QueryReport
from repro.faults.schedule import FaultSchedule, kill_and_recover
from repro.obs.events import EventLog
from repro.obs.health import HealthMonitor
from repro.obs.trace import TraceContext
from repro.seq import PROTEIN, random_set
from repro.seq.mutate import mutate_to_identity


@dataclass
class ScenarioResult:
    """Outcome of one kill/recover experiment."""

    #: reports from the chaos run, in query order
    reports: list[QueryReport]
    #: reports from the healthy run of the same batch (fresh deployment)
    baseline: list[QueryReport]
    #: the schedule that was replayed
    schedule: FaultSchedule
    #: node ids crashed at ``kill_at``
    victims: list[str] = field(default_factory=list)
    #: expected best subject per probe (the planted target)
    expected: list[str] = field(default_factory=list)
    #: fraction of probes whose best hit matched the planted subject
    recall: float = 0.0
    baseline_recall: float = 0.0
    #: chaos-controller counters (repairs, detections, drops)
    chaos_summary: dict = field(default_factory=dict)
    #: chaos timeline, stringified for printing
    chaos_log: list[str] = field(default_factory=list)
    #: the health monitor that rode the chaos run (SLIs, alert
    #: transitions with correlated causes, event log) — ``None`` only if
    #: monitoring was explicitly disabled
    monitor: "HealthMonitor | None" = None

    @property
    def alert_transitions(self) -> list[dict]:
        if self.monitor is None:
            return []
        return [t.to_dict() for t in self.monitor.slo_engine.transitions]

    @property
    def min_coverage(self) -> float:
        return min((r.coverage for r in self.reports), default=1.0)

    @property
    def degraded_queries(self) -> int:
        return sum(1 for r in self.reports if r.degraded)

    def summary_rows(self) -> list[tuple[str, str]]:
        """Key/value rows for tabular display (CLI and example)."""
        return [
            ("queries", str(len(self.reports))),
            ("victims", ",".join(self.victims)),
            ("kill_at", f"{min(e.at for e in self.schedule.events):.6f}s"),
            ("recover_at", f"{max(e.at for e in self.schedule.events):.6f}s"),
            ("baseline recall", f"{self.baseline_recall:.0%}"),
            ("recall under failure", f"{self.recall:.0%}"),
            ("min coverage", f"{self.min_coverage:.3f}"),
            ("degraded queries", str(self.degraded_queries)),
            ("blocks re-replicated",
             str(self.chaos_summary.get("blocks_streamed", 0))),
            ("deaths declared",
             str(self.chaos_summary.get("deaths_declared", 0))),
            ("messages dropped",
             str(self.chaos_summary.get("messages_dropped", 0))),
        ]


def _build(seed: int, replication: int, group_count: int, group_size: int,
           database_size: int, sequence_length: int) -> Mendel:
    database = random_set(
        count=database_size,
        length=sequence_length,
        alphabet=PROTEIN,
        rng=seed + 1,
        id_prefix="ref",
    )
    config = MendelConfig(
        group_count=group_count,
        group_size=group_size,
        replication=replication,
        sample_size=256,
        seed=seed + 2,
    )
    return Mendel.build(database, config)


def _recall(reports: list[QueryReport], expected: list[str]) -> float:
    hits = 0
    for report, target in zip(reports, expected):
        best = report.best()
        hits += best is not None and best.subject_id == target
    return hits / max(1, len(expected))


def run_kill_recover_scenario(
    replication: int = 2,
    group_count: int = 3,
    group_size: int = 3,
    database_size: int = 18,
    sequence_length: int = 150,
    probe_count: int = 6,
    identity: float = 0.9,
    seed: int = 0,
    kill_at: float | None = None,
    recover_at: float | None = None,
    subquery_deadline: float | None = None,
    params: QueryParams | None = None,
    monitor: "HealthMonitor | None" = None,
    event_log: "EventLog | None" = None,
) -> ScenarioResult:
    """Run the kill-one-node-per-group experiment; see the module docstring.

    ``kill_at`` defaults to half the healthy batch's makespan (so the
    failure lands mid-batch) and ``recover_at`` to ``2 * kill_at``.  The
    probe batch arrives spread over ``3 * kill_at`` — some queries run
    healthy, some against a dead cluster slice, some after recovery.
    """
    if probe_count < 1:
        raise ValueError(f"probe_count must be >= 1, got {probe_count}")
    params = params or QueryParams(k=4, n=6, i=0.7)

    # Healthy baseline on its own deployment (the chaos run mutates state).
    baseline_mendel = _build(
        seed, replication, group_count, group_size,
        database_size, sequence_length,
    )
    database = baseline_mendel.index.database
    step = max(1, database_size // probe_count)
    targets = [database.records[(i * step) % database_size]
               for i in range(probe_count)]
    probes = [
        mutate_to_identity(target, identity, rng=seed + 10 + i,
                           seq_id=f"probe-{i}")
        for i, target in enumerate(targets)
    ]
    expected = [target.seq_id for target in targets]
    baseline = baseline_mendel.engine.run_batch(probes, params)

    # Derive the failure window from the healthy makespan.
    makespan = max(r.stats.turnaround for r in baseline)
    if kill_at is None:
        kill_at = makespan / 2
    if recover_at is None:
        recover_at = 2 * kill_at
    arrival_interval = 3 * kill_at / probe_count

    # Fresh, identically seeded deployment for the chaos run.
    mendel = _build(
        seed, replication, group_count, group_size,
        database_size, sequence_length,
    )
    victims = [group.nodes[0].node_id for group in mendel.index.topology.groups]
    schedule = kill_and_recover(
        victims,
        kill_at=kill_at,
        recover_at=recover_at,
        seed=seed,
        heartbeat_interval=kill_at / 8,
    )
    # Explicit, seed-derived trace ids: the process-global TraceContext
    # counter would differ between two otherwise-identical runs, breaking
    # the byte-identical event-log replay contract.
    contexts = [
        TraceContext(trace_id=f"chaos-{seed}-q{i}")
        for i in range(probe_count)
    ]
    if monitor is None:
        monitor = HealthMonitor.for_chaos_run(
            schedule.effective_horizon,
            arrival_interval=arrival_interval,
            event_log=event_log if event_log is not None else EventLog(),
        )
    reports = mendel.query_under_faults(
        probes,
        schedule,
        params=params,
        arrival_interval=arrival_interval,
        subquery_deadline=subquery_deadline,
        trace_contexts=contexts,
        monitor=monitor,
    )
    chaos = mendel.engine.last_chaos
    return ScenarioResult(
        reports=reports,
        baseline=baseline,
        schedule=schedule,
        victims=victims,
        expected=expected,
        recall=_recall(reports, expected),
        baseline_recall=_recall(baseline, expected),
        chaos_summary=chaos.summary() if chaos is not None else {},
        chaos_log=[str(entry) for entry in chaos.log] if chaos is not None else [],
        monitor=mendel.engine.last_monitor,
    )
