"""The chaos controller: binds a fault schedule to one simulated run.

:class:`ChaosController` is created by the query engine when a
:class:`~repro.faults.schedule.FaultSchedule` is passed into
``run_batch(..., faults=...)``.  It

1. schedules every scripted :class:`~repro.faults.schedule.FaultEvent` on
   the run's simulation clock (injection);
2. starts one heartbeat monitor per storage group
   (:class:`~repro.faults.detector.FailureDetector`) so failures are
   *detected*, not known omnisciently (detection);
3. reacts to detected deaths by spawning re-replication processes, and to
   restarts by reconciling the rejoining node's group back to canonical
   placement (recovery) — repairs for the same group are chained so two
   syncs never interleave.

Everything it does is visible afterwards through :attr:`log` (a timeline of
``ChaosLogEntry``) and :meth:`summary`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.group import StorageGroup
from repro.cluster.node import StorageNode
from repro.faults.detector import FailureDetector
from repro.faults.repair import RepairReport, ReReplicator
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.obs.events import EventLog
from repro.obs.metrics import default_registry
from repro.sim.engine import SimEvent, Simulation
from repro.sim.network import Network
from repro.store.scrub import IntegrityScrubber, ScrubFinding


@dataclass(frozen=True)
class ChaosLogEntry:
    """One timeline entry: an injected event, a detection, or a repair."""

    time: float
    kind: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.time * 1e3:9.3f} ms] {self.kind:>12}  {self.detail}"


class ChaosController:
    """Drives one fault schedule against one deployment on one clock."""

    def __init__(
        self,
        sim: Simulation,
        net: Network,
        index,
        schedule: FaultSchedule,
        event_log: EventLog | None = None,
        recorder=None,
    ) -> None:
        self.sim = sim
        self.net = net
        self.index = index
        self.schedule = schedule
        self.events = event_log
        self.log: list[ChaosLogEntry] = []
        self.repairs = RepairReport()
        self.detector: FailureDetector | None = None
        if schedule.heartbeat_interval > 0:
            self.detector = FailureDetector(
                sim=sim,
                net=net,
                interval=schedule.heartbeat_interval,
                miss_threshold=schedule.miss_threshold,
                stop_at=schedule.effective_horizon,
                on_dead=self._on_dead,
                on_rejoin=self._on_rejoin,
                event_log=event_log,
            )
        self.repairer = ReReplicator(index, is_alive=self._is_alive)
        self.scrubber: IntegrityScrubber | None = None
        if schedule.scrub_interval > 0:
            self.scrubber = IntegrityScrubber(
                index,
                is_alive=self._is_alive,
                event_log=event_log,
                recorder=recorder,
                heal=self._scrub_heal if schedule.scrub_auto_heal else None,
            )
        self._repair_tail: dict[str, SimEvent] = {}
        self._nodes = {node.node_id: node for node in index.topology.nodes}
        registry = default_registry()
        self._m_events = registry.counter(
            "repro_chaos_events_total",
            "Chaos timeline entries by kind (injections, detections, repairs)",
            ("kind",),
        )
        self._m_repair_blocks = registry.counter(
            "repro_repair_blocks_streamed_total",
            "Index blocks streamed by re-replication repairs",
            ("group",),
        )
        self._m_repair_bytes = registry.counter(
            "repro_repair_bytes_streamed_total",
            "Payload bytes streamed by re-replication repairs",
            ("group",),
        )

    # -- wiring ----------------------------------------------------------------

    def install(self) -> None:
        """Schedule the scripted events and start the group monitors."""
        for event in self.schedule.ordered():
            self.sim.call_later(event.at, self._apply, event)
        if self.detector is not None:
            for group in self.index.topology.groups:
                self.sim.spawn(
                    self.detector.monitor_proc(group),
                    name=f"heartbeat:{group.group_id}",
                )
        if self.scrubber is not None:
            self.sim.spawn(
                self.scrubber.scrub_proc(
                    self.sim,
                    self.schedule.scrub_interval,
                    self.schedule.effective_horizon,
                ),
                name="scrubber",
            )

    def _is_alive(self, node: StorageNode) -> bool:
        """Placement liveness: ground truth intersected with the detector's
        view (repair never targets a node it believes — or knows — dead)."""
        if not node.alive:
            return False
        if self.detector is not None:
            return self.detector.considers_alive(node)
        return True

    # -- event application -----------------------------------------------------

    def _apply(self, event: FaultEvent) -> None:
        handler = getattr(self, f"_apply_{event.kind}")
        handler(event)

    def _apply_crash(self, event: FaultEvent) -> None:
        node = self._nodes[event.node]
        node.fail()
        self._note("crash", f"{event.node} crash-stopped", actor=event.node)

    def _apply_restart(self, event: FaultEvent) -> None:
        node = self._nodes[event.node]
        node.recover()
        if self.detector is not None:
            self.detector.mark_recovered(node)
        self._note("restart", f"{event.node} rejoined", actor=event.node)
        if self.schedule.auto_repair:
            self._schedule_repair(
                self.index.topology.group(node.group_id),
                f"reconcile after {event.node} rejoin",
            )

    def _apply_slowdown(self, event: FaultEvent) -> None:
        node = self._nodes[event.node]
        node.slow_down(event.factor)
        self._note("slowdown", f"{event.node} at {event.factor:g}x speed",
                   actor=event.node)
        if event.duration is not None:
            self.sim.call_later(event.duration, self._restore_speed, node)

    def _apply_restore_speed(self, event: FaultEvent) -> None:
        self._restore_speed(self._nodes[event.node])

    def _restore_speed(self, node: StorageNode) -> None:
        node.restore_speed()
        self._note("restore", f"{node.node_id} back to full speed",
                   actor=node.node_id)

    def _apply_drop_link(self, event: FaultEvent) -> None:
        self.net.set_link_fault(
            event.src, event.dst, drop=event.drop, extra_delay=event.extra_delay
        )
        self._note(
            "drop_link",
            f"{event.src}<->{event.dst} drop={event.drop:g} "
            f"delay+={event.extra_delay:g}s",
        )

    def _apply_heal_link(self, event: FaultEvent) -> None:
        self.net.clear_link_fault(event.src, event.dst)
        self._note("heal_link", f"{event.src}<->{event.dst} healed")

    def _apply_partition(self, event: FaultEvent) -> None:
        self.net.set_partition(*event.sides)
        sides = " | ".join(",".join(sorted(side)) for side in event.sides)
        self._note("partition", sides)

    def _apply_heal_partition(self, event: FaultEvent) -> None:
        self.net.clear_partition()
        self._note("heal", "partition healed")

    def _apply_bit_flip(self, event: FaultEvent) -> None:
        node = self._nodes[event.node]
        try:
            node.durable.corrupt_block(event.block, event.bit)
        except KeyError:
            # The target block never landed on (or already left) this node's
            # durable state; cosmic rays don't get to pick their victim.
            self._note(
                "bit_flip",
                f"{event.node}: block {event.block} not held durably "
                "(flip missed)",
                actor=event.node,
            )
            return
        self._note(
            "bit_flip",
            f"{event.node}: bit {event.bit} of durable block "
            f"{event.block} flipped",
            actor=event.node,
        )

    def _apply_torn_write(self, event: FaultEvent) -> None:
        node = self._nodes[event.node]
        node.disk.tear_next_append()
        self._note(
            "torn_write",
            f"{event.node}: next durable append will tear",
            actor=event.node,
        )

    def _apply_disk_full(self, event: FaultEvent) -> None:
        node = self._nodes[event.node]
        node.disk.full = True
        self._note("disk_full", f"{event.node}: device out of space",
                   actor=event.node)

    def _apply_disk_free(self, event: FaultEvent) -> None:
        node = self._nodes[event.node]
        node.disk.full = False
        self._note("disk_free", f"{event.node}: device space restored",
                   actor=event.node)

    # -- detection callbacks ---------------------------------------------------

    def _on_dead(self, node: StorageNode) -> None:
        truth = "dead" if not node.alive else "falsely suspected"
        self._note("detected", f"{node.node_id} declared dead ({truth})",
                   actor=node.node_id)
        if self.schedule.auto_repair:
            self._schedule_repair(
                self.index.topology.group(node.group_id),
                f"re-replicate {node.node_id}",
            )

    def _on_rejoin(self, node: StorageNode) -> None:
        self._note("rejoin", f"{node.node_id} acked again", actor=node.node_id)
        if self.schedule.auto_repair:
            self._schedule_repair(
                self.index.topology.group(node.group_id),
                f"reconcile after {node.node_id} rejoin",
            )

    # -- scrub healing ---------------------------------------------------------

    def _scrub_heal(
        self, group: StorageGroup, findings: list[ScrubFinding]
    ) -> None:
        """The scrubber quarantined corrupt copies: chain their heal onto
        the group's repair tail (re-replication streams each block back
        from a replica that still verifies)."""
        blocks = sorted({finding.block_id for finding in findings})
        self._note(
            "scrub_heal",
            f"{group.group_id}: healing {len(blocks)} quarantined "
            f"block(s) {blocks[:8]}",
            actor=group.group_id,
        )
        self._schedule_repair(
            group, f"scrub heal of {len(blocks)} corrupt copies"
        )

    # -- repair chaining -------------------------------------------------------

    def _schedule_repair(self, group: StorageGroup, reason: str) -> None:
        previous = self._repair_tail.get(group.group_id)

        def proc():
            if previous is not None and not previous.fired:
                yield previous
            report = yield from self.repairer.repair_proc(group, self.sim, self.net)
            self.repairs = self.repairs.merge(report)
            if report.blocks_streamed:
                self._m_repair_blocks.labels(group=group.group_id).inc(
                    report.blocks_streamed
                )
            if report.bytes_streamed:
                self._m_repair_bytes.labels(group=group.group_id).inc(
                    report.bytes_streamed
                )
            self._note(
                "repair",
                f"{group.group_id}: {reason} — {report.blocks_streamed} streamed, "
                f"{report.blocks_dropped} dropped, {report.blocks_lost} lost",
                actor=group.group_id,
            )

        self._repair_tail[group.group_id] = self.sim.spawn(
            proc(), name=f"repair:{group.group_id}"
        )

    # -- observability ---------------------------------------------------------

    def _note(self, kind: str, detail: str, actor: str = "chaos") -> None:
        self.log.append(ChaosLogEntry(time=self.sim.now, kind=kind, detail=detail))
        self._m_events.labels(kind=kind).inc()
        if self.events is not None:
            self.events.emit(kind, actor, detail, sim_time=self.sim.now)

    def pending_repairs(self) -> int:
        """Repair chains scheduled but not yet finished — the backlog the
        repair_backlog SLO watches."""
        return sum(
            1 for tail in self._repair_tail.values() if not tail.fired
        )

    def summary(self) -> dict:
        """Counters for reports and the ``repro chaos`` CLI."""
        out = {
            "events_scripted": len(self.schedule.events),
            "log_entries": len(self.log),
            "blocks_streamed": self.repairs.blocks_streamed,
            "bytes_streamed": self.repairs.bytes_streamed,
            "blocks_dropped": self.repairs.blocks_dropped,
            "blocks_lost": self.repairs.blocks_lost,
            "messages_dropped": self.net.stats.dropped,
        }
        if self.detector is not None:
            out.update(
                {
                    "pings": self.detector.stats.pings,
                    "deaths_declared": self.detector.stats.deaths_declared,
                    "rejoins_detected": self.detector.stats.rejoins_detected,
                    "false_suspicions": self.detector.stats.false_suspicions,
                }
            )
        if self.scrubber is not None:
            report = self.scrubber.report
            out.update(
                {
                    "scrub_passes": report.passes,
                    "replicas_checked": report.replicas_checked,
                    "corruptions_detected": report.mismatches,
                    "blocks_quarantined": report.quarantined,
                    "heals_requested": report.heals_requested,
                }
            )
        return out
