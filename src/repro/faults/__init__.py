"""Fault injection, failure detection, and recovery (chaos layer).

The paper's evaluation ran on healthy hardware; a storage *framework* must
also answer what happens when hardware is not healthy.  This package scripts
failures against the simulated cluster and exercises the full loop:

* :mod:`repro.faults.schedule` — deterministic, replayable fault scripts
  (crashes, restarts, stragglers, lossy links, partitions);
* :mod:`repro.faults.detector` — heartbeat failure detection per group;
* :mod:`repro.faults.repair` — re-replication and placement reconciliation;
* :mod:`repro.faults.chaos` — the controller binding a schedule to one run;
* :mod:`repro.faults.scenario` — the canonical kill/recover experiment
  used by ``repro chaos``, ``examples/chaos.py``, and the integration tests.

Attach a schedule to any query run via
``QueryEngine.run_batch(..., faults=schedule)`` (or ``Mendel.query``); the
resulting :class:`~repro.core.query.QueryReport` carries ``coverage``,
``degraded``, and ``failed_nodes``.
"""

from repro.faults.chaos import ChaosController, ChaosLogEntry
from repro.faults.detector import DetectorStats, FailureDetector
from repro.faults.repair import BlockMove, RepairPlan, RepairReport, ReReplicator
from repro.faults.schedule import FaultEvent, FaultSchedule, kill_and_recover
from repro.faults.scenario import ScenarioResult, run_kill_recover_scenario

__all__ = [
    "BlockMove",
    "ChaosController",
    "ChaosLogEntry",
    "DetectorStats",
    "FailureDetector",
    "FaultEvent",
    "FaultSchedule",
    "RepairPlan",
    "RepairReport",
    "ReReplicator",
    "ScenarioResult",
    "kill_and_recover",
    "run_kill_recover_scenario",
]
