"""Re-replication and placement reconciliation.

The invariant this module maintains: **every block a group knows about is
held by its first ``replication`` alive nodes in preference order** (the
group's Dynamo-style preference list, skipping nodes the failure detector
considers dead).  One sync primitive serves both directions:

* **a node dies** — its blocks gain new desired holders among the alive
  successors; :class:`ReReplicator` streams each block from a surviving
  replica to the new holder (there is no other copy to read — crash-stop
  keeps the dead node's disk intact but unreachable);
* **a node rejoins** — desired placement reverts toward canonical; the
  temporary extra copies on successors are dropped and any blocks the
  rejoining node should hold but doesn't (or holds stale) are streamed to
  it, so blocks never stay over- *or* under-replicated.

Blocks whose every holder is dead are *lost* (unreachable, not destroyed):
they are left where they are and counted, and they come back when a holder
rejoins.

Time accounting: the simulated variant (:meth:`ReReplicator.repair_proc`)
charges per-destination network transfer of the real block bytes plus the
destination's vp-tree insert time, with destinations streaming in parallel
— so repair traffic and repair makespan land on the same clock queries run
on.  The immediate variant (:meth:`ReReplicator.sync_group`) applies the
same plan atomically for callers outside a simulation
(:meth:`repro.core.index.MendelIndex.recover_node`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.cluster.group import StorageGroup
from repro.cluster.node import StorageNode
from repro.sim.engine import AllOf, Simulation
from repro.sim.network import Network

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.index import MendelIndex


@dataclass
class BlockMove:
    """One planned block stream ``src -> dst``."""

    block_id: int
    src: str
    dst: str


@dataclass
class RepairPlan:
    """The diff between current and desired placement for one group."""

    group_id: str
    moves: list[BlockMove] = field(default_factory=list)
    drops: list[tuple[int, str]] = field(default_factory=list)
    lost: list[int] = field(default_factory=list)

    @property
    def dirty(self) -> bool:
        return bool(self.moves or self.drops)


@dataclass
class RepairReport:
    """What one sync did (summed over groups for multi-group calls)."""

    blocks_streamed: int = 0
    bytes_streamed: int = 0
    blocks_dropped: int = 0
    blocks_lost: int = 0
    nodes_rebuilt: int = 0
    simulated_seconds: float = 0.0

    def merge(self, other: "RepairReport") -> "RepairReport":
        return RepairReport(
            blocks_streamed=self.blocks_streamed + other.blocks_streamed,
            bytes_streamed=self.bytes_streamed + other.bytes_streamed,
            blocks_dropped=self.blocks_dropped + other.blocks_dropped,
            blocks_lost=self.blocks_lost + other.blocks_lost,
            nodes_rebuilt=self.nodes_rebuilt + other.nodes_rebuilt,
            simulated_seconds=max(self.simulated_seconds, other.simulated_seconds),
        )


class ReReplicator:
    """Plans and applies placement syncs for one deployment.

    Parameters
    ----------
    index:
        The deployment whose placement is maintained.
    is_alive:
        Liveness predicate used for desired placement; defaults to ground
        truth (``node.alive``).  The chaos controller passes the failure
        detector's view so repair reacts to *detected* failures.
    """

    def __init__(
        self,
        index: "MendelIndex",
        is_alive: Callable[[StorageNode], bool] | None = None,
    ) -> None:
        self.index = index
        self.is_alive = is_alive or (lambda node: node.alive)

    # -- planning --------------------------------------------------------------

    def group_blocks(self, group: StorageGroup) -> list[int]:
        """Every block the group knows about (union over member metadata,
        dead members included — a crashed node's RAM is gone but its durable
        manifest still records what it held)."""
        known: set[int] = set()
        for node in group.nodes:
            known.update(node.known_block_ids)
        return sorted(known)

    def desired_placement(self, group: StorageGroup) -> dict[str, set[int]]:
        """Desired per-node block sets: each block on its first
        ``replication`` alive preference-list nodes."""
        replication = self.index.config.replication
        desired: dict[str, set[int]] = {node.node_id: set() for node in group.nodes}
        for block_id in self.group_blocks(group):
            key = self.index.store.block_key(block_id)
            holders = group.place_replicas_alive(key, replication, self.is_alive)
            if not holders:
                # Whole group down (from the detector's view): leave placement
                # untouched; nothing can move anyway.
                for node in group.nodes:
                    if block_id in node.known_block_ids:
                        desired[node.node_id].add(block_id)
                continue
            for node in holders:
                desired[node.node_id].add(block_id)
        return desired

    def plan(self, group: StorageGroup) -> RepairPlan:
        """Diff desired against current placement.

        Blocks with no alive current holder cannot be streamed: they are
        reported lost and their desired copies are skipped (current copies
        on dead nodes are kept for the eventual rejoin).
        """
        desired = self.desired_placement(group)
        current = {
            node.node_id: set(node.known_block_ids) for node in group.nodes
        }
        alive_holders: dict[int, list[str]] = {}
        for node in group.nodes:
            if self.is_alive(node) and node.alive:
                for block_id in node.block_ids:
                    alive_holders.setdefault(block_id, []).append(node.node_id)

        plan = RepairPlan(group_id=group.group_id)
        lost: set[int] = set()
        for node in group.nodes:
            node_id = node.node_id
            for block_id in sorted(desired[node_id] - current[node_id]):
                sources = alive_holders.get(block_id)
                if not sources:
                    lost.add(block_id)
                    continue
                plan.moves.append(
                    BlockMove(block_id=block_id, src=sources[0], dst=node_id)
                )
            if not self.is_alive(node) or not node.alive:
                continue  # cannot reconcile a node we cannot contact
            for block_id in sorted(current[node_id] - desired[node_id]):
                plan.drops.append((block_id, node_id))
        plan.lost = sorted(lost)
        return plan

    # -- application -----------------------------------------------------------

    def sync_group(self, group: StorageGroup) -> RepairReport:
        """Plan and apply one group's sync immediately (no simulated time);
        returns the report with an offline makespan estimate."""
        plan = self.plan(group)
        return self._apply(group, plan, charge=self._estimate_seconds(plan))

    def sync_all(self) -> RepairReport:
        """Sync every group; returns the merged report."""
        report = RepairReport()
        for group in self.index.topology.groups:
            report = report.merge(self.sync_group(group))
        return report

    def repair_proc(self, group: StorageGroup, sim: Simulation, net: Network):
        """Generator process: the simulated-time variant of
        :meth:`sync_group`.  Destinations stream in parallel; each charges
        its network transfer then its vp-tree insert time."""
        plan = self.plan(group)
        if not plan.dirty:
            return RepairReport(blocks_lost=len(plan.lost))
        started = sim.now
        per_dst: dict[str, list[BlockMove]] = {}
        for move in plan.moves:
            per_dst.setdefault(move.dst, []).append(move)

        report = RepairReport(blocks_lost=len(plan.lost))

        def stream_to(dst_id: str, moves: list[BlockMove]):
            node = group.node(dst_id)
            transfer = 0.0
            for move in moves:
                size = int(self.index.store.codes_of(move.block_id).nbytes) + 72
                transfer += net.transfer(move.src, move.dst, size)
                report.bytes_streamed += size
            yield transfer
            block_ids = [move.block_id for move in moves]
            before = node.tree.adapter.pair_evaluations
            node.store_blocks(self.index.store.codes_matrix(block_ids), block_ids)
            report.blocks_streamed += len(block_ids)
            yield node.service_time(node.tree.adapter.pair_evaluations - before)

        streams = [
            sim.spawn(stream_to(dst_id, moves), name=f"repair:{dst_id}")
            for dst_id, moves in sorted(per_dst.items())
        ]
        if streams:
            yield AllOf(streams)
        self._apply_drops(group, plan, report)
        self._update_bookkeeping(group)
        report.simulated_seconds = sim.now - started
        return report

    def _apply(
        self, group: StorageGroup, plan: RepairPlan, charge: float
    ) -> RepairReport:
        report = RepairReport(
            blocks_lost=len(plan.lost), simulated_seconds=charge
        )
        per_dst: dict[str, list[int]] = {}
        for move in plan.moves:
            per_dst.setdefault(move.dst, []).append(move.block_id)
            report.bytes_streamed += (
                int(self.index.store.codes_of(move.block_id).nbytes) + 72
            )
        for dst_id in sorted(per_dst):
            node = group.node(dst_id)
            block_ids = per_dst[dst_id]
            node.store_blocks(self.index.store.codes_matrix(block_ids), block_ids)
            report.blocks_streamed += len(block_ids)
        self._apply_drops(group, plan, report)
        self._update_bookkeeping(group)
        return report

    def _apply_drops(
        self, group: StorageGroup, plan: RepairPlan, report: RepairReport
    ) -> None:
        """Remove over-replicated copies by rebuilding the affected trees
        from the kept blocks (the dynamic vp-tree has no tombstones; the
        rebuild stands in for background compaction and is not charged)."""
        per_node: dict[str, set[int]] = {}
        for block_id, node_id in plan.drops:
            per_node.setdefault(node_id, set()).add(block_id)
        for node_id in sorted(per_node):
            node = group.node(node_id)
            keep = sorted(set(node.block_ids) - per_node[node_id])
            node.reset_storage()
            if keep:
                node.store_blocks(self.index.store.codes_matrix(keep), keep)
            report.blocks_dropped += len(per_node[node_id])
            report.nodes_rebuilt += 1

    def _update_bookkeeping(self, group: StorageGroup) -> None:
        """Refresh the index's primary map and per-node counters after the
        group's holdings changed."""
        stats = self.index.stats.per_node_blocks
        for node in group.nodes:
            stats[node.node_id] = node.block_count
        replication = self.index.config.replication
        for block_id in self.group_blocks(group):
            key = self.index.store.block_key(block_id)
            holders = group.place_replicas_alive(key, replication, self.is_alive)
            if holders:
                self.index.node_of_block[block_id] = holders[0].node_id

    def _estimate_seconds(self, plan: RepairPlan) -> float:
        """Offline repair-time estimate (transfer only) for immediate syncs."""
        if not plan.moves:
            return 0.0
        bandwidth = 1e8
        total = sum(
            int(self.index.store.codes_of(move.block_id).nbytes) + 72
            for move in plan.moves
        )
        return total / bandwidth + 200e-6 * len(plan.moves)
