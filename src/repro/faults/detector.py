"""Heartbeat failure detection over the simulated cluster.

Each storage group runs one monitor process: every ``interval`` simulated
seconds the group's current entry point pings every other member and waits
for the ack.  A missed round (dead member, dropped ping or ack, partition)
marks the member *suspected*; ``miss_threshold`` consecutive misses declare
it *dead* and fire ``on_dead`` — the chaos controller's trigger for
re-replication.  An ack from a declared-dead node (it restarted) fires
``on_rejoin``.

Because pings ride the same lossy :class:`~repro.sim.network.Network` as
queries, the detector can be wrong in both directions: a partitioned or
unlucky node may be falsely declared dead (repair then over-replicates
until reconciliation), and a real death takes ``interval * miss_threshold``
to surface — exactly the window degraded queries must cover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.cluster.group import StorageGroup
from repro.cluster.node import StorageNode
from repro.obs.events import EventLog
from repro.sim.engine import Simulation
from repro.sim.network import Network

#: wire size of one ping or ack (envelope + a sequence number)
PING_BYTES = 72


@dataclass
class DetectorStats:
    pings: int = 0
    misses: int = 0
    deaths_declared: int = 0
    rejoins_detected: int = 0
    false_suspicions: int = 0


@dataclass
class FailureDetector:
    """Heartbeat state shared by every group monitor of one chaos run."""

    sim: Simulation
    net: Network
    interval: float
    miss_threshold: int = 3
    stop_at: float = float("inf")
    on_dead: Callable[[StorageNode], None] | None = None
    on_rejoin: Callable[[StorageNode], None] | None = None
    event_log: EventLog | None = None
    stats: DetectorStats = field(default_factory=DetectorStats)

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError(f"interval must be positive, got {self.interval}")
        if self.miss_threshold < 1:
            raise ValueError(
                f"miss_threshold must be >= 1, got {self.miss_threshold}"
            )
        self._misses: dict[str, int] = {}
        self._dead: set[str] = set()

    # -- the view --------------------------------------------------------------

    @property
    def dead(self) -> frozenset:
        """Node ids currently declared dead."""
        return frozenset(self._dead)

    def considers_alive(self, node: StorageNode) -> bool:
        """The detector's liveness view (may lag or contradict ground
        truth); used for failure-aware placement."""
        return node.node_id not in self._dead

    def mark_recovered(self, node: StorageNode) -> None:
        """A node announced its rejoin (restart event); clear its state."""
        self._dead.discard(node.node_id)
        self._misses[node.node_id] = 0
        node.suspected = False

    # -- monitoring ------------------------------------------------------------

    def monitor_proc(self, group: StorageGroup):
        """Generator process: heartbeat rounds for one group until
        ``stop_at`` (monitors must terminate or the event heap never
        drains)."""
        while self.sim.now + self.interval <= self.stop_at:
            yield self.interval
            coordinator = group.entry_point()
            if not coordinator.alive:
                continue  # whole group down: nobody to run the monitor
            for member in group.nodes:
                if member is coordinator:
                    continue
                ping_ok, d_out = self.net.try_transfer(
                    coordinator.node_id, member.node_id, PING_BYTES
                )
                acked, d_back = False, 0.0
                if ping_ok and member.alive:
                    acked, d_back = self.net.try_transfer(
                        member.node_id, coordinator.node_id, PING_BYTES
                    )
                yield d_out + d_back
                self._observe(member, acked)

    def _observe(self, member: StorageNode, acked: bool) -> None:
        self.stats.pings += 1
        node_id = member.node_id
        if acked:
            if node_id in self._dead:
                self._dead.discard(node_id)
                self.stats.rejoins_detected += 1
                if self.on_rejoin is not None:
                    self.on_rejoin(member)
            self._misses[node_id] = 0
            member.suspected = False
            return
        self.stats.misses += 1
        if node_id in self._dead:
            return  # already declared; nothing more to say
        self._misses[node_id] = self._misses.get(node_id, 0) + 1
        member.suspected = True
        if self._misses[node_id] == 1 and self.event_log is not None:
            self.event_log.emit(
                "suspect", node_id, "missed a heartbeat round",
                sim_time=self.sim.now,
            )
        if self._misses[node_id] >= self.miss_threshold:
            self._dead.add(node_id)
            member.suspected = False
            self.stats.deaths_declared += 1
            if member.alive:
                self.stats.false_suspicions += 1
            if self.on_dead is not None:
                self.on_dead(member)
