"""Ungapped X-drop extension (the seed-and-extend inner loop).

Given a seed match on one diagonal, extension accumulates per-position
substitution scores outward in both directions and stops once the running
score falls more than ``x_drop`` below the best seen — BLAST's classic
ungapped HSP extension, also used by Mendel when lengthening anchors.

The kernel is fully vectorised: the per-position scores along the diagonal
are gathered in one fancy-indexing call and the stopping point is found with
cumulative sums, so cost is O(extension length) numpy work with no Python
per-residue loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class UngappedExtension:
    """Result of extending a seed on a fixed diagonal.

    ``query_start``/``query_end`` (and the subject pair) delimit the final
    ungapped segment; ``score`` is its substitution-matrix score.
    """

    query_start: int
    query_end: int
    subject_start: int
    subject_end: int
    score: float


def _directional_extent(scores: np.ndarray, x_drop: float) -> tuple[int, float]:
    """Best prefix of *scores* under the X-drop rule.

    Walk the running sum; stop at the first position where it drops more
    than ``x_drop`` below the running maximum; return (#positions kept,
    score gained), where "kept" is the prefix ending at the running maximum.
    """
    if scores.size == 0:
        return 0, 0.0
    sums = np.cumsum(scores, dtype=np.float64)
    # The drop is measured from the best running sum seen so far *or* the
    # seed boundary (0), matching BLAST's X-drop semantics.
    running_max = np.maximum(np.maximum.accumulate(sums), 0.0)
    dropped = running_max - sums > x_drop
    if dropped.any():
        stop = int(np.argmax(dropped))  # first True
        window = sums[: stop + 1]
    else:
        window = sums
    best = int(np.argmax(window))
    best_score = float(window[best])
    if best_score <= 0:
        return 0, 0.0
    return best + 1, best_score


_CHUNK = 64


def batch_extent(
    query: np.ndarray,
    subject: np.ndarray,
    q_starts: np.ndarray,
    s_starts: np.ndarray,
    limits: np.ndarray,
    matrix: np.ndarray,
    x_drop: float,
    step: int,
) -> tuple[np.ndarray, np.ndarray]:
    """X-drop extent for *many* seeds at once (structure-of-arrays form).

    For seed ``i`` the scanned positions are ``q_starts[i] + step*t`` /
    ``s_starts[i] + step*t`` for ``t in [0, limits[i])``; ``step`` is ``+1``
    (rightward) or ``-1`` (leftward, with starts just before the seed).
    Semantics per seed are identical to :func:`_chunked_extent` (checked by
    property tests); work is chunked so early-terminating seeds cost one
    chunk of vector ops regardless of sequence length.

    Returns ``(keeps, gains)`` arrays: residues absorbed and score gained.
    """
    if step not in (-1, 1):
        raise ValueError(f"step must be +1 or -1, got {step}")
    q_starts = np.asarray(q_starts, dtype=np.int64)
    s_starts = np.asarray(s_starts, dtype=np.int64)
    limits = np.asarray(limits, dtype=np.int64)
    n = q_starts.shape[0]
    if not (s_starts.shape[0] == limits.shape[0] == n):
        raise ValueError("q_starts, s_starts, limits must be the same length")
    matrix = np.asarray(matrix, dtype=np.float64)
    flat = np.ascontiguousarray(matrix.ravel())
    size = matrix.shape[0]
    query = np.asarray(query, dtype=np.uint8)
    subject = np.asarray(subject, dtype=np.uint8)

    keeps = np.zeros(n, dtype=np.int64)
    gains = np.zeros(n, dtype=np.float64)
    carry = np.zeros(n, dtype=np.float64)
    active = limits > 0
    offset = 0
    max_limit = int(limits.max()) if n else 0

    while offset < max_limit and active.any():
        rows = np.flatnonzero(active)
        width = min(_CHUNK, max_limit - offset)
        t = offset + np.arange(width)
        q_idx = q_starts[rows, None] + step * t[None, :]
        s_idx = s_starts[rows, None] + step * t[None, :]
        valid = t[None, :] < limits[rows, None]
        np.clip(q_idx, 0, query.shape[0] - 1, out=q_idx)
        np.clip(s_idx, 0, subject.shape[0] - 1, out=s_idx)
        scores = flat[
            query[q_idx].astype(np.intp) * size + subject[s_idx].astype(np.intp)
        ]
        scores[~valid] = -1e9  # beyond-limit positions terminate the walk

        sums = carry[rows, None] + np.cumsum(scores, axis=1)
        running = np.maximum.accumulate(
            np.maximum(sums, gains[rows, None]), axis=1
        )
        dropped = (running - sums) > x_drop
        any_drop = dropped.any(axis=1)
        stop = np.where(any_drop, dropped.argmax(axis=1), width - 1)

        in_window = np.arange(width)[None, :] <= stop[:, None]
        windowed = np.where(in_window, sums, -np.inf)
        best_pos = np.argmax(windowed, axis=1)
        best_val = windowed[np.arange(rows.shape[0]), best_pos]
        improved = best_val > gains[rows]
        upd = rows[improved]
        gains[upd] = best_val[improved]
        keeps[upd] = offset + best_pos[improved] + 1

        carry[rows] = sums[:, -1]
        terminated = any_drop | (limits[rows] <= offset + width)
        active[rows[terminated]] = False
        offset += width

    dead = gains <= 0
    keeps[dead] = 0
    gains[dead] = 0.0
    return keeps, gains


def _chunked_extent(
    query_side: np.ndarray,
    subject_side: np.ndarray,
    matrix: np.ndarray,
    x_drop: float,
) -> tuple[int, float]:
    """X-drop extent over one direction, gathering scores in chunks.

    Equivalent to scoring the whole diagonal up front and calling
    :func:`_directional_extent`, but terminates after the first chunk when
    the X-drop fires there — the common case for spurious seeds, which keeps
    per-seed cost O(chunk) instead of O(sequence length).
    """
    limit = min(query_side.shape[0], subject_side.shape[0])
    kept = 0
    gained = 0.0
    offset = 0
    carry = 0.0  # running sum at the end of the previous chunk
    best_total = 0.0
    while offset < limit:
        end = min(offset + _CHUNK, limit)
        scores = matrix[query_side[offset:end], subject_side[offset:end]]
        sums = carry + np.cumsum(scores, dtype=np.float64)
        running = np.maximum.accumulate(np.maximum(sums, best_total))
        dropped = running - sums > x_drop
        if dropped.any():
            stop = int(np.argmax(dropped))
            window = sums[: stop + 1]
            best = int(np.argmax(window))
            if window[best] > best_total:
                best_total = float(window[best])
                kept = offset + best + 1
                gained = best_total
            break
        best = int(np.argmax(sums))
        if sums[best] > best_total:
            best_total = float(sums[best])
            kept = offset + best + 1
            gained = best_total
        carry = float(sums[-1])
        offset = end
    if gained <= 0:
        return 0, 0.0
    return kept, gained


def extend_ungapped(
    query: np.ndarray,
    subject: np.ndarray,
    matrix: np.ndarray,
    query_start: int,
    query_end: int,
    subject_start: int,
    x_drop: float = 20.0,
) -> UngappedExtension:
    """X-drop extend the seed ``query[query_start:query_end)`` matched at
    ``subject[subject_start:...)`` in both directions on the same diagonal.

    Parameters
    ----------
    query, subject:
        ``uint8`` code arrays.
    matrix:
        Substitution scoring matrix indexed by code pairs.
    query_start, query_end, subject_start:
        Seed coordinates; the seed's subject span is implied (same length).
    x_drop:
        Score drop tolerance before the extension stops.
    """
    query = np.asarray(query, dtype=np.uint8)
    subject = np.asarray(subject, dtype=np.uint8)
    matrix = np.asarray(matrix)
    seed_len = query_end - query_start
    if seed_len < 0:
        raise ValueError("query_end must be >= query_start")
    if not (0 <= query_start and query_end <= query.shape[0]):
        raise ValueError("seed out of query bounds")
    subject_end = subject_start + seed_len
    if not (0 <= subject_start and subject_end <= subject.shape[0]):
        raise ValueError("seed out of subject bounds")
    if x_drop < 0:
        raise ValueError(f"x_drop must be non-negative, got {x_drop}")

    seed_score = float(
        matrix[query[query_start:query_end], subject[subject_start:subject_end]].sum()
    ) if seed_len else 0.0

    # Rightward: positions after the seed (chunked gather — spurious seeds
    # terminate within the first chunk).
    right_keep, right_gain = _chunked_extent(
        query[query_end:], subject[subject_end:], matrix, x_drop
    )

    # Leftward: positions before the seed, scanned outward (reversed views).
    left_keep, left_gain = _chunked_extent(
        query[:query_start][::-1], subject[:subject_start][::-1], matrix, x_drop
    )

    return UngappedExtension(
        query_start=query_start - left_keep,
        query_end=query_end + right_keep,
        subject_start=subject_start - left_keep,
        subject_end=subject_end + right_keep,
        score=seed_score + left_gain + right_gain,
    )
