"""Global (Needleman–Wunsch) alignment with affine gaps.

Used for whole-sequence comparison (e.g. verifying that two family members
align end-to-end) and as an independent reference in the test suite.  Same
Gotoh recurrences as the local aligner but without the zero floor and with
gap-initialised borders; traceback produces the gapped strings.
"""

from __future__ import annotations

import numpy as np

from repro.align.smith_waterman import LocalAlignmentResult
from repro.util.validation import check_positive

_NEG = -1e18


def needleman_wunsch(
    query: np.ndarray,
    subject: np.ndarray,
    matrix: np.ndarray,
    gap_open: float = 11.0,
    gap_extend: float = 1.0,
    alphabet_letters: str | None = None,
) -> LocalAlignmentResult:
    """Optimal global alignment of *query* against *subject*.

    Returns a :class:`LocalAlignmentResult` whose spans always cover both
    sequences entirely; ``score`` may be negative for unrelated inputs.
    """
    check_positive("gap_open", gap_open)
    check_positive("gap_extend", gap_extend)
    query = np.asarray(query, dtype=np.uint8)
    subject = np.asarray(subject, dtype=np.uint8)
    matrix = np.asarray(matrix, dtype=np.float64)
    n, m = query.shape[0], subject.shape[0]
    if n == 0 and m == 0:
        return LocalAlignmentResult(0.0, 0, 0, 0, 0, identity=0.0)

    h = np.full((n + 1, m + 1), _NEG)
    e = np.full((n + 1, m + 1), _NEG)
    f = np.full((n + 1, m + 1), _NEG)
    h[0, 0] = 0.0
    for j in range(1, m + 1):
        e[0, j] = -gap_open - gap_extend * (j - 1)
        h[0, j] = e[0, j]
    for i in range(1, n + 1):
        f[i, 0] = -gap_open - gap_extend * (i - 1)
        h[i, 0] = f[i, 0]

    for i in range(1, n + 1):
        sub_scores = matrix[query[i - 1], subject] if m else np.zeros(0)
        f[i, 1:] = np.maximum(h[i - 1, 1:] - gap_open, f[i - 1, 1:] - gap_extend)
        for j in range(1, m + 1):
            e[i, j] = max(h[i, j - 1] - gap_open, e[i, j - 1] - gap_extend)
            h[i, j] = max(
                h[i - 1, j - 1] + sub_scores[j - 1], e[i, j], f[i, j]
            )

    # Traceback from the corner.
    i, j = n, m
    q_parts: list[str] = []
    s_parts: list[str] = []
    matches = 0
    columns = 0
    gaps = 0
    letters = alphabet_letters

    def q_char(idx: int) -> str:
        return letters[query[idx]] if letters else "?"

    def s_char(idx: int) -> str:
        return letters[subject[idx]] if letters else "?"

    state = "H"
    while i > 0 or j > 0:
        if state == "H":
            if i > 0 and j > 0 and np.isclose(
                h[i, j], h[i - 1, j - 1] + matrix[query[i - 1], subject[j - 1]]
            ):
                q_parts.append(q_char(i - 1))
                s_parts.append(s_char(j - 1))
                matches += int(query[i - 1] == subject[j - 1])
                columns += 1
                i -= 1
                j -= 1
            elif j > 0 and np.isclose(h[i, j], e[i, j]):
                state = "E"
            elif i > 0 and np.isclose(h[i, j], f[i, j]):
                state = "F"
            elif j > 0:  # border row
                state = "E"
            else:  # border column
                state = "F"
        elif state == "E":
            q_parts.append("-")
            s_parts.append(s_char(j - 1))
            gaps += 1
            columns += 1
            if j > 1 and np.isclose(e[i, j], e[i, j - 1] - gap_extend) and not (
                np.isclose(e[i, j], h[i, j - 1] - gap_open)
            ):
                j -= 1
            else:
                j -= 1
                state = "H"
        else:  # "F"
            q_parts.append(q_char(i - 1))
            s_parts.append("-")
            gaps += 1
            columns += 1
            if i > 1 and np.isclose(f[i, j], f[i - 1, j] - gap_extend) and not (
                np.isclose(f[i, j], h[i - 1, j] - gap_open)
            ):
                i -= 1
            else:
                i -= 1
                state = "H"

    identity = matches / columns if columns else 0.0
    return LocalAlignmentResult(
        score=float(h[n, m]),
        query_start=0,
        query_end=n,
        subject_start=0,
        subject_end=m,
        identity=identity,
        gaps=gaps,
        aligned_query="".join(reversed(q_parts)),
        aligned_subject="".join(reversed(s_parts)),
    )


def format_pairwise(
    result: LocalAlignmentResult,
    width: int = 60,
    query_label: str = "Query",
    subject_label: str = "Sbjct",
) -> str:
    """BLAST-style pairwise rendering of a traceback-bearing alignment::

        Query  1   MKVLAW-FW  8
                   ||||.| ||
        Sbjct  4   MKVLGWAFW  12
    """
    if not result.aligned_query:
        return "(no traceback available)"
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    lines: list[str] = []
    q_pos = result.query_start
    s_pos = result.subject_start
    aligned_q = result.aligned_query
    aligned_s = result.aligned_subject
    label_width = max(len(query_label), len(subject_label))
    for start in range(0, len(aligned_q), width):
        q_chunk = aligned_q[start : start + width]
        s_chunk = aligned_s[start : start + width]
        middle = "".join(
            "|" if a == b and a != "-" else (" " if a == "-" or b == "-" else ".")
            for a, b in zip(q_chunk, s_chunk)
        )
        q_advance = sum(1 for c in q_chunk if c != "-")
        s_advance = sum(1 for c in s_chunk if c != "-")
        number_width = len(str(max(result.query_end, result.subject_end)))
        lines.append(
            f"{query_label:<{label_width}}  {q_pos + 1:>{number_width}}  "
            f"{q_chunk}  {q_pos + q_advance}"
        )
        lines.append(
            f"{'':<{label_width}}  {'':>{number_width}}  {middle}"
        )
        lines.append(
            f"{subject_label:<{label_width}}  {s_pos + 1:>{number_width}}  "
            f"{s_chunk}  {s_pos + s_advance}"
        )
        lines.append("")
        q_pos += q_advance
        s_pos += s_advance
    return "\n".join(lines).rstrip()
