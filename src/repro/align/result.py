"""Alignment result types shared by Mendel and the BLAST baseline."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Anchor:
    """An ungapped matching region between a query and a subject sequence.

    ``diagonal`` is the paper's definition: the difference between the
    subject and query start positions; anchors on the same diagonal of the
    same subject can be merged and gap-extended together.
    """

    seq_id: str
    query_start: int
    query_end: int
    subject_start: int
    subject_end: int
    score: float

    def __post_init__(self) -> None:
        if self.query_end < self.query_start:
            raise ValueError(
                f"query_end {self.query_end} < query_start {self.query_start}"
            )
        if self.subject_end < self.subject_start:
            raise ValueError(
                f"subject_end {self.subject_end} < subject_start {self.subject_start}"
            )
        if (self.query_end - self.query_start) != (
            self.subject_end - self.subject_start
        ):
            raise ValueError("anchors are ungapped: spans must be equal length")

    @property
    def diagonal(self) -> int:
        return self.subject_start - self.query_start

    @property
    def length(self) -> int:
        return self.query_end - self.query_start

    def overlaps(self, other: "Anchor") -> bool:
        """True when *other* is on the same subject+diagonal and the query
        spans touch or overlap."""
        return (
            self.seq_id == other.seq_id
            and self.diagonal == other.diagonal
            and self.query_start <= other.query_end
            and other.query_start <= self.query_end
        )

    def merge(self, other: "Anchor") -> "Anchor":
        """Union of two overlapping same-diagonal anchors.

        The merged score is the maximum of the two (a conservative bound —
        the true union score is recomputed during gapped extension).
        """
        if not self.overlaps(other):
            raise ValueError(f"cannot merge non-overlapping anchors {self} / {other}")
        query_start = min(self.query_start, other.query_start)
        query_end = max(self.query_end, other.query_end)
        return Anchor(
            seq_id=self.seq_id,
            query_start=query_start,
            query_end=query_end,
            subject_start=query_start + self.diagonal,
            subject_end=query_end + self.diagonal,
            score=max(self.score, other.score),
        )


@dataclass(frozen=True)
class Alignment:
    """A scored (possibly gapped) local alignment, ranked by E-value."""

    query_id: str
    subject_id: str
    query_start: int
    query_end: int
    subject_start: int
    subject_end: int
    score: float
    bit_score: float
    evalue: float
    identity: float = 0.0
    gaps: int = 0

    def __post_init__(self) -> None:
        if self.evalue < 0:
            raise ValueError(f"evalue must be non-negative, got {self.evalue}")
        if not 0.0 <= self.identity <= 1.0:
            raise ValueError(f"identity must be within [0, 1], got {self.identity}")

    @property
    def query_span(self) -> int:
        return self.query_end - self.query_start

    @property
    def subject_span(self) -> int:
        return self.subject_end - self.subject_start

    def brief(self) -> str:
        """One-line report row (used by examples and the bench harness)."""
        return (
            f"{self.query_id}\t{self.subject_id}\t"
            f"q[{self.query_start}:{self.query_end}]\t"
            f"s[{self.subject_start}:{self.subject_end}]\t"
            f"score={self.score:.0f}\tbits={self.bit_score:.1f}\t"
            f"E={self.evalue:.2e}\tid={self.identity:.2f}"
        )
