"""Smith–Waterman local alignment with affine gaps (Gotoh recurrences).

The reference-quality aligner used (a) to score final gapped alignments, and
(b) as the ground truth the property tests compare the banded extension
against.  The dynamic programme loops over query rows but is vectorised
across subject columns within each row, so the inner work is numpy-level.

Recurrences (match ``H``, gap-in-query ``E``, gap-in-subject ``F``)::

    E[i][j] = max(H[i][j-1] - open, E[i][j-1] - extend)
    F[i][j] = max(H[i-1][j] - open, F[i-1][j] - extend)
    H[i][j] = max(0, H[i-1][j-1] + s(q_i, s_j), E[i][j], F[i][j])

``E`` has an intra-row dependency; it is resolved with the standard
prefix-scan trick (a logarithmic number of shifted maxima) so no Python
loop over columns is needed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_positive


@dataclass(frozen=True)
class LocalAlignmentResult:
    """Best local alignment between two sequences.

    Coordinates are half-open; ``aligned_query``/``aligned_subject`` are the
    gapped strings when traceback was requested (empty otherwise).
    """

    score: float
    query_start: int
    query_end: int
    subject_start: int
    subject_end: int
    identity: float = 0.0
    gaps: int = 0
    aligned_query: str = ""
    aligned_subject: str = ""


def _scan_max_affine(
    values: np.ndarray, extend: float, out: np.ndarray | None = None
) -> np.ndarray:
    """For each j return ``max_{k<=j}(values[k] - extend*(j-k))``.

    This is the affine-gap prefix scan: computed in O(n log n) with doubling
    shifts, all vectorised.  Pass *out* to reuse a scratch buffer on hot
    paths (it must not alias *values*).
    """
    if out is None:
        result = values.copy()
    else:
        result = out
        np.copyto(result, values)
    n = result.shape[0]
    shift = 1
    while shift < n:
        # result[shift:] = max(result[shift:], result[:-shift] - extend*shift).
        # The read slice is the pre-step value only through the subtraction
        # temporary, so this is the standard Jacobi doubling update.
        np.maximum(result[shift:], result[:-shift] - extend * shift,
                   out=result[shift:])
        shift *= 2
    return result


def smith_waterman_score(
    query: np.ndarray,
    subject: np.ndarray,
    matrix: np.ndarray,
    gap_open: float = 11.0,
    gap_extend: float = 1.0,
) -> LocalAlignmentResult:
    """Score-only affine Smith–Waterman (no traceback) in O(nm) time,
    O(m) memory; returns the best score and its end coordinates."""
    check_positive("gap_open", gap_open)
    check_positive("gap_extend", gap_extend)
    if gap_open < gap_extend:
        # The row-wise prefix-scan formulation below assumes opening a gap is
        # never cheaper than extending one (true for every standard scheme).
        raise ValueError(
            f"gap_open ({gap_open}) must be >= gap_extend ({gap_extend})"
        )
    query = np.asarray(query, dtype=np.uint8)
    subject = np.asarray(subject, dtype=np.uint8)
    matrix = np.asarray(matrix, dtype=np.float64)
    n, m = query.shape[0], subject.shape[0]
    if n == 0 or m == 0:
        return LocalAlignmentResult(0.0, 0, 0, 0, 0)

    prev_h = np.zeros(m + 1, dtype=np.float64)
    prev_f = np.full(m + 1, -np.inf, dtype=np.float64)
    best = 0.0
    best_i = best_j = 0
    for i in range(1, n + 1):
        sub_scores = matrix[query[i - 1], subject]  # (m,)
        diag = prev_h[:-1] + sub_scores
        f = np.maximum(prev_h[1:] - gap_open, prev_f[1:] - gap_extend)
        # H without E, then fold in E via the prefix scan over this row.
        h_no_e = np.maximum(0.0, np.maximum(diag, f))
        # E[j] = max_{k <= j-1} (H[k] - open - extend*(j-1-k)).  Seeding the
        # scan with H-no-E is sufficient: chaining E off an H that itself
        # came from E is dominated by extending the original gap whenever
        # open >= extend (asserted above).
        scanned = _scan_max_affine(h_no_e - gap_open, gap_extend)
        e = np.full(m, -np.inf)
        e[1:] = scanned[:-1]
        h = np.maximum(h_no_e, e)
        row_best_j = int(np.argmax(h))
        if h[row_best_j] > best:
            best = float(h[row_best_j])
            best_i, best_j = i, row_best_j + 1
        prev_h = np.concatenate(([0.0], h))
        prev_f = np.concatenate(([-np.inf], f))

    return LocalAlignmentResult(
        score=best,
        query_start=0,
        query_end=best_i,
        subject_start=0,
        subject_end=best_j,
    )


def smith_waterman(
    query: np.ndarray,
    subject: np.ndarray,
    matrix: np.ndarray,
    gap_open: float = 11.0,
    gap_extend: float = 1.0,
    alphabet_letters: str | None = None,
) -> LocalAlignmentResult:
    """Full affine Smith–Waterman with traceback.

    Uses explicit DP matrices (O(nm) memory), so intended for the moderate
    lengths of final-alignment scoring; use :func:`smith_waterman_score` for
    score-only screening.
    """
    check_positive("gap_open", gap_open)
    check_positive("gap_extend", gap_extend)
    query = np.asarray(query, dtype=np.uint8)
    subject = np.asarray(subject, dtype=np.uint8)
    matrix = np.asarray(matrix, dtype=np.float64)
    n, m = query.shape[0], subject.shape[0]
    if n == 0 or m == 0:
        return LocalAlignmentResult(0.0, 0, 0, 0, 0)

    neg = -np.inf
    h = np.zeros((n + 1, m + 1), dtype=np.float64)
    e = np.full((n + 1, m + 1), neg, dtype=np.float64)
    f = np.full((n + 1, m + 1), neg, dtype=np.float64)
    for i in range(1, n + 1):
        sub_scores = matrix[query[i - 1], subject]
        e_row = np.full(m + 1, neg)
        h_row = np.zeros(m + 1)
        f_row = np.maximum(h[i - 1, :] - gap_open, f[i - 1, :] - gap_extend)
        for j in range(1, m + 1):
            e_row[j] = max(h_row[j - 1] - gap_open, e_row[j - 1] - gap_extend)
            h_row[j] = max(
                0.0,
                h[i - 1, j - 1] + sub_scores[j - 1],
                e_row[j],
                f_row[j],
            )
        h[i, :] = h_row
        e[i, :] = e_row
        f[i, :] = f_row

    best_i, best_j = np.unravel_index(int(np.argmax(h)), h.shape)
    best = float(h[best_i, best_j])
    if best <= 0:
        return LocalAlignmentResult(0.0, 0, 0, 0, 0)

    # Traceback from (best_i, best_j) until H hits 0.
    i, j = int(best_i), int(best_j)
    q_parts: list[str] = []
    s_parts: list[str] = []
    gaps = 0
    matches = 0
    columns = 0
    letters = alphabet_letters

    def q_char(idx: int) -> str:
        return letters[query[idx]] if letters else "?"

    def s_char(idx: int) -> str:
        return letters[subject[idx]] if letters else "?"

    state = "H"
    while i > 0 and j > 0 and h[i, j] > 0:
        if state == "H":
            if h[i, j] == h[i - 1, j - 1] + matrix[query[i - 1], subject[j - 1]]:
                q_parts.append(q_char(i - 1))
                s_parts.append(s_char(j - 1))
                if query[i - 1] == subject[j - 1]:
                    matches += 1
                columns += 1
                i -= 1
                j -= 1
            elif h[i, j] == e[i, j]:
                state = "E"
            elif h[i, j] == f[i, j]:
                state = "F"
            else:  # pragma: no cover - defensive
                break
        elif state == "E":
            q_parts.append("-")
            s_parts.append(s_char(j - 1))
            gaps += 1
            columns += 1
            if e[i, j] == e[i, j - 1] - gap_extend:
                j -= 1
            else:
                j -= 1
                state = "H"
        else:  # state == "F"
            q_parts.append(q_char(i - 1))
            s_parts.append("-")
            gaps += 1
            columns += 1
            if f[i, j] == f[i - 1, j] - gap_extend:
                i -= 1
            else:
                i -= 1
                state = "H"

    identity = matches / columns if columns else 0.0
    return LocalAlignmentResult(
        score=best,
        query_start=i,
        query_end=int(best_i),
        subject_start=j,
        subject_end=int(best_j),
        identity=identity,
        gaps=gaps,
        aligned_query="".join(reversed(q_parts)),
        aligned_subject="".join(reversed(s_parts)),
    )
