"""Banded gapped extension (Gapped BLAST style; paper section V-B).

From an anchor's seed point the alignment is extended forward and backward
with affine-gap dynamic programming restricted to a band of ``bandwidth``
diagonals either side of the anchor's diagonal — the paper's ``l`` query
parameter ("the gapped extension considers all anchors from the same
sequence within l diagonals in either direction").  An X-drop criterion
terminates each direction once every cell of the current row falls more than
``x_drop`` below the best score seen.

The DP is banded: each row holds ``2*bandwidth + 1`` cells, the row loop is
Python but all per-row work is vectorised, so cost is
``O(extension_length * bandwidth)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.align.smith_waterman import _scan_max_affine
from repro.util.validation import check_non_negative, check_positive

_NEG = -1e18  # effectively -inf but safe under arithmetic


@dataclass(frozen=True)
class GappedExtension:
    """Result of a two-directional banded gapped extension.

    Coordinates are absolute over the full query/subject; ``score`` is the
    summed DP score of both directions (the seed residue pair is scored in
    the forward pass).
    """

    query_start: int
    query_end: int
    subject_start: int
    subject_end: int
    score: float


def _extend_one_direction(
    query: np.ndarray,
    subject: np.ndarray,
    matrix: np.ndarray,
    bandwidth: int,
    gap_open: float,
    gap_extend: float,
    x_drop: float,
) -> tuple[int, int, float]:
    """Banded affine extension of *query* against *subject* starting at
    their position 0; returns ``(query_consumed, subject_consumed, score)``.

    Unlike local alignment, scores may go negative (extension semantics);
    the X-drop rule prunes hopeless rows.
    """
    n, m = query.shape[0], subject.shape[0]
    width = 2 * bandwidth + 1
    best_score = 0.0
    best_i = best_j = 0

    # Row 0: aligning zero query residues against j subject residues (a pure
    # gap in the query).  Band position b corresponds to j = b - bandwidth.
    h_prev = np.full(width, _NEG)
    f_prev = np.full(width, _NEG)
    for b in range(width):
        j = b - bandwidth
        if j == 0:
            h_prev[b] = 0.0
        elif 0 < j <= m:
            h_prev[b] = -gap_open - gap_extend * (j - 1)

    # Preallocated row buffers — the row loop below does no allocation.
    offsets = np.arange(width) - bandwidth
    sub_scores = np.empty(width)
    diag = np.empty(width)
    f = np.empty(width)
    h_no_e = np.empty(width)
    h = np.empty(width)
    scan_buf = np.empty(width)

    for i in range(1, n + 1):
        # Band position b in row i covers subject column j = i + b - bandwidth.
        j_lo = i - bandwidth  # j at b = 0
        # Valid subject columns are 1..m (column 0 is the gap border).
        b_first = max(0, 1 - j_lo)
        b_last = min(width, m + 1 - j_lo)  # one past the last valid b

        sub_scores[:] = _NEG
        if b_first < b_last:
            cols = subject[j_lo + b_first - 1 : j_lo + b_last - 1]
            sub_scores[b_first:b_last] = matrix[query[i - 1], cols]

        np.add(h_prev, sub_scores, out=diag)  # prev row, same b == (i-1, j-1)
        # f = max(h_prev[b+1] - open, f_prev[b+1] - extend)
        np.maximum(h_prev[1:] - gap_open, f_prev[1:] - gap_extend, out=f[:-1])
        f[-1] = _NEG

        np.maximum(diag, f, out=h_no_e)
        np.subtract(h_no_e, gap_open, out=h)  # reuse h as scan input
        scanned = _scan_max_affine(h, gap_extend, out=scan_buf)
        np.maximum(h_no_e[1:], scanned[:-1], out=h[1:])
        h[0] = h_no_e[0]
        if b_first > 0:
            h[:b_first] = _NEG
        if b_last < width:
            h[b_last:] = _NEG
        # j == 0 with i > 0 means a pure gap in the subject.
        if 0 <= -j_lo < width:
            h[-j_lo] = -gap_open - gap_extend * (i - 1)

        b_best = int(np.argmax(h))
        row_best = float(h[b_best])
        if row_best > best_score:
            best_score = row_best
            best_i, best_j = i, j_lo + b_best
        if row_best < best_score - x_drop:
            break
        # X-drop inside the band: cells far below best cannot recover more
        # than x_drop, prune them.
        np.copyto(h, _NEG, where=h < best_score - x_drop)
        h_prev, h = h, h_prev
        f_prev, f = f, f_prev

    return best_i, best_j, best_score


def banded_extend(
    query: np.ndarray,
    subject: np.ndarray,
    matrix: np.ndarray,
    seed_query: int,
    seed_subject: int,
    bandwidth: int = 8,
    gap_open: float = 11.0,
    gap_extend: float = 1.0,
    x_drop: float = 25.0,
) -> GappedExtension:
    """Gapped-extend from the seed pair ``(seed_query, seed_subject)``.

    The forward pass starts *at* the seed pair (scoring it) and the backward
    pass starts just before it, so the seed is counted exactly once.
    """
    check_non_negative("bandwidth", bandwidth)
    check_positive("gap_open", gap_open)
    check_positive("gap_extend", gap_extend)
    check_non_negative("x_drop", x_drop)
    query = np.asarray(query, dtype=np.uint8)
    subject = np.asarray(subject, dtype=np.uint8)
    matrix = np.asarray(matrix, dtype=np.float64)
    if not 0 <= seed_query < query.shape[0]:
        raise ValueError(f"seed_query {seed_query} out of bounds")
    if not 0 <= seed_subject < subject.shape[0]:
        raise ValueError(f"seed_subject {seed_subject} out of bounds")

    fwd_i, fwd_j, fwd_score = _extend_one_direction(
        query[seed_query:],
        subject[seed_subject:],
        matrix,
        bandwidth,
        gap_open,
        gap_extend,
        x_drop,
    )
    bwd_i, bwd_j, bwd_score = _extend_one_direction(
        query[:seed_query][::-1],
        subject[:seed_subject][::-1],
        matrix,
        bandwidth,
        gap_open,
        gap_extend,
        x_drop,
    )
    return GappedExtension(
        query_start=seed_query - bwd_i,
        query_end=seed_query + fwd_i,
        subject_start=seed_subject - bwd_j,
        subject_end=seed_subject + fwd_j,
        score=fwd_score + bwd_score,
    )
