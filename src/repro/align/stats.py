"""Karlin–Altschul statistics: lambda, K, bit scores, and E-values.

Both Mendel (final ranking by expectation value, Table I's ``E`` parameter)
and the BLAST baseline report alignment significance through the
Karlin–Altschul theory for ungapped local alignment scores:

* ``lambda`` is the unique positive root of
  ``sum_ij p_i p_j exp(lambda * s_ij) = 1`` — solved here by bisection
  (the summand is monotone in lambda for valid scoring systems);
* ``K`` is estimated with the standard geometric-series approximation from
  the score distribution (adequate for ranking; absolute E-values are not a
  reproduction target);
* ``E = K * m * n * exp(-lambda * S)`` for a score ``S`` against a query of
  length ``m`` and a database of ``n`` total residues;
* ``bits = (lambda * S - ln K) / ln 2``.

A scoring system is *valid* when its expected score is negative and at least
one positive score exists; :func:`karlin_altschul` validates this and raises
otherwise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_positive


@dataclass(frozen=True)
class KarlinAltschulParams:
    """Fitted statistical parameters for one (matrix, background) pair."""

    lam: float
    k: float
    h: float  # relative entropy per aligned pair (nats)

    def bit_score(self, raw_score: float) -> float:
        return (self.lam * raw_score - math.log(self.k)) / math.log(2.0)

    def evalue(self, raw_score: float, query_len: int, db_len: int) -> float:
        check_positive("query_len", query_len)
        check_positive("db_len", db_len)
        return self.k * query_len * db_len * math.exp(-self.lam * raw_score)


def _expected_exp(matrix: np.ndarray, pi: np.ndarray, lam: float) -> float:
    """``sum_ij p_i p_j exp(lam * s_ij)`` restricted to residues with
    non-zero background probability."""
    weights = np.outer(pi, pi)
    return float((weights * np.exp(lam * matrix)).sum())


def karlin_altschul(
    matrix: np.ndarray,
    background: np.ndarray,
    tol: float = 1e-10,
) -> KarlinAltschulParams:
    """Fit lambda/K/H for *matrix* under *background* residue frequencies.

    *background* is truncated/normalised to the matrix dimension; residues
    with zero probability do not participate.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    background = np.asarray(background, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"matrix must be square, got {matrix.shape}")
    size = matrix.shape[0]
    if background.shape[0] < size:
        padded = np.zeros(size)
        padded[: background.shape[0]] = background
        background = padded
    pi = background[:size].copy()
    if pi.sum() <= 0:
        raise ValueError("background frequencies must have positive mass")
    pi /= pi.sum()

    active = pi > 0
    sub = matrix[np.ix_(active, active)]
    p = pi[active]
    expected = float((np.outer(p, p) * sub).sum())
    if expected >= 0:
        raise ValueError(
            f"invalid scoring system: expected score {expected:.4f} must be negative"
        )
    if sub.max() <= 0:
        raise ValueError("invalid scoring system: needs at least one positive score")

    # Bisection on f(lam) = sum p_i p_j exp(lam s_ij) - 1.  f(0) = 0; for
    # valid systems f'(0) = E[s] < 0 and f -> +inf, so there is a unique
    # positive root.
    lo, hi = 1e-6, 1.0
    while _expected_exp(sub, p, hi) < 1.0:
        hi *= 2.0
        if hi > 1e3:
            raise ValueError("failed to bracket lambda; scoring system degenerate")
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if _expected_exp(sub, p, mid) < 1.0:
            lo = mid
        else:
            hi = mid
        if hi - lo < tol:
            break
    lam = 0.5 * (lo + hi)

    # Relative entropy H = lambda * sum q_ij s_ij where q_ij is the aligned-
    # pair distribution q_ij = p_i p_j exp(lambda s_ij).
    q = np.outer(p, p) * np.exp(lam * sub)
    q /= q.sum()
    h = float(lam * (q * sub).sum())

    # K via the standard approximation K ~ H / (lambda * E[s^2 under q])
    # refined with the Karlin-Altschul first-order bound; exact K requires
    # the full renewal computation, overkill for ranking purposes.
    mean_sq = float((q * sub**2).sum())
    k = max(1e-4, min(1.0, h / (lam * mean_sq) if mean_sq > 0 else 0.1))
    return KarlinAltschulParams(lam=lam, k=k, h=h)


def uniform_background(size: int) -> np.ndarray:
    """Uniform residue background of dimension *size*."""
    check_positive("size", size)
    return np.full(size, 1.0 / size)
