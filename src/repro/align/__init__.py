"""Alignment substrate: ungapped X-drop extension, banded gapped extension,
full Smith–Waterman, and Karlin–Altschul statistics."""

from repro.align.gapped import GappedExtension, banded_extend
from repro.align.global_align import format_pairwise, needleman_wunsch
from repro.align.result import Alignment, Anchor
from repro.align.smith_waterman import (
    LocalAlignmentResult,
    smith_waterman,
    smith_waterman_score,
)
from repro.align.stats import (
    KarlinAltschulParams,
    karlin_altschul,
    uniform_background,
)
from repro.align.ungapped import UngappedExtension, extend_ungapped

__all__ = [
    "GappedExtension",
    "banded_extend",
    "format_pairwise",
    "needleman_wunsch",
    "Alignment",
    "Anchor",
    "LocalAlignmentResult",
    "smith_waterman",
    "smith_waterman_score",
    "KarlinAltschulParams",
    "karlin_altschul",
    "uniform_background",
    "UngappedExtension",
    "extend_ungapped",
]
