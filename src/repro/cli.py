"""Command-line interface.

::

    python -m repro index refs.fasta --alphabet protein --out deploy.npz
    python -m repro info deploy.npz
    python -m repro query deploy.npz queries.fasta --top 5
    python -m repro bench fig6a
    python -m repro serve deploy.npz --port 7766
    python -m repro chaos --replication 2 --seed 0
    python -m repro call query --seq MKV... --port 7766
    python -m repro trace deploy.npz queries.fasta --out trace.json
    python -m repro explain deploy.npz queries.fasta
    python -m repro watch --once --format json

``index`` builds a deployment and saves it; ``query`` loads one and
searches every sequence of a FASTA query set; ``info`` summarises a saved
deployment; ``bench`` reruns one of the paper's figures and prints its
table; ``serve`` exposes a saved deployment through the TCP query gateway
(:mod:`repro.serve`); ``chaos`` runs the scripted kill/recover
fault-injection scenario (:mod:`repro.faults`) and prints recall and
coverage under failure; ``call`` speaks the gateway's JSON-lines protocol
(QUERY / EXPLAIN / STATS / HEALTH / METRICS / ALERTS) from the command
line; ``watch`` is the health dashboard — either a headless chaos-scenario
run (rolling SLIs, SLO burn-rate alerts with correlated causes, the event
tail; ``--once --format json`` is the CI mode) or, with ``--gateway``, a
live poll of a running server's ALERTS op;
``trace`` profiles queries with the observability layer (:mod:`repro.obs`),
printing each query's span tree and optionally writing a Chrome trace-event
JSON loadable in Perfetto or ``chrome://tracing``; ``explain`` prints each
query's structured plan — tier-1 routing, fan-out, and the per-stage
candidate attrition funnel (:mod:`repro.core.explain`).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.bench import figures as _figures
from repro.bench.harness import format_table
from repro.core import Mendel, MendelConfig, QueryParams, load_index, save_index
from repro.core.autoconfig import suggest_config
from repro.core.query import QueryEngine
from repro.seq.fasta import read_fasta

_FIGURES = {
    "fig5": _figures.run_fig5_load_balance,
    "fig6a": _figures.run_fig6a_query_length,
    "fig6b": _figures.run_fig6b_db_size,
    "fig6c": _figures.run_fig6c_scalability,
    "fig6d": _figures.run_fig6d_sensitivity,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mendel: distributed similarity search over sequencing data",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    index = sub.add_parser("index", help="build and save a deployment")
    index.add_argument("fasta", help="reference FASTA file")
    index.add_argument("--alphabet", choices=("dna", "protein"),
                       default="protein")
    index.add_argument("--out", required=True, help="output archive (.npz)")
    index.add_argument("--nodes", type=int, default=10,
                       help="node budget for auto-configuration")
    index.add_argument("--groups", type=int, default=None,
                       help="explicit group count (overrides auto)")
    index.add_argument("--group-size", type=int, default=None,
                       help="explicit nodes per group (overrides auto)")
    index.add_argument("--replication", type=int, default=1)
    index.add_argument("--segment-length", type=int, default=None)
    index.add_argument("--seed", type=int, default=42)

    info = sub.add_parser("info", help="summarise a saved deployment")
    info.add_argument("archive", help="saved .npz deployment")
    info.add_argument("--balance", action="store_true",
                      help="append the two-tier balance audit (Fig. 5)")

    query = sub.add_parser("query", help="search a saved deployment")
    query.add_argument("archive", help="saved .npz deployment")
    query.add_argument("fasta", help="query FASTA file")
    query.add_argument("--alphabet", choices=("dna", "protein"),
                       default=None, help="query alphabet (default: index's)")
    query.add_argument("--top", type=int, default=5,
                       help="alignments to print per query")
    query.add_argument("--k", type=int, default=4)
    query.add_argument("--n", type=int, default=8)
    query.add_argument("--identity", type=float, default=0.5, dest="i")
    query.add_argument("--c-score", type=float, default=0.5, dest="c")
    query.add_argument("--matrix", default="BLOSUM62", dest="M")
    query.add_argument("--evalue", type=float, default=10.0, dest="E")

    bench = sub.add_parser(
        "bench", help="rerun one of the paper's figures, the perf suite, "
                      "or diff two BENCH files"
    )
    bench.add_argument("figure", nargs="?", default=None,
                       choices=sorted(_FIGURES) + ["all", "diff"])
    bench.add_argument("files", nargs="*", default=[],
                       help="with 'diff': the two BENCH_<n>.json files "
                            "(baseline, current)")
    bench.add_argument("--out", default=None,
                       help="with 'all': write the markdown report here; "
                            "with 'diff': the ATTRIBUTION.md path "
                            "(default: ATTRIBUTION.md)")
    bench.add_argument("--regress", action="store_true",
                       help="run the canonical perf suite, write BENCH_<n>.json, "
                            "and diff against the previous run")
    bench.add_argument("--bench-dir", default=".",
                       help="directory holding BENCH_<n>.json files "
                            "(default: current directory)")
    bench.add_argument("--seed", type=int, default=23,
                       help="with --regress: workload seed")
    bench.add_argument("--profile", action="store_true",
                       help="with --regress: capture a deterministic cost "
                            "profile as PROFILE_<n>.json next to the "
                            "BENCH file")
    bench.add_argument("--profile-a", default=None,
                       help="with 'diff': baseline PROFILE json "
                            "(default: PROFILE_<n>.json next to file A)")
    bench.add_argument("--profile-b", default=None,
                       help="with 'diff': current PROFILE json "
                            "(default: PROFILE_<n>.json next to file B)")

    serve = sub.add_parser("serve", help="serve a saved deployment over TCP")
    serve.add_argument("archive", help="saved .npz deployment")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7766)
    serve.add_argument("--workers", type=int, default=4,
                       help="query execution threads")
    serve.add_argument("--max-pending", type=int, default=64,
                       help="admission bound before load shedding")
    serve.add_argument("--batch-window", type=float, default=0.002,
                       help="micro-batch coalescing window (seconds)")
    serve.add_argument("--max-batch", type=int, default=8,
                       help="micro-batch size cap")
    serve.add_argument("--cache-size", type=int, default=1024,
                       help="result-cache capacity (0 disables caching)")
    serve.add_argument("--cache-ttl", type=float, default=None,
                       help="result-cache TTL in seconds (default: no expiry)")
    serve.add_argument("--slow-query-threshold", type=float, default=None,
                       help="log requests slower than this (wall seconds)")
    serve.add_argument("--slow-log-size", type=int, default=32,
                       help="slow-query log length surfaced via STATS")
    serve.add_argument("--no-tracing", action="store_true",
                       help="disable per-request span recording")
    serve.add_argument("--autoscale", action="store_true",
                       help="attach the elastic autoscaler (lazily ticked "
                            "from HEALTH/ALERTS/STATS/SCALE reads)")

    chaos = sub.add_parser(
        "chaos",
        help="run the scripted kill/recover fault-injection scenario",
    )
    chaos.add_argument("--replication", type=int, default=2,
                       help="block copies per group (1 shows degradation)")
    chaos.add_argument("--groups", type=int, default=3)
    chaos.add_argument("--group-size", type=int, default=3)
    chaos.add_argument("--sequences", type=int, default=18,
                       help="synthetic reference sequences")
    chaos.add_argument("--probes", type=int, default=6,
                       help="queries spread across the failure window")
    chaos.add_argument("--seed", type=int, default=0,
                       help="seed for database, schedule, and link drops")
    chaos.add_argument("--subquery-deadline", type=float, default=None,
                       help="per-subquery deadline in simulated seconds")
    chaos.add_argument("--log", action="store_true",
                       help="print the chaos timeline")

    explain = sub.add_parser(
        "explain",
        help="EXPLAIN queries: routing, fan-out, and the attrition funnel",
    )
    explain.add_argument("archive", help="saved .npz deployment")
    explain.add_argument("fasta", help="query FASTA file")
    explain.add_argument("--alphabet", choices=("dna", "protein"),
                         default=None, help="query alphabet (default: index's)")
    explain.add_argument("--json", action="store_true", dest="as_json",
                         help="print structured plans as JSON instead")
    explain.add_argument("--k", type=int, default=4)
    explain.add_argument("--n", type=int, default=8)
    explain.add_argument("--identity", type=float, default=0.5, dest="i")
    explain.add_argument("--c-score", type=float, default=0.5, dest="c")
    explain.add_argument("--matrix", default="BLOSUM62", dest="M")
    explain.add_argument("--evalue", type=float, default=10.0, dest="E")

    call = sub.add_parser("call", help="call a running gateway")
    call.add_argument("op",
                      choices=("query", "explain", "stats", "health",
                               "metrics", "alerts", "scale", "scrub",
                               "recover", "analyze", "profile"))
    call.add_argument("--host", default="127.0.0.1")
    call.add_argument("--port", type=int, default=7766)
    call.add_argument("--seq", default=None,
                      help="query residues (op=query)")
    call.add_argument("--fasta", default=None,
                      help="query every record of this FASTA file (op=query)")
    call.add_argument("--alphabet", choices=("dna", "protein"),
                      default="protein", help="alphabet for --fasta parsing")
    call.add_argument("--deadline", type=float, default=None,
                      help="per-request deadline in seconds")
    call.add_argument("--top", type=int, default=5,
                      help="alignments to return per query")
    call.add_argument("--timeout", type=float, default=30.0)
    call.add_argument("--retries", type=int, default=3)
    call.add_argument("--node", default=None,
                      help="node to restart (op=recover; default: all dead)")
    call.add_argument("--no-heal", action="store_true",
                      help="detect without healing (op=scrub)")
    call.add_argument("--action", choices=("start", "snapshot", "stop"),
                      default="snapshot",
                      help="profiler lifecycle action (op=profile)")
    call.add_argument("--hz", type=float, default=None,
                      help="sampling rate on profiler start (op=profile)")

    watch = sub.add_parser(
        "watch",
        help="health dashboard: rolling SLIs, burn-rate alerts, event tail",
    )
    watch.add_argument("--gateway", action="store_true",
                       help="poll a running gateway's ALERTS op instead of "
                            "running the headless chaos scenario")
    watch.add_argument("--host", default="127.0.0.1")
    watch.add_argument("--port", type=int, default=7766)
    watch.add_argument("--timeout", type=float, default=30.0)
    watch.add_argument("--once", action="store_true",
                       help="render one frame and exit (CI mode)")
    watch.add_argument("--interval", type=float, default=2.0,
                       help="refresh period in seconds (live mode)")
    watch.add_argument("--format", choices=("text", "json"), default="text")
    watch.add_argument("--replication", type=int, default=1,
                       help="scenario mode: copies per block (1 makes a "
                            "kill visible to the SLOs)")
    watch.add_argument("--groups", type=int, default=3)
    watch.add_argument("--group-size", type=int, default=3)
    watch.add_argument("--probes", type=int, default=6)
    watch.add_argument("--seed", type=int, default=None,
                       help="scenario seed (default: $CHAOS_SEED or 0)")
    watch.add_argument("--subquery-deadline", type=float, default=None)
    watch.add_argument("--event-log", default=None,
                       help="write the run's event log JSON here (artifact)")
    watch.add_argument("--assert-cycle", default=None, metavar="SLO",
                       help="exit nonzero unless SLO fired and then "
                            "resolved during the run (CI smoke assertion)")

    autoscale = sub.add_parser(
        "autoscale",
        help="drive the elastic control loop through a traffic scenario",
    )
    autoscale.add_argument("--scenario", choices=("flash", "diurnal"),
                           default="flash",
                           help="flash: calm/burst/tail overload; diurnal: "
                                "two sinusoidal day/night cycles")
    autoscale.add_argument("--seed", type=int, default=None,
                           help="scenario seed (default: $CHAOS_SEED or 0)")
    autoscale.add_argument("--no-controller", action="store_true",
                           help="run the same traffic without the scaler "
                                "(the ablation baseline)")
    autoscale.add_argument("--format", choices=("text", "json"),
                           default="text")
    autoscale.add_argument("--event-log", default=None,
                           help="write the run's event log JSON here "
                                "(artifact)")
    autoscale.add_argument("--bench-out", default=None,
                           help="write a BENCH-schema summary JSON here "
                                "(artifact)")
    autoscale.add_argument("--assert-loop", action="store_true",
                           help="exit nonzero unless an alert fired, the "
                                "scaler acted, and the alert resolved "
                                "(CI smoke assertion)")

    recover = sub.add_parser(
        "recover",
        help="crash-recovery experiment: crash nodes mid-batch, restart "
             "from snapshot+WAL, prove answers byte-identical to an "
             "uncrashed control",
    )
    recover.add_argument("--replication", type=int, default=2)
    recover.add_argument("--groups", type=int, default=3)
    recover.add_argument("--group-size", type=int, default=3)
    recover.add_argument("--sequences", type=int, default=18,
                         help="synthetic reference sequences")
    recover.add_argument("--probes", type=int, default=6)
    recover.add_argument("--seed", type=int, default=None,
                         help="scenario seed (default: $CHAOS_SEED or 0)")
    recover.add_argument("--format", choices=("text", "json"),
                         default="text")
    recover.add_argument("--event-log", default=None,
                         help="write the run's event log JSON here "
                              "(artifact)")
    recover.add_argument("--log", action="store_true",
                         help="print the chaos timeline")
    recover.add_argument("--assert-identical", action="store_true",
                         help="exit nonzero unless the recovered cluster "
                              "answered byte-identically to the control "
                              "(CI smoke assertion)")

    scrub = sub.add_parser(
        "scrub",
        help="anti-entropy experiment: inject silent bit rot, scrub it "
             "out, prove no query served rotted bytes",
    )
    scrub.add_argument("--replication", type=int, default=2)
    scrub.add_argument("--groups", type=int, default=2)
    scrub.add_argument("--group-size", type=int, default=3)
    scrub.add_argument("--sequences", type=int, default=12,
                       help="synthetic reference sequences")
    scrub.add_argument("--probes", type=int, default=6)
    scrub.add_argument("--flips", type=int, default=2,
                       help="bit flips injected into durable blocks")
    scrub.add_argument("--seed", type=int, default=None,
                       help="scenario seed (default: $CHAOS_SEED or 0)")
    scrub.add_argument("--format", choices=("text", "json"), default="text")
    scrub.add_argument("--event-log", default=None,
                       help="write the run's event log JSON here (artifact)")
    scrub.add_argument("--log", action="store_true",
                       help="print the chaos timeline")
    scrub.add_argument("--assert-resolved", action="store_true",
                       help="exit nonzero unless every flip was detected, "
                            "healed, and verified clean with zero wrong "
                            "answers (CI smoke assertion)")

    tier = sub.add_parser(
        "tier",
        help="tiered-storage experiment: spill to compressed block files, "
             "prove cold answers byte-identical to all-RAM, measure "
             "capacity headroom",
    )
    tier.add_argument("--families", type=int, default=30,
                      help="synthetic reference families")
    tier.add_argument("--members", type=int, default=5,
                      help="members per family")
    tier.add_argument("--cache-fraction", type=float, default=0.10,
                      help="cold-phase RAM cache budget as a fraction of "
                           "the raw corpus bytes")
    tier.add_argument("--seed", type=int, default=None,
                      help="scenario seed (default: $CHAOS_SEED or 0)")
    tier.add_argument("--format", choices=("text", "json"), default="text")
    tier.add_argument("--bench-out", default=None,
                      help="write a BENCH-schema summary JSON here "
                           "(artifact)")
    tier.add_argument("--assert-equivalent", action="store_true",
                      help="exit nonzero unless every tiered phase answered "
                           "byte-identically to the all-RAM baseline "
                           "(CI smoke assertion)")

    trace = sub.add_parser(
        "trace",
        help="profile queries: span trees plus a Chrome trace JSON",
    )
    trace.add_argument("archive", help="saved .npz deployment")
    trace.add_argument("fasta", help="query FASTA file")
    trace.add_argument("--alphabet", choices=("dna", "protein"),
                       default=None, help="query alphabet (default: index's)")
    trace.add_argument("--out", default=None,
                       help="write Chrome trace-event JSON here")
    trace.add_argument("--k", type=int, default=4)
    trace.add_argument("--n", type=int, default=8)
    trace.add_argument("--identity", type=float, default=0.5, dest="i")
    trace.add_argument("--c-score", type=float, default=0.5, dest="c")
    trace.add_argument("--matrix", default="BLOSUM62", dest="M")
    trace.add_argument("--evalue", type=float, default=10.0, dest="E")
    trace.add_argument("--metrics", action="store_true",
                       help="also print the Prometheus metrics exposition")

    analyze = sub.add_parser(
        "analyze",
        help="trace analytics: cluster queries into span-shape families "
             "and profile the critical path",
    )
    analyze.add_argument("archive", help="saved .npz deployment")
    analyze.add_argument("fasta", help="query FASTA file")
    analyze.add_argument("--alphabet", choices=("dna", "protein"),
                         default=None,
                         help="query alphabet (default: index's)")
    analyze.add_argument("--json", action="store_true", dest="as_json",
                         help="print the family/critical-path summary as "
                              "JSON instead")
    analyze.add_argument("--k", type=int, default=4)
    analyze.add_argument("--n", type=int, default=8)
    analyze.add_argument("--identity", type=float, default=0.5, dest="i")
    analyze.add_argument("--c-score", type=float, default=0.5, dest="c")
    analyze.add_argument("--matrix", default="BLOSUM62", dest="M")
    analyze.add_argument("--evalue", type=float, default=10.0, dest="E")

    explore = sub.add_parser(
        "explore",
        help="sweep a scenario grid (traffic x workload x chaos x "
             "storage) and write a ranked REPORT.md explaining each slow "
             "cell by its trace families",
    )
    explore.add_argument("--grid", choices=("small", "medium", "full"),
                         default="small")
    explore.add_argument("--seed", type=int, default=None,
                         help="grid seed (default: $CHAOS_SEED or 0)")
    explore.add_argument("--queries", type=int, default=6,
                         help="queries per cell")
    explore.add_argument("--out", default=None,
                         help="directory for REPORT.md plus the per-cell "
                              "BENCH-schema JSON artifacts")
    explore.add_argument("--format", choices=("text", "json"),
                         default="text")
    explore.add_argument("--assert-families", action="store_true",
                         help="exit nonzero unless every cell named at "
                              "least one slow-query family with exemplar "
                              "trace ids (CI smoke assertion)")

    profile = sub.add_parser(
        "profile",
        help="seeded profiling capture: sampled wall-clock stacks tagged "
             "with span stages plus the deterministic cost profile",
    )
    profile.add_argument("--seed", type=int, default=None,
                         help="workload seed (default: $CHAOS_SEED or 0)")
    profile.add_argument("--hz", type=float, default=67.0,
                         help="sampling rate for the wall-clock profiler")
    profile.add_argument("--queries", type=int, default=2,
                         help="queries per sweep length")
    profile.add_argument("--out", default=None,
                         help="directory for PROFILE.json (deterministic "
                              "cost side), profile.folded, and "
                              "profile.speedscope.json")
    profile.add_argument("--top", type=int, default=10,
                         help="rows in the printed hotspot tables")
    profile.add_argument("--json", action="store_true", dest="as_json",
                         help="print the full profile snapshot as JSON")

    return parser


def _cmd_index(args: argparse.Namespace, out) -> int:
    database = read_fasta(args.fasta, args.alphabet)
    config = suggest_config(database, node_budget=args.nodes, seed=args.seed)
    overrides = {}
    if args.groups is not None:
        overrides["group_count"] = args.groups
    if args.group_size is not None:
        overrides["group_size"] = args.group_size
    if args.segment_length is not None:
        overrides["segment_length"] = args.segment_length
    if args.replication != 1:
        overrides["replication"] = args.replication
    if overrides:
        import dataclasses

        config = dataclasses.replace(config, **overrides)
    mendel = Mendel.build(database, config)
    save_index(mendel.index, args.out)
    print(
        f"indexed {mendel.block_count} blocks from {len(database)} sequences "
        f"({database.total_residues} residues) onto {mendel.node_count} nodes; "
        f"saved to {args.out}",
        file=out,
    )
    return 0


def _cmd_info(args: argparse.Namespace, out) -> int:
    index = load_index(args.archive)
    config = index.config
    print(f"alphabet:        {index.alphabet.name}", file=out)
    print(f"sequences:       {len(index.database)}", file=out)
    print(f"residues:        {index.database.total_residues}", file=out)
    print(f"blocks:          {len(index.store)}", file=out)
    print(
        f"cluster:         {config.group_count} groups x {config.group_size} "
        f"nodes (replication {config.replication})",
        file=out,
    )
    print(f"segment length:  {config.segment_length}", file=out)
    fractions = sorted(index.load_fractions().values())
    print(
        f"load per node:   min {100 * fractions[0]:.2f}% / "
        f"max {100 * fractions[-1]:.2f}%",
        file=out,
    )
    tier = index.tier_report()
    print(f"bytes on disk:   {tier['bytes_on_disk']}", file=out)
    print(f"compression:     {tier['compression_ratio']:.3f}x", file=out)
    print(
        f"resident:        {100 * tier['resident_fraction']:.2f}%",
        file=out,
    )
    if getattr(args, "balance", False):
        from repro.cluster.balance import audit

        print(file=out)
        print(audit(index).render(), file=out)
    return 0


def _cmd_query(args: argparse.Namespace, out) -> int:
    index = load_index(args.archive)
    alphabet = args.alphabet or index.alphabet.name
    queries = read_fasta(args.fasta, alphabet)
    engine = QueryEngine(index)
    params = QueryParams(k=args.k, n=args.n, i=args.i, c=args.c,
                         M=args.M, E=args.E)
    mendel = Mendel(index=index, engine=engine)
    for record in queries:
        if alphabet == "dna" and index.alphabet.name == "protein":
            report = mendel.query_translated(record, params)
        else:
            report = engine.run(record, params)
        print(
            f"# {record.seq_id}: {len(report.alignments)} alignments, "
            f"turnaround {report.stats.turnaround * 1e3:.1f} ms",
            file=out,
        )
        for alignment in report.alignments[: args.top]:
            print(alignment.brief(), file=out)
    return 0


def _cmd_bench(args: argparse.Namespace, out) -> int:
    if args.regress:
        return _cmd_bench_regress(args, out)
    if args.figure == "diff":
        return _cmd_bench_diff(args, out)
    if args.figure is None:
        print("bench: name a figure, 'diff', or pass --regress",
              file=sys.stderr)
        return 2
    if args.figure == "all":
        from repro.bench.report import generate_report

        text = generate_report(max_rows=12)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"report written to {args.out}", file=out)
        else:
            print(text, file=out)
        return 0
    result = _FIGURES[args.figure]()
    print(format_table(result.rows, title=result.name), file=out)
    if result.meta:
        print(f"meta: {result.meta}", file=out)
    failures = _figures.shape_failures(result)
    if failures:
        for failure in failures:
            print(f"SHAPE FAIL [{result.name}]: {failure}", file=sys.stderr)
        return 1
    print(f"shape OK: {result.name} reproduces the paper's claims", file=out)
    return 0


def _cmd_bench_regress(args: argparse.Namespace, out) -> int:
    from repro.bench import regress

    from repro.obs.profile import (
        CostProfiler,
        install_cost_profiler,
        uninstall_cost_profiler,
    )

    cost = None
    if getattr(args, "profile", False):
        cost = install_cost_profiler(CostProfiler())
    baseline = regress.latest_run(args.bench_dir)
    try:
        report = regress.run_suite(seed=args.seed)
    finally:
        if cost is not None:
            uninstall_cost_profiler(cost)
    path = regress.write_report(report, args.bench_dir)
    print(regress.format_report(report), file=out)
    print(f"\nwrote {path}", file=out)
    if cost is not None:
        from repro.bench import attribution

        profile_path = attribution.write_profile(
            attribution.profile_report(cost, seed=args.seed),
            attribution.profile_path_for(path),
        )
        print(f"wrote {profile_path}", file=out)
    if baseline is None:
        print("no previous BENCH_*.json: baseline established", file=out)
        return 0
    _, baseline_path = baseline
    try:
        regressions = regress.compare(report, regress.load_report(baseline_path))
    except regress.SchemaMismatch as exc:
        print(f"baseline skipped: {exc}", file=out)
        return 0
    print(regress.format_comparison(regressions, baseline_path), file=out)
    return 1 if regressions else 0


def _cmd_bench_diff(args: argparse.Namespace, out) -> int:
    from pathlib import Path

    from repro.bench import attribution, regress

    if len(args.files) != 2:
        print("bench diff needs exactly two BENCH files: "
              "repro bench diff A.json B.json", file=sys.stderr)
        return 2
    path_a, path_b = Path(args.files[0]), Path(args.files[1])
    try:
        bench_a = regress.load_report(path_a)
        bench_b = regress.load_report(path_b)
    except (OSError, ValueError) as exc:
        print(f"bench diff: {exc}", file=sys.stderr)
        return 2
    profile_a = attribution.load_profile(
        args.profile_a or attribution.profile_path_for(path_a)
    )
    profile_b = attribution.load_profile(
        args.profile_b or attribution.profile_path_for(path_b)
    )
    result = attribution.diff(
        bench_a, bench_b,
        profile_a=profile_a, profile_b=profile_b,
        label_a=path_a.name, label_b=path_b.name,
    )
    out_path = Path(args.out or "ATTRIBUTION.md")
    attribution.write_attribution(result, out_path)
    profiled = "with" if result["have_profiles"] else "without"
    print(
        f"wrote {out_path}: {len(result['metrics'])} metric delta(s) "
        f"ranked, {profiled} cost-profile attribution",
        file=out,
    )
    return 0


def _cmd_profile(args: argparse.Namespace, out) -> int:
    import json
    import os

    from repro.bench.workloads import (
        FamilySpec,
        generate_family_database,
        generate_read_queries,
    )
    from repro.core.params import MendelConfig
    from repro.obs.profile import Profiler, write_profile_artifacts
    from repro.obs.trace import TraceContext

    seed = (
        args.seed if args.seed is not None
        else int(os.environ.get("CHAOS_SEED", "0"))
    )
    profiler = Profiler(hz=args.hz)
    profiler.start()
    try:
        spec = FamilySpec(families=30, members_per_family=4, length=150)
        config = MendelConfig(group_count=4, group_size=3, seed=seed)
        database = generate_family_database(spec, rng=seed)
        mendel = Mendel.build(database, config)
        params = QueryParams(k=8, n=6, i=0.8)
        for length in (300, 600, 900):
            queries = generate_read_queries(
                database, args.queries, length, rng=seed + length,
                id_prefix=f"profile-{length}",
            )
            for record in queries:
                mendel.query(record, params, trace_ctx=TraceContext())
    finally:
        snap = profiler.stop()
    if args.as_json:
        print(json.dumps(snap, indent=2, sort_keys=True), file=out)
    else:
        sampling = snap["sampling"]
        print(
            f"profile capture (seed {seed}, {sampling['hz']:g} Hz): "
            f"{sampling['samples']} stacks over "
            f"{sampling['elapsed_s']:.2f}s, sampler overhead "
            f"{100 * sampling['overhead']:.2f}%",
            file=out,
        )
        rows = [
            {"stage": row["stage"], "samples": row["samples"],
             "share": f"{100 * row['share']:.1f}%"}
            for row in sampling["stages"][: args.top]
        ]
        if rows:
            print(format_table(rows, title="sampled stage shares"), file=out)
        rows = [
            {"function": row["function"], "self": row["self_samples"],
             "share": f"{100 * row['share']:.1f}%"}
            for row in sampling["top_functions"][: args.top]
        ]
        if rows:
            print(format_table(rows, title="top functions (self samples)"),
                  file=out)
        totals = snap["cost"]["totals"]
        rows = [{"counter": name, "total": value}
                for name, value in sorted(totals.items())]
        if rows:
            print(format_table(rows, title="deterministic cost totals"),
                  file=out)
    if args.out:
        paths = write_profile_artifacts(args.out, profiler)
        for kind in sorted(paths):
            print(f"wrote {paths[kind]}", file=out)
    return 0


def _cmd_serve(args: argparse.Namespace, out) -> int:
    import asyncio

    from repro.serve.server import QueryServer

    index = load_index(args.archive)
    mendel = Mendel(index=index, engine=QueryEngine(index))
    service = mendel.service(
        max_workers=args.workers,
        max_pending=args.max_pending,
        batch_window=args.batch_window,
        max_batch=args.max_batch,
        cache_capacity=args.cache_size,
        cache_ttl=args.cache_ttl,
        tracing=not args.no_tracing,
        slow_query_threshold=args.slow_query_threshold,
        slow_log_size=args.slow_log_size,
    )
    if args.autoscale:
        service.enable_autoscaler()

    async def _run() -> None:
        server = QueryServer(service, host=args.host, port=args.port)
        await server.start()
        print(
            f"serving {len(index.database)} sequences "
            f"({len(index.store)} blocks) on {server.host}:{server.port} "
            f"[workers={args.workers} max_pending={args.max_pending} "
            f"cache={args.cache_size}]",
            file=out,
            flush=True,
        )
        await server.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("shutting down", file=out)
    finally:
        service.close()
    return 0


def _cmd_chaos(args: argparse.Namespace, out) -> int:
    from repro.faults.scenario import run_kill_recover_scenario

    result = run_kill_recover_scenario(
        replication=args.replication,
        group_count=args.groups,
        group_size=args.group_size,
        database_size=args.sequences,
        probe_count=args.probes,
        seed=args.seed,
        subquery_deadline=args.subquery_deadline,
    )
    rows = [{"metric": key, "value": value}
            for key, value in result.summary_rows()]
    print(format_table(rows, title="kill one node per group, then recover"),
          file=out)
    per_query = [
        {
            "query": report.query_id,
            "coverage": f"{report.coverage:.3f}",
            "degraded": str(report.degraded),
            "failed_nodes": ",".join(report.failed_nodes) or "-",
            "best_hit": (report.best().subject_id
                         if report.best() is not None else "-"),
        }
        for report in result.reports
    ]
    print(format_table(per_query, title="per-query reports"), file=out)
    if args.log:
        for line in result.chaos_log:
            print(line, file=out)
    return 0


def _cmd_explain(args: argparse.Namespace, out) -> int:
    import json

    index = load_index(args.archive)
    alphabet = args.alphabet or index.alphabet.name
    queries = read_fasta(args.fasta, alphabet)
    mendel = Mendel(index=index, engine=QueryEngine(index))
    params = QueryParams(k=args.k, n=args.n, i=args.i, c=args.c,
                         M=args.M, E=args.E)
    ok = True
    for record in queries:
        plan = mendel.explain(record, params)
        if args.as_json:
            print(json.dumps(plan.to_dict(), indent=2, sort_keys=True),
                  file=out)
        else:
            print(plan.render(), file=out)
            print(file=out)
        ok = ok and plan.is_monotone()
    if not ok:
        print("FAIL: funnel stage counts are not monotone non-increasing",
              file=sys.stderr)
        return 1
    return 0


def _cmd_call(args: argparse.Namespace, out) -> int:
    import json

    from repro.serve.client import ServeClient
    from repro.serve.errors import ServeError

    client = ServeClient(
        args.host, args.port, timeout=args.timeout, retries=args.retries
    )
    try:
        if args.op == "query":
            if (args.seq is None) == (args.fasta is None):
                print("op=query needs exactly one of --seq / --fasta",
                      file=sys.stderr)
                return 2
            if args.seq is not None:
                requests = [("query", args.seq)]
            else:
                requests = [
                    (record.seq_id, record.text)
                    for record in read_fasta(args.fasta, args.alphabet)
                ]
            ok = True
            for query_id, seq in requests:
                response = client.query(
                    seq,
                    query_id=query_id,
                    deadline=args.deadline,
                    top=args.top,
                )
                print(json.dumps(response, indent=2, sort_keys=True), file=out)
                ok = ok and bool(response.get("ok"))
            return 0 if ok else 1
        if args.op == "explain":
            if args.seq is None:
                print("op=explain needs --seq", file=sys.stderr)
                return 2
            response = client.explain(args.seq)
            if response.get("ok"):
                print(response.get("rendered", ""), file=out)
                return 0
            print(json.dumps(response, indent=2, sort_keys=True), file=out)
            return 1
        if args.op == "metrics":
            response = client.metrics()
            if response.get("ok"):
                print(response.get("metrics", ""), file=out, end="")
                return 0
            print(json.dumps(response, indent=2, sort_keys=True), file=out)
            return 1
        if args.op == "alerts":
            response = client.alerts()
        elif args.op == "analyze":
            response = client.analyze()
        elif args.op == "scale":
            response = client.scale()
        elif args.op == "profile":
            response = client.profile(action=args.action, hz=args.hz)
        elif args.op == "scrub":
            response = client.scrub(heal=not args.no_heal)
        elif args.op == "recover":
            response = client.recover(node=args.node)
        elif args.op == "stats":
            response = client.stats()
        else:
            response = client.health()
        print(json.dumps(response, indent=2, sort_keys=True), file=out)
        return 0 if response.get("ok") else 1
    except ServeError as exc:
        print(json.dumps({"ok": False, **exc.to_dict()}, indent=2), file=out)
        return 1
    finally:
        client.close()


def _cmd_watch(args: argparse.Namespace, out) -> int:
    import json
    import os

    from repro.obs.dashboard import render_frame

    if args.gateway:
        return _watch_gateway(args, out)

    # Headless scenario mode: run the canonical kill/recover experiment
    # with a live monitor and render what it saw — the CI smoke path.
    from repro.faults.scenario import run_kill_recover_scenario

    seed = (
        args.seed if args.seed is not None
        else int(os.environ.get("CHAOS_SEED", "0"))
    )
    result = run_kill_recover_scenario(
        replication=args.replication,
        group_count=args.groups,
        group_size=args.group_size,
        probe_count=args.probes,
        seed=seed,
        subquery_deadline=args.subquery_deadline,
    )
    monitor = result.monitor
    frame = monitor.snapshot()
    frame["firing"] = monitor.alerts_firing()
    frame["seed"] = seed
    if args.event_log:
        with open(args.event_log, "w", encoding="utf-8") as handle:
            json.dump(monitor.events.to_dicts(), handle, indent=2,
                      sort_keys=True)
    if args.format == "json":
        print(json.dumps(frame, indent=2, sort_keys=True), file=out)
    else:
        print(render_frame(frame), file=out)
    if args.assert_cycle:
        fired = any(
            t.slo == args.assert_cycle and t.to in ("warning", "critical")
            for t in monitor.slo_engine.transitions
        )
        resolved = any(
            t.slo == args.assert_cycle and t.to == "resolved"
            for t in monitor.slo_engine.transitions
        )
        if not (fired and resolved):
            print(
                f"ASSERT FAIL: SLO {args.assert_cycle!r} "
                f"fired={fired} resolved={resolved}",
                file=sys.stderr,
            )
            return 1
    return 0


def _watch_gateway(args: argparse.Namespace, out) -> int:
    import json
    import time as _time

    from repro.obs.dashboard import render_frame
    from repro.serve.client import ServeClient
    from repro.serve.errors import ServeError

    client = ServeClient(args.host, args.port, timeout=args.timeout)
    try:
        while True:
            response = client.alerts()
            if not response.get("ok"):
                print(json.dumps(response, indent=2, sort_keys=True),
                      file=out)
                return 1
            frame = {k: v for k, v in response.items()
                     if k not in ("id", "ok")}
            if args.format == "json":
                print(json.dumps(frame, indent=2, sort_keys=True), file=out)
            else:
                print(render_frame(frame), file=out)
            if args.once:
                return 0
            _time.sleep(args.interval)
    except ServeError as exc:
        print(json.dumps({"ok": False, **exc.to_dict()}, indent=2), file=out)
        return 1
    except KeyboardInterrupt:
        return 0
    finally:
        client.close()


def _cmd_autoscale(args: argparse.Namespace, out) -> int:
    import json
    import os
    import platform

    from repro.scale import (
        run_diurnal_scenario,
        run_flash_crowd_scenario,
    )

    seed = (
        args.seed if args.seed is not None
        else int(os.environ.get("CHAOS_SEED", "0"))
    )
    runner = (
        run_flash_crowd_scenario if args.scenario == "flash"
        else run_diurnal_scenario
    )
    result = runner(seed=seed, controller=not args.no_controller)

    if args.event_log:
        with open(args.event_log, "w", encoding="utf-8") as handle:
            json.dump(result.event_log.to_dicts(), handle, indent=2,
                      sort_keys=True)
    if args.bench_out:
        degraded = sum(1 for r in result.reports if r.degraded)
        bench = {
            "python": platform.python_version(),
            "schema_version": 1,
            "seed": seed,
            "suite": "repro-autoscale",
            "workloads": {
                f"autoscale-{result.scenario}": {
                    "metrics": {
                        "loop_closed": {
                            "direction": "stable", "tolerance": 0.0,
                            "unit": "bool",
                            "value": 1.0 if result.loop_closed() else 0.0,
                        },
                        "scale_actions": {
                            "direction": "stable", "tolerance": 0.0,
                            "unit": "count",
                            "value": float(len(result.actions)),
                        },
                        "degraded_queries": {
                            "direction": "lower", "tolerance": 0.0,
                            "unit": "count", "value": float(degraded),
                        },
                        "mean_turnaround": {
                            "direction": "lower", "tolerance": 0.25,
                            "unit": "s", "value": result.mean_turnaround,
                        },
                    },
                },
            },
        }
        with open(args.bench_out, "w", encoding="utf-8") as handle:
            json.dump(bench, handle, indent=2, sort_keys=True)

    if args.format == "json":
        frame = {
            "scenario": result.scenario,
            "seed": seed,
            "controller": result.controller_enabled,
            "loop_closed": result.loop_closed(),
            "fired_at": result.fired_at(),
            "resolved_at": result.resolved_at(),
            "actions": result.actions,
            "topology_events": result.topology_events,
            "alert_transitions": result.alert_transitions,
            "final_topology": result.final_topology,
            "mean_turnaround": result.mean_turnaround,
            "max_turnaround": result.p_max_turnaround,
        }
        print(json.dumps(frame, indent=2, sort_keys=True), file=out)
    else:
        width = max(len(k) for k, _ in result.summary_rows())
        for key, value in result.summary_rows():
            print(f"{key:<{width}}  {value}", file=out)
        if result.actions:
            print("", file=out)
            print("topology actions:", file=out)
            for action in result.actions:
                extra = f" -> {action['target']}" if action.get("target") else ""
                print(
                    f"  t={action['at'] * 1e3:9.3f} ms  "
                    f"{action['action']:<12} {action['group']}{extra}  "
                    f"[{action['cause']}]",
                    file=out,
                )

    if args.assert_loop and not result.loop_closed():
        print(
            f"ASSERT FAIL: autoscale loop did not close "
            f"(fired={result.fired_at()} resolved={result.resolved_at()} "
            f"actions={len(result.actions)})",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_tier(args: argparse.Namespace, out) -> int:
    import json
    import os
    import platform

    from repro.tier.scenario import run_tier_scenario

    seed = (
        args.seed if args.seed is not None
        else int(os.environ.get("CHAOS_SEED", "0"))
    )
    report = run_tier_scenario(
        seed=seed,
        families=args.families,
        members_per_family=args.members,
        cache_fraction=args.cache_fraction,
    )

    warm_ms = report["warm"]["sim_turnaround_ms"]
    cold_ms = report["cold"]["sim_turnaround_ms"]
    if args.bench_out:
        bench = {
            "python": platform.python_version(),
            "schema_version": 1,
            "seed": seed,
            "suite": "repro-tier",
            "workloads": {
                "cold_vs_warm_query": {
                    "metrics": {
                        "result_equivalent": {
                            "direction": "stable", "tolerance": 0.0,
                            "unit": "bool",
                            "value": 1.0 if report["equivalent"] else 0.0,
                        },
                        "capacity_x": {
                            "direction": "higher", "tolerance": 0.05,
                            "unit": "x",
                            "value": report["capacity"]["capacity_x"],
                        },
                        "compression_ratio": {
                            "direction": "higher", "tolerance": 0.1,
                            "unit": "x",
                            "value": report["tier"]["compression_ratio"],
                        },
                        "bytes_on_disk": {
                            "direction": "stable", "tolerance": 0.02,
                            "unit": "bytes",
                            "value": float(report["tier"]["bytes_on_disk"]),
                        },
                        "sim_turnaround_warm_ms": {
                            "direction": "lower", "tolerance": 0.05,
                            "unit": "ms",
                            "value": sum(warm_ms) / len(warm_ms),
                        },
                        "sim_turnaround_cold_ms": {
                            "direction": "lower", "tolerance": 0.05,
                            "unit": "ms",
                            "value": sum(cold_ms) / len(cold_ms),
                        },
                        "wall_s": {
                            "direction": "lower", "tolerance": 0.9,
                            "unit": "s",
                            "value": report["warm"]["wall_s"]
                            + report["cold"]["wall_s"],
                        },
                    },
                },
            },
        }
        with open(args.bench_out, "w", encoding="utf-8") as handle:
            json.dump(bench, handle, indent=2, sort_keys=True)

    if args.format == "json":
        print(json.dumps(report, indent=2, sort_keys=True), file=out)
    else:
        cache = report["cold"]["cache"]
        rows = [
            ("blocks", f"{report['blocks']}"),
            ("nodes", f"{report['nodes']}"),
            ("raw bytes", f"{report['raw_bytes']}"),
            ("bytes on disk", f"{report['tier']['bytes_on_disk']}"),
            ("compression", f"{report['tier']['compression_ratio']:.3f}x"),
            ("resident",
             f"{100 * report['tier']['resident_fraction']:.2f}%"),
            ("cold cache", f"{report['cold']['cache_bytes']} bytes "
                           f"(hits {cache['hits']:.0f} / misses "
                           f"{cache['misses']:.0f} / evictions "
                           f"{cache['evictions']:.0f})"),
            ("warm sim ms", " / ".join(f"{v:.1f}" for v in warm_ms)),
            ("cold sim ms", " / ".join(f"{v:.1f}" for v in cold_ms)),
            ("warm2 sim ms", f"{report['warm2_sim_turnaround_ms']:.1f}"),
            ("capacity_x", f"{report['capacity']['capacity_x']:.1f} "
                           f"(cache {report['capacity']['cache_bytes']} B, "
                           f"pinned {report['capacity']['pinned_bytes']} B, "
                           f"summaries "
                           f"{report['capacity']['summary_bytes']} B)"),
            ("equivalent", str(report["equivalent"])),
        ]
        width = max(len(k) for k, _ in rows)
        for key, value in rows:
            print(f"{key:<{width}}  {value}", file=out)

    if args.assert_equivalent and not report["equivalent"]:
        failed = [k for k, ok in report["phases_equal"].items() if not ok]
        print(
            f"ASSERT FAIL: tiered phases diverged from the all-RAM "
            f"baseline: {', '.join(failed)}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_recover(args: argparse.Namespace, out) -> int:
    import json
    import os

    from repro.store.scenario import run_durability_scenario

    seed = (
        args.seed if args.seed is not None
        else int(os.environ.get("CHAOS_SEED", "0"))
    )
    result = run_durability_scenario(
        replication=args.replication,
        group_count=args.groups,
        group_size=args.group_size,
        database_size=args.sequences,
        probe_count=args.probes,
        seed=seed,
    )
    if args.event_log and result.monitor is not None:
        with open(args.event_log, "w", encoding="utf-8") as handle:
            json.dump(result.monitor.events.to_dicts(), handle, indent=2,
                      sort_keys=True)
    if args.format == "json":
        frame = {
            "seed": seed,
            "victims": result.victims,
            "identical": result.identical,
            "mismatched_queries": result.mismatched_queries,
            "blocks_recovered": result.blocks_recovered,
            "recovery": result.recovery,
            "recall": result.recall,
            "control_recall": result.control_recall,
        }
        print(json.dumps(frame, indent=2, sort_keys=True), file=out)
    else:
        rows = [{"metric": key, "value": value}
                for key, value in result.summary_rows()]
        print(format_table(
            rows, title="crash, recover from snapshot+WAL, compare"),
            file=out)
    if args.log:
        for line in result.chaos_log:
            print(line, file=out)
    if args.assert_identical and not result.identical:
        print(
            f"ASSERT FAIL: recovered cluster diverged from control on "
            f"{len(result.mismatched_queries)} queries "
            f"({','.join(result.mismatched_queries)})",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_scrub(args: argparse.Namespace, out) -> int:
    import json
    import os

    from repro.store.scenario import run_scrub_scenario

    seed = (
        args.seed if args.seed is not None
        else int(os.environ.get("CHAOS_SEED", "0"))
    )
    result = run_scrub_scenario(
        replication=args.replication,
        group_count=args.groups,
        group_size=args.group_size,
        database_size=args.sequences,
        probe_count=args.probes,
        flip_count=args.flips,
        seed=seed,
    )
    if args.event_log and result.monitor is not None:
        with open(args.event_log, "w", encoding="utf-8") as handle:
            json.dump(result.monitor.events.to_dicts(), handle, indent=2,
                      sort_keys=True)
    if args.format == "json":
        frame = {
            "seed": seed,
            "flips": [{"node": n, "block": b} for n, b in result.flips],
            "corruptions_detected": result.corruptions_detected,
            "heals_requested": result.heals_requested,
            "unhealed": result.unhealed,
            "wrong_answers": result.wrong_answers,
            "resolved": result.resolved,
            "event_chain": result.event_chain(),
            "recall": result.recall,
            "control_recall": result.control_recall,
        }
        print(json.dumps(frame, indent=2, sort_keys=True), file=out)
    else:
        rows = [{"metric": key, "value": value}
                for key, value in result.summary_rows()]
        print(format_table(
            rows, title="inject bit rot, scrub, heal, verify"), file=out)
    if args.log:
        for line in result.chaos_log:
            print(line, file=out)
    if args.assert_resolved:
        chain = result.event_chain()
        ordered = all(
            kind in chain for kind in
            ("bit_flip", "corruption_detected", "scrub_heal")
        ) and chain.index("bit_flip") < chain.index("corruption_detected")
        if not (result.resolved and ordered and not result.wrong_answers):
            print(
                f"ASSERT FAIL: scrub loop did not close "
                f"(detected={result.corruptions_detected}/"
                f"{len(result.flips)} heals={result.heals_requested} "
                f"unhealed={result.unhealed} "
                f"wrong_answers={len(result.wrong_answers)} "
                f"chain={chain})",
                file=sys.stderr,
            )
            return 1
    return 0


def _cmd_trace(args: argparse.Namespace, out) -> int:
    from repro.obs.export import prometheus_text, write_chrome_trace
    from repro.obs.metrics import default_registry
    from repro.obs.trace import TraceContext

    index = load_index(args.archive)
    alphabet = args.alphabet or index.alphabet.name
    queries = read_fasta(args.fasta, alphabet)
    mendel = Mendel(index=index, engine=QueryEngine(index))
    params = QueryParams(k=args.k, n=args.n, i=args.i, c=args.c,
                         M=args.M, E=args.E)
    roots = []
    for record in queries:
        ctx = TraceContext()
        report = mendel.query(record, params, trace_ctx=ctx)
        root = report.root_span
        roots.append(root)
        stage_ms = sum(s.sim_duration for s in root.children) * 1e3
        print(
            f"# {record.seq_id} [{report.trace_id}]: "
            f"{len(report.alignments)} alignments, "
            f"turnaround {report.stats.turnaround * 1e3:.3f} ms "
            f"(stages sum to {stage_ms:.3f} ms)",
            file=out,
        )
        print(root.format_tree(), file=out)
    if args.out:
        count = write_chrome_trace(args.out, roots)
        print(
            f"wrote {count} trace events for {len(roots)} queries to "
            f"{args.out}",
            file=out,
        )
    if args.metrics:
        print(prometheus_text(default_registry()), file=out, end="")
    return 0


def _cmd_analyze(args: argparse.Namespace, out) -> int:
    import json
    import math

    from repro.obs.analyze import (
        cluster_slow_queries,
        critical_path_table,
        trace_fingerprint,
    )
    from repro.obs.trace import TraceContext

    index = load_index(args.archive)
    alphabet = args.alphabet or index.alphabet.name
    queries = read_fasta(args.fasta, alphabet)
    mendel = Mendel(index=index, engine=QueryEngine(index))
    params = QueryParams(k=args.k, n=args.n, i=args.i, c=args.c,
                         M=args.M, E=args.E)
    entries, roots, tiling_ok = [], [], True
    for number, record in enumerate(queries):
        ctx = TraceContext(trace_id=f"analyze-q{number:03d}")
        report = mendel.query(record, params, trace_ctx=ctx)
        root = report.root_span
        roots.append(root)
        fingerprint = trace_fingerprint(root)
        steps = critical_path_table([root])
        self_total = math.fsum(row["self_ms"] for row in steps)
        turnaround_ms = report.stats.turnaround * 1e3
        if not math.isclose(self_total, turnaround_ms, rel_tol=1e-9,
                            abs_tol=1e-9):
            tiling_ok = False
        entries.append(
            {
                "query_id": report.query_id,
                "trace_id": report.trace_id,
                "turnaround_ms": round(turnaround_ms, 3),
                "coverage": report.coverage,
                "degraded": report.degraded,
                "fingerprint": fingerprint.to_dict(),
                "family": fingerprint.family,
                "critical_path": steps,
            }
        )
    families = cluster_slow_queries(entries)
    critical = critical_path_table(roots)
    if args.as_json:
        print(json.dumps(
            {
                "queries": len(entries),
                "families": families,
                "critical_path": critical,
                "critical_path_tiles_turnaround": tiling_ok,
            },
            indent=2, sort_keys=True,
        ), file=out)
        return 0 if tiling_ok else 1
    print(f"# {len(entries)} queries, {len(families)} trace families "
          f"(critical-path self-times "
          f"{'tile' if tiling_ok else 'DO NOT tile'} turnaround)",
          file=out)
    print("\n## families", file=out)
    for family in families:
        exemplars = ", ".join(family["exemplar_trace_ids"])
        print(
            f"{family['family']:<44} n={family['count']:<3} "
            f"share={family['share'] * 100:5.1f}% "
            f"mean={family['mean_turnaround_ms']:9.3f}ms "
            f"max={family['max_turnaround_ms']:9.3f}ms  e.g. {exemplars}",
            file=out,
        )
    print("\n## critical path", file=out)
    for row in critical:
        print(
            f"{row['stage']:<18} self={row['self_ms']:9.3f}ms "
            f"({row['share'] * 100:5.1f}%) total={row['total_ms']:9.3f}ms "
            f"steps={row['count']}",
            file=out,
        )
    return 0 if tiling_ok else 1


def _cmd_explore(args: argparse.Namespace, out) -> int:
    import json
    import os

    from repro.bench.explore import run_explore

    seed = (
        args.seed if args.seed is not None
        else int(os.environ.get("CHAOS_SEED", "0"))
    )
    result = run_explore(args.grid, seed=seed, query_count=args.queries)
    if args.out:
        paths = result.write(args.out)
        print(f"wrote {len(paths)} artifacts to {args.out}", file=out)
    if args.format == "json":
        print(json.dumps(
            {
                "grid": result.grid,
                "seed": result.seed,
                "cells": [
                    {
                        "cell": cell.name,
                        "mean_turnaround_ms": round(
                            cell.mean_turnaround_ms, 3
                        ),
                        "max_turnaround_ms": cell.max_turnaround_ms,
                        "slow_queries": len(cell.slow_entries),
                        "degraded": cell.degraded_count,
                        "families": cell.families,
                        "critical_path": cell.critical_path,
                    }
                    for cell in result.ranked()
                ],
            },
            indent=2, sort_keys=True,
        ), file=out)
    else:
        print(result.to_markdown(), file=out, end="")
    if args.assert_families:
        bad = [
            cell.name for cell in result.cells
            if not cell.families
            or not cell.families[0]["exemplar_trace_ids"]
        ]
        if bad:
            print(
                "ASSERT FAIL: cells without a named slow-query family: "
                + ", ".join(bad),
                file=sys.stderr,
            )
            return 1
        print(
            f"ASSERT OK: all {len(result.cells)} cells named slow-query "
            f"families with exemplar trace ids",
            file=out,
        )
    return 0


def main(argv: Sequence[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    handlers = {
        "index": _cmd_index,
        "info": _cmd_info,
        "query": _cmd_query,
        "bench": _cmd_bench,
        "serve": _cmd_serve,
        "chaos": _cmd_chaos,
        "call": _cmd_call,
        "watch": _cmd_watch,
        "autoscale": _cmd_autoscale,
        "recover": _cmd_recover,
        "scrub": _cmd_scrub,
        "tier": _cmd_tier,
        "trace": _cmd_trace,
        "explain": _cmd_explain,
        "analyze": _cmd_analyze,
        "explore": _cmd_explore,
        "profile": _cmd_profile,
    }
    return handlers[args.command](args, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
