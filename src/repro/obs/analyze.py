"""Trace analytics: span-shape fingerprints and critical-path profiling.

Three PRs of telemetry (span trees, funnel counters, the slow-query log)
record *what happened*; this module turns those records into *answers*:

* :func:`trace_fingerprint` canonicalizes one span tree into a shape
  signature — the ordered top-level stage names, fan-out bucketed into
  coarse bands (so "7 nodes" and "6 nodes" land in one family while "1
  node" and "30 nodes" do not), the dominant stage by sim-clock time, and
  the degraded / hedged / cold-read / failed annotations.  Two queries
  with the same fingerprint took the same *kind* of path through the
  cluster, whatever their residues were.
* :func:`cluster_slow_queries` groups slow-log entries by fingerprint
  signature into named **families** with exemplar trace ids — the unit
  the paper's Fig. 6 slow tail decomposes into.
* :func:`critical_path` walks the longest sim-clock chain of a span tree
  and attributes **self-time vs child-time** per span along it;
  :func:`critical_path_table` aggregates paths into a flamegraph-style
  per-stage table whose self-times tile turnaround *exactly* (the PR 4
  stage-span tiling invariant, extended below the stage level).

Everything here is pure and deterministic: same span trees in, byte-equal
tables out — the property the ``repro explore`` REPORT.md and the
CHAOS_SEED determinism tests rely on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.obs.trace import Span

#: slack when deciding whether a child's interval abuts the running chain —
#: sim stamps are exact rationals of float arithmetic, but summed charges
#: can disagree in the last ulp.
_EPS = 1e-12

#: fan-out bands: coarse enough that jitter does not split families, fine
#: enough that "one node" and "the whole cluster" never merge.
_BUCKETS = ((0, "0"), (1, "1"), (3, "2-3"), (7, "4-7"))


def fanout_bucket(count: int) -> str:
    """Bucket a fan-out count into the band label used by fingerprints."""
    for upper, label in _BUCKETS:
        if count <= upper:
            return label
    return "8+"


@dataclass(frozen=True)
class TraceFingerprint:
    """The canonical shape of one query's span tree.

    Hashable and order-stable: equal fingerprints mean "same family".
    """

    #: ordered names of the root's direct children (the pipeline stages)
    stages: tuple[str, ...]
    #: bucketed count of ``group:*`` spans contacted
    groups: str
    #: bucketed count of ``node:*`` spans (subqueries, retries included)
    nodes: str
    #: top-level stage holding the most sim-clock time
    dominant: str
    degraded: bool
    hedged: bool
    cold_read: bool
    failed: bool

    @property
    def signature(self) -> str:
        """Canonical one-line form; the clustering key."""
        flags = ",".join(self.flags) or "-"
        return (
            f"{'>'.join(self.stages)}|groups={self.groups}"
            f"|nodes={self.nodes}|dom={self.dominant}|flags={flags}"
        )

    @property
    def flags(self) -> tuple[str, ...]:
        out = []
        if self.degraded:
            out.append("degraded")
        if self.hedged:
            out.append("hedged")
        if self.cold_read:
            out.append("cold-read")
        if self.failed:
            out.append("failed-node")
        return tuple(out)

    @property
    def family(self) -> str:
        """Human-readable family name (``fanout-dominant/degraded+hedged``)."""
        name = f"{self.dominant or 'empty'}-dominant"
        if self.flags:
            name += "/" + "+".join(self.flags)
        return name

    def to_dict(self) -> dict:
        return {
            "stages": list(self.stages),
            "groups": self.groups,
            "nodes": self.nodes,
            "dominant": self.dominant,
            "degraded": self.degraded,
            "hedged": self.hedged,
            "cold_read": self.cold_read,
            "failed": self.failed,
            "signature": self.signature,
            "family": self.family,
        }


def trace_fingerprint(root: Span) -> TraceFingerprint:
    """Canonicalize the span tree under *root* into a :class:`TraceFingerprint`.

    Pure shape extraction — no wall-clock fields are read, so a fingerprint
    is byte-stable across reruns of the same CHAOS_SEED scenario.
    """
    stages = tuple(child.name for child in root.children)
    groups = 0
    nodes = 0
    cold = False
    failed = bool(root.attrs.get("failed_nodes"))
    hedged = bool(root.attrs.get("hedged_retries"))
    for span in root.walk():
        if span.name.startswith("group:"):
            groups += 1
        elif span.name.startswith("node:"):
            nodes += 1
            if span.attrs.get("failed") is not None:
                failed = True
            if span.attrs.get("hedged_retry"):
                hedged = True
        elif span.name == "cold_read":
            cold = True
    dominant = ""
    best = -math.inf
    for child in root.children:
        if child.sim_duration > best:
            best = child.sim_duration
            dominant = child.name
    return TraceFingerprint(
        stages=stages,
        groups=fanout_bucket(groups),
        nodes=fanout_bucket(nodes),
        dominant=dominant,
        degraded=bool(root.attrs.get("degraded")),
        hedged=hedged,
        cold_read=cold,
        failed=failed,
    )


# -- critical path ---------------------------------------------------------------


def stage_of(name: str) -> str:
    """Normalize a span name to its stage label (``node:n3`` → ``node``)."""
    return name.split(":", 1)[0]


def _chain(span: Span) -> list[Span]:
    """The children of *span* on its critical path, in execution order.

    Selected backwards from the latest sim-clock finisher: repeatedly take
    the child whose interval ends latest but no later than the start of the
    chain built so far.  Parallel siblings that overlap the chosen chain
    are excluded — their time is covered by the chain, not additional to it.
    """
    timed = [
        child
        for child in span.children
        if child.sim_start is not None and child.sim_end is not None
    ]
    timed.sort(key=lambda c: (c.sim_end, c.sim_start, c.span_id), reverse=True)
    chain: list[Span] = []
    bound: float | None = None
    for child in timed:
        if bound is None or child.sim_end <= bound + _EPS:
            chain.append(child)
            bound = child.sim_start
    chain.reverse()
    return chain


def critical_path(root: Span) -> list[dict]:
    """The longest sim-clock chain through the tree under *root*.

    Returns one step per span on the path (depth-first), each with its
    total sim time and its **self-time**: total minus the time covered by
    its own on-path children.  Self-times are deliberately *not* clamped
    at zero — they telescope, so summed over the whole path they equal the
    root's sim duration exactly (the tiling invariant the ANALYZE verb is
    tested against).
    """
    steps: list[dict] = []

    def visit(span: Span, depth: int) -> None:
        chain = _chain(span)
        covered = math.fsum(child.sim_duration for child in chain)
        steps.append(
            {
                "name": span.name,
                "stage": stage_of(span.name),
                "depth": depth,
                "total_ms": span.sim_duration * 1e3,
                "self_ms": (span.sim_duration - covered) * 1e3,
            }
        )
        for child in chain:
            visit(child, depth + 1)

    visit(root, 0)
    return steps


def critical_path_table(roots: Iterable[Span]) -> list[dict]:
    """Flamegraph-style aggregation of the critical paths of *roots*.

    One row per stage label with summed self/total sim-milliseconds, the
    number of path steps that hit the stage, and the stage's share of all
    self-time.  Rows sort by self-time descending (ties by stage name) —
    the top row names where turnaround actually goes.
    """
    rows: dict[str, dict] = {}
    for root in roots:
        for step in critical_path(root):
            row = rows.setdefault(
                step["stage"],
                {"stage": step["stage"], "self_ms": 0.0,
                 "total_ms": 0.0, "count": 0},
            )
            row["self_ms"] += step["self_ms"]
            row["total_ms"] += step["total_ms"]
            row["count"] += 1
    return _finish_table(rows)


def merge_critical_tables(tables: Iterable[Sequence[dict]]) -> list[dict]:
    """Merge per-entry / per-cell critical-path tables into one.

    Accepts the JSON-shaped rows :func:`critical_path_table` emits (the
    form slow-log entries and explore cells store), so aggregation works
    on entries that crossed the wire without re-walking any span tree.
    """
    rows: dict[str, dict] = {}
    for table in tables:
        for incoming in table:
            row = rows.setdefault(
                incoming["stage"],
                {"stage": incoming["stage"], "self_ms": 0.0,
                 "total_ms": 0.0, "count": 0},
            )
            row["self_ms"] += incoming["self_ms"]
            row["total_ms"] += incoming["total_ms"]
            row["count"] += int(incoming["count"])
    return _finish_table(rows)


def _finish_table(rows: dict[str, dict]) -> list[dict]:
    total_self = math.fsum(row["self_ms"] for row in rows.values())
    out = sorted(
        rows.values(), key=lambda row: (-row["self_ms"], row["stage"])
    )
    for row in out:
        row["share"] = row["self_ms"] / total_self if total_self else 0.0
    return out


# -- slow-query clustering -------------------------------------------------------


def cluster_slow_queries(
    entries: Iterable[dict], exemplars: int = 3
) -> list[dict]:
    """Group slow-log *entries* into trace families.

    Each entry is a slow-log dict carrying a ``fingerprint`` (the
    :meth:`TraceFingerprint.to_dict` form), ``trace_id`` and
    ``turnaround_ms``; entries without a fingerprint (tracing off) are
    collected under the ``"untraced"`` signature.  Families sort by count
    descending, then mean turnaround descending, then signature — a total
    deterministic order.
    """
    groups: dict[str, dict] = {}
    for entry in entries:
        fp = entry.get("fingerprint")
        if fp:
            signature = fp["signature"]
            family = fp["family"]
            dominant = fp["dominant"]
            flags = [
                flag
                for flag, on in (
                    ("degraded", fp.get("degraded")),
                    ("hedged", fp.get("hedged")),
                    ("cold-read", fp.get("cold_read")),
                    ("failed-node", fp.get("failed")),
                )
                if on
            ]
        else:
            signature, family, dominant, flags = "untraced", "untraced", "", []
        group = groups.setdefault(
            signature,
            {
                "family": family,
                "signature": signature,
                "dominant_stage": dominant,
                "flags": flags,
                "count": 0,
                "exemplar_trace_ids": [],
                "turnarounds": [],
            },
        )
        group["count"] += 1
        trace_id = entry.get("trace_id")
        if trace_id and len(group["exemplar_trace_ids"]) < exemplars:
            group["exemplar_trace_ids"].append(trace_id)
        group["turnarounds"].append(float(entry.get("turnaround_ms") or 0.0))
    total = sum(group["count"] for group in groups.values())
    families = []
    for group in groups.values():
        turnarounds = group.pop("turnarounds")
        group["mean_turnaround_ms"] = round(
            math.fsum(turnarounds) / len(turnarounds), 3
        )
        group["max_turnaround_ms"] = round(max(turnarounds), 3)
        group["share"] = group["count"] / total if total else 0.0
        families.append(group)
    families.sort(
        key=lambda g: (-g["count"], -g["mean_turnaround_ms"], g["signature"])
    )
    return families
