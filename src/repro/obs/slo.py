"""Declarative SLOs with multi-window burn-rate alerting.

An SLO ("99.9% of queries complete non-degraded") turns a rolling SLI into
an *error budget*: the tolerated bad fraction is ``1 - objective``, and the
**burn rate** is how many times faster than budget the service is failing —
``bad_fraction / (1 - objective)``.  Burn ``1.0`` exactly exhausts the
budget over the objective period; burn ``1000`` means a 99.9% objective is
being violated on essentially every observation.

Single-window burn alerts are either slow (long window: pages arrive after
the incident) or flappy (short window: one unlucky probe pages).  The
standard fix (Google SRE workbook ch. 5) is **multi-window**: fire only
when *both* a fast and a slow window burn hot — the fast window proves the
problem is happening *now*, the slow window proves it is not a blip — and
resolve on the fast window alone so recovery is visible quickly.

:class:`SLOEngine` adds the piece dashboards never give you for free:
**cause correlation**.  Every transition into a firing state scans the
:class:`~repro.obs.events.EventLog` for recent fault-kind events (node
crash, partition, detector suspicion) and attaches the most recent one as
the alert's suspected cause, together with trace ids of recent bad
observations — so the alert text already says *"availability critical,
suspect: crash node-3, e.g. trace q-17"*.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.obs.events import (
    FAULT_KINDS,
    RECOVERY_KINDS,
    Event,
    EventLog,
)

#: Alert severity ordering for escalation decisions.
_SEVERITY = {"ok": 0, "resolved": 0, "warning": 1, "critical": 2}


@dataclass(frozen=True)
class SLO:
    """One declarative objective over a named SLI.

    With ``threshold`` unset, an observation is *bad* when it was recorded
    with ``good=False`` (availability, coverage).  With ``threshold`` set,
    an observation is bad when its **value** exceeds the threshold (p-style
    latency objectives: "no more than 1% of turnarounds above 80 ms").

    ``warn_burn`` / ``crit_burn`` are burn-rate trip points; ``1.0`` means
    "burning budget exactly as fast as the objective tolerates".
    ``max_severity="warning"`` caps ticket-grade objectives (repair
    backlog) so they never page.
    """

    name: str
    sli: str
    objective: float
    fast_window: float
    slow_window: float
    threshold: float | None = None
    warn_burn: float = 1.0
    crit_burn: float = 4.0
    max_severity: str = "critical"
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"SLO {self.name!r}: objective must be in (0, 1), "
                f"got {self.objective}"
            )
        if self.fast_window > self.slow_window:
            raise ValueError(
                f"SLO {self.name!r}: fast window {self.fast_window} wider "
                f"than slow window {self.slow_window}"
            )
        if self.max_severity not in ("warning", "critical"):
            raise ValueError(
                f"SLO {self.name!r}: max_severity must be warning|critical"
            )

    @property
    def budget(self) -> float:
        return 1.0 - self.objective

    def burn(self, window, now: float) -> float:
        """Burn rate of one rolling window at *now*."""
        if self.threshold is None:
            bad = window.bad_fraction(now)
        else:
            bad = window.exceed_fraction(now, self.threshold)
        return bad / self.budget


@dataclass(frozen=True)
class AlertTransition:
    """One alert state change, with its correlated suspected cause."""

    time: float
    slo: str
    frm: str
    to: str
    burn_fast: float
    burn_slow: float
    cause: dict | None = None
    trace_ids: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {
            "time": self.time,
            "slo": self.slo,
            "from": self.frm,
            "to": self.to,
            "burn_fast": round(self.burn_fast, 6),
            "burn_slow": round(self.burn_slow, 6),
            "cause": self.cause,
            "trace_ids": list(self.trace_ids),
        }

    def __str__(self) -> str:
        line = (
            f"[{self.time * 1e3:9.3f} ms] alert {self.slo}: "
            f"{self.frm} -> {self.to}  "
            f"(burn fast={self.burn_fast:.1f} slow={self.burn_slow:.1f})"
        )
        if self.cause:
            line += (
                f"  suspect: {self.cause.get('kind')} "
                f"{self.cause.get('actor')}"
            )
        if self.trace_ids:
            line += f"  e.g. {self.trace_ids[0]}"
        return line


@dataclass
class AlertState:
    """Mutable per-SLO alert bookkeeping inside the engine."""

    slo: SLO
    state: str = "ok"
    since: float = 0.0
    fired_at: float | None = None
    resolved_at: float | None = None
    cause: dict | None = None
    trace_ids: tuple[str, ...] = ()
    burn_fast: float = 0.0
    burn_slow: float = 0.0

    def to_dict(self) -> dict:
        return {
            "slo": self.slo.name,
            "sli": self.slo.sli,
            "objective": self.slo.objective,
            "state": self.state,
            "since": self.since,
            "burn_fast": round(self.burn_fast, 6),
            "burn_slow": round(self.burn_slow, 6),
            "cause": self.cause,
            "trace_ids": list(self.trace_ids),
        }


class SLOEngine:
    """Evaluates every SLO against a recorder; tracks alert lifecycles.

    The lifecycle is ``ok → warning|critical → resolved → ok``: *resolved*
    is a one-evaluation terminal acknowledgment (so dashboards and the CI
    smoke job can observe that a previously-firing alert recovered) before
    the state returns to *ok*.

    Sparse-traffic guard: a fast window can legitimately empty out between
    probe arrivals; an empty window burns 0, which must not instantly
    resolve a real incident.  A firing alert therefore only resolves when
    the fast window is cool *and* either it actually contains observations
    or enough time (two fast widths) has passed since the last bad one.
    """

    def __init__(self, recorder, slos, event_log: EventLog,
                 max_transitions: int = 256) -> None:
        self.recorder = recorder
        self.slos = tuple(slos)
        self.events = event_log
        self.states: dict[str, AlertState] = {
            slo.name: AlertState(slo=slo) for slo in self.slos
        }
        self.transitions: deque[AlertTransition] = deque(maxlen=max_transitions)
        self._transition_counts: dict[tuple[str, str], int] = {}

    # -- evaluation ------------------------------------------------------------

    def evaluate(self, now: float) -> list[AlertTransition]:
        """One evaluation pass over every SLO at *now*; returns (and
        records) the alert transitions this pass produced."""
        produced: list[AlertTransition] = []
        for slo in self.slos:
            state = self.states[slo.name]
            sli = self.recorder.sli(slo.sli)
            fast = sli.window(slo.fast_window)
            slow = sli.window(slo.slow_window)
            burn_fast = slo.burn(fast, now)
            burn_slow = slo.burn(slow, now)
            state.burn_fast = burn_fast
            state.burn_slow = burn_slow

            target: str | None = None
            if fast.count(now) and slow.count(now):
                if burn_fast >= slo.crit_burn and burn_slow >= slo.crit_burn:
                    target = "critical"
                elif burn_fast >= slo.warn_burn and burn_slow >= slo.warn_burn:
                    target = "warning"
            if target == "critical" and slo.max_severity == "warning":
                target = "warning"

            transition = self._step(state, target, now, sli)
            if transition is not None:
                produced.append(transition)
        return produced

    def _step(self, state: AlertState, target: str | None, now: float,
              sli) -> AlertTransition | None:
        current = state.state
        firing = current in ("warning", "critical")

        if target is not None:
            if not firing or _SEVERITY[target] > _SEVERITY[current]:
                # New firing or escalation: (re)correlate the cause.
                cause, trace_ids = self._correlate(state.slo, sli, now,
                                                   FAULT_KINDS)
                state.cause = cause
                state.trace_ids = trace_ids
                if not firing:
                    state.fired_at = now
                return self._transition(state, target, now)
            if _SEVERITY[target] < _SEVERITY[current]:
                return self._transition(state, target, now)
            return None  # holding steady at the same severity

        # target is None: cool windows.
        if firing:
            if not self._may_resolve(state.slo, sli, now):
                return None
            cause, _ = self._correlate(state.slo, sli, now, RECOVERY_KINDS)
            if cause is not None:
                state.cause = cause
            state.resolved_at = now
            return self._transition(state, "resolved", now)
        if current == "resolved":
            return self._transition(state, "ok", now)
        return None

    def _may_resolve(self, slo: SLO, sli, now: float) -> bool:
        fast = sli.window(slo.fast_window)
        if fast.count(now):
            return True
        last_bad = sli.last_bad_at
        return last_bad is None or now > last_bad + 2.0 * slo.fast_window

    def _transition(self, state: AlertState, to: str,
                    now: float) -> AlertTransition:
        transition = AlertTransition(
            time=now,
            slo=state.slo.name,
            frm=state.state,
            to=to,
            burn_fast=state.burn_fast,
            burn_slow=state.burn_slow,
            cause=state.cause,
            trace_ids=state.trace_ids,
        )
        state.state = to
        state.since = now
        self.transitions.append(transition)
        key = (state.slo.name, to)
        self._transition_counts[key] = self._transition_counts.get(key, 0) + 1
        self.events.emit(
            "alert",
            f"slo:{state.slo.name}",
            f"{transition.frm} -> {to}",
            sim_time=now,
            trace_id=state.trace_ids[0] if state.trace_ids else None,
            state=to,
            burn_fast=round(state.burn_fast, 6),
            burn_slow=round(state.burn_slow, 6),
            cause_kind=(state.cause or {}).get("kind"),
            cause_actor=(state.cause or {}).get("actor"),
        )
        return transition

    def _correlate(self, slo: SLO, sli, now: float,
                   kinds) -> tuple[dict | None, tuple[str, ...]]:
        """The most recent *kinds* event inside the slow window, plus trace
        ids of recent bad observations on the SLI."""
        candidates = self.events.recent(
            kinds, since=now - slo.slow_window, until=now
        )
        cause: Event | None = candidates[-1] if candidates else None
        trace_ids = tuple(dict.fromkeys(sli.bad_trace_ids))
        return (cause.to_dict() if cause is not None else None), trace_ids

    # -- reading ---------------------------------------------------------------

    def firing(self) -> list[str]:
        """Names of SLOs currently in warning or critical."""
        return sorted(
            name for name, st in self.states.items()
            if st.state in ("warning", "critical")
        )

    def states_dict(self, now: float | None = None) -> dict[str, dict]:
        return {name: st.to_dict() for name, st in sorted(self.states.items())}

    def transition_counts(self) -> dict[tuple[str, str], int]:
        return dict(self._transition_counts)


def default_slos(
    windows, latency_threshold: float | None = None
) -> tuple[SLO, ...]:
    """The stock objectives for a Mendel cluster, over *windows* widths.

    * **availability** — queries answered non-degraded (paper's core
      promise: replication hides node loss).  99.9%, pages critical.
    * **coverage** — full-coverage answers (every holder responded; Fig. 6
      turnaround is only meaningful at full coverage).  99%.
    * **turnaround** — only when a threshold is configured: fraction of
      turnarounds above it (the Fig. 6 p99-style bound).  95%.
    * **repair_backlog** — outstanding re-replication repairs; ticket-grade
      (capped at warning: a backlog is work in flight, not an outage).
    * **integrity** — replica copies passing the scrubber's digest
      verification.  99.9%, pages critical: silent corruption is data
      loss in waiting.  (The SLI only receives observations when the
      scrubber runs, so non-scrubbing runs never burn it.)
    """
    widths = tuple(sorted(set(float(w) for w in windows)))
    fast, slow = widths[0], widths[-1]
    slos = [
        SLO(
            name="availability", sli="availability", objective=0.999,
            fast_window=fast, slow_window=slow,
            description="queries answered without degradation",
        ),
        SLO(
            name="coverage", sli="coverage", objective=0.99,
            fast_window=fast, slow_window=slow,
            description="answers reflecting every replica holder",
        ),
        SLO(
            name="repair_backlog", sli="repair_backlog", objective=0.9,
            fast_window=fast, slow_window=slow, max_severity="warning",
            description="re-replication repairs outstanding",
        ),
        SLO(
            name="integrity", sli="integrity", objective=0.999,
            fast_window=fast, slow_window=slow,
            description="replica copies passing digest verification",
        ),
    ]
    if latency_threshold is not None:
        slos.append(SLO(
            name="turnaround", sli="turnaround", objective=0.95,
            threshold=latency_threshold,
            fast_window=fast, slow_window=slow,
            description=f"turnaround above {latency_threshold}s",
        ))
    return tuple(slos)
