"""Span trees: the trace layer of the observability subsystem.

A :class:`TraceContext` is created per request (by the serving gateway, the
``repro trace`` CLI, or any caller of ``Mendel.query(trace_ctx=...)``) and
threaded through the query pipeline.  Each pipeline stage opens a
:class:`Span` stamped with **both clocks**:

* *sim* timestamps — the simulated-cluster clock the paper's turnaround
  figures live on; a query's root span covers exactly its turnaround, and
  sibling stage spans tile it;
* *wall* timestamps — real process time, what the serving layer's latency
  is made of.

Spans nest by explicit parent (``parent.child(...)``) rather than an
ambient stack because the engine interleaves many generator processes on
one simulated clock — there is no meaningful "current" span.

Code paths that may run untraced take :data:`NO_SPAN`, a null object whose
``child``/``annotate``/``finish`` are no-ops, so the hot path stays
branch-free and the tracing-off overhead is a few cheap method calls.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Iterator

from repro.obs import profile as _profile
from repro.obs.timer import wall_clock

_trace_ids = itertools.count(1)


def new_trace_id() -> str:
    """Process-unique (and deterministic within a process) trace id."""
    return f"t{next(_trace_ids):010x}"


class Span:
    """One timed stage of the pipeline; a node of the span tree."""

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id",
        "wall_start", "wall_end", "sim_start", "sim_end",
        "attrs", "children", "_ctx",
    )

    def __init__(
        self,
        ctx: "TraceContext",
        name: str,
        parent_id: str | None,
        sim_now: float | None,
        attrs: dict[str, Any],
    ) -> None:
        self._ctx = ctx
        self.name = name
        self.trace_id = ctx.trace_id
        self.span_id = ctx.next_span_id()
        self.parent_id = parent_id
        self.wall_start = wall_clock()
        self.wall_end: float | None = None
        self.sim_start = sim_now
        self.sim_end: float | None = None
        self.attrs = dict(attrs)
        self.children: list["Span"] = []
        # tag this thread with the span's stage so the sampling profiler
        # can attribute wall-clock stacks to pipeline stages; a no-op
        # (one truthiness check) unless a profiler is running
        _profile.span_opened(name)

    def __bool__(self) -> bool:
        return True

    # -- lifecycle -------------------------------------------------------------

    def child(self, name: str, sim_now: float | None = None,
              **attrs: Any) -> "Span":
        """Open a child span starting now (both clocks)."""
        span = Span(self._ctx, name, self.span_id, sim_now, attrs)
        with self._ctx._lock:
            self.children.append(span)
        return span

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes (cache hits, retry counts, failure reasons)."""
        self.attrs.update(attrs)

    def finish(self, sim_now: float | None = None) -> "Span":
        """Close the span, stamping both end clocks; idempotent."""
        if self.wall_end is None:
            self.wall_end = wall_clock()
            _profile.span_closed(self.name)
        if sim_now is not None:
            self.sim_end = sim_now
        return self

    # -- derived ---------------------------------------------------------------

    @property
    def wall_duration(self) -> float:
        if self.wall_end is None:
            return 0.0
        return self.wall_end - self.wall_start

    @property
    def sim_duration(self) -> float:
        if self.sim_start is None or self.sim_end is None:
            return 0.0
        return self.sim_end - self.sim_start

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First descendant (or self) with *name*, depth-first."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    # -- rendering -------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-friendly form of the subtree (stable for determinism tests:
        only clock-independent and sim-clock fields, no wall stamps)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "sim_start": self.sim_start,
            "sim_end": self.sim_end,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    def tree_lines(self, indent: int = 0) -> list[str]:
        """Indented one-line-per-span rendering (sim-clock durations)."""
        duration = (
            f"{self.sim_duration * 1e3:9.3f} ms"
            if self.sim_start is not None
            else f"{self.wall_duration * 1e3:9.3f} ms wall"
        )
        attrs = " ".join(
            f"{key}={_short(value)}" for key, value in sorted(self.attrs.items())
        )
        line = f"{'  ' * indent}{duration}  {self.name}"
        if attrs:
            line += f"  [{attrs}]"
        lines = [line]
        for child in self.children:
            lines.extend(child.tree_lines(indent + 1))
        return lines

    def format_tree(self) -> str:
        return "\n".join(self.tree_lines())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"sim={self.sim_duration * 1e3:.3f}ms, "
            f"children={len(self.children)})"
        )


def _short(value: Any) -> str:
    text = str(value)
    return text if len(text) <= 40 else text[:37] + "..."


class _NullSpan:
    """Absorbs every span operation; what untraced code paths receive."""

    __slots__ = ()

    def child(self, name: str, sim_now: float | None = None,
              **attrs: Any) -> "_NullSpan":
        return self

    def annotate(self, **attrs: Any) -> None:
        return None

    def finish(self, sim_now: float | None = None) -> "_NullSpan":
        return self

    def __bool__(self) -> bool:
        return False


#: The null span — truthiness distinguishes it from a real span.
NO_SPAN = _NullSpan()


class TraceContext:
    """One trace: an id, a span-id counter, and the root span.

    Thread-safe: the serving gateway's worker threads and the simulated
    engine both append spans through the same lock.
    """

    def __init__(self, trace_id: str | None = None) -> None:
        self.trace_id = trace_id or new_trace_id()
        self.root: Span | None = None
        self._lock = threading.Lock()
        self._span_ids = itertools.count(1)

    def next_span_id(self) -> str:
        return f"s{next(self._span_ids):04d}"

    def begin(self, name: str, sim_now: float | None = None,
              **attrs: Any) -> Span:
        """Open the root span; a second ``begin`` nests under the root."""
        with self._lock:
            root = self.root
        if root is not None:
            return root.child(name, sim_now=sim_now, **attrs)
        span = Span(self, name, None, sim_now, attrs)
        with self._lock:
            self.root = span
        return span

    def spans(self) -> list[Span]:
        """Every span in the trace, depth-first from the root."""
        return list(self.root.walk()) if self.root is not None else []
