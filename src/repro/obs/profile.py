"""Two-sided continuous profiling: sampled wall-clock stacks and
deterministic per-stage cost accounting.

The rest of the obs stack explains *where sim-time goes* (span trees,
critical paths, slow-query families).  This module answers the two
questions those layers cannot:

* **Where does real CPU go?**  :class:`SamplingProfiler` is a daemon
  thread walking :func:`sys._current_frames` at a configurable rate.
  Each sample is tagged with the pipeline *stage* currently open on the
  sampled thread — the tracer pushes/pops a per-thread stage context as
  spans open and close (:func:`span_opened` / :func:`span_closed`), so a
  stack observed while a ``node:*`` span is live is charged to the
  ``node`` stage.  Aggregated stacks export as folded (collapsed) text
  for flamegraph tooling and as speedscope JSON; the profiler measures
  its own overhead (time spent sampling over elapsed wall time) so the
  tracing-overhead budget stays checkable.

* **Which code paths paid which simulated costs?**  :class:`CostProfiler`
  charges the sim-mode resource counters (distance evals, residues
  compared, blocks scanned, cold-read bytes/seeks, tier-cache hits and
  misses, and the attrition-funnel counts) to ``(stage, code-site)``
  pairs.  Charging happens in simulated event order, so a cost profile
  for a seeded run **replays byte-identically** (:meth:`CostProfiler.
  to_json` is canonical), and the funnel counters it accumulates tile
  the EXPLAIN funnel exactly — both properties are unit-tested.

Hot-path cost when nothing is profiling: one module-level truthiness
check per span open/close and per charge site.  The module deliberately
imports nothing from the rest of the package so the tracer, the query
engine, and the tier cache can all call into it without cycles.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Any, Iterable

#: canonical sim-cost counters a charge may carry (anything else raises,
#: so profiles from different runs stay field-compatible)
COST_COUNTERS: tuple[str, ...] = (
    "distance_evals",
    "residues_compared",
    "blocks_scanned",
    "cold_read_bytes",
    "cold_read_seeks",
    "cache_hits",
    "cache_misses",
    "knn_candidates",
    "identity_pass",
    "cscore_pass",
    "anchors_extended",
    "anchors_merged",
    "gapped_extensions",
    "alignments",
)

#: funnel-stage counters (subset of :data:`COST_COUNTERS`, pipeline order)
#: — per-stage sums over these must tile the EXPLAIN funnel exactly
FUNNEL_COUNTERS: tuple[str, ...] = (
    "knn_candidates",
    "identity_pass",
    "cscore_pass",
    "anchors_extended",
    "anchors_merged",
    "gapped_extensions",
    "alignments",
)

PROFILE_SCHEMA_VERSION = 1

# -- per-thread stage context (set by the tracer) --------------------------------

#: thread ident -> stack of open stage names.  Written by the owning
#: thread, read by the sampler thread; per-entry races only mis-tag a
#: single sample, which is acceptable for a statistical profiler.
_stage_stacks: dict[int, list[str]] = {}

#: running sampling profilers (stage bookkeeping is skipped when empty,
#: keeping the untraced hot path at one truthiness check per span)
_samplers: list["SamplingProfiler"] = []

#: installed cost profilers (``charge`` is a no-op when empty)
_cost_profilers: list["CostProfiler"] = []


def stage_of(name: str) -> str:
    """Span name -> stage: ``node:n004`` is the ``node`` stage."""
    return name.split(":", 1)[0]


def span_opened(name: str) -> None:
    """Tracer hook: a span named *name* just opened on this thread."""
    if not _samplers:
        return
    ident = threading.get_ident()
    stack = _stage_stacks.get(ident)
    if stack is None:
        stack = _stage_stacks[ident] = []
    stack.append(stage_of(name))


def span_closed(name: str) -> None:
    """Tracer hook: the first ``finish`` of a span named *name*.

    Pops the most recent matching stage rather than the top — the sim
    engine interleaves generator processes on one thread, so sibling
    spans can close out of stack order.
    """
    if not _samplers:
        return
    stack = _stage_stacks.get(threading.get_ident())
    if not stack:
        return
    stage = stage_of(name)
    for i in range(len(stack) - 1, -1, -1):
        if stack[i] == stage:
            del stack[i]
            return


def current_stage(ident: int | None = None) -> str | None:
    """The innermost open stage on *ident* (default: this thread)."""
    stack = _stage_stacks.get(
        ident if ident is not None else threading.get_ident()
    )
    return stack[-1] if stack else None


# -- the sampling wall-clock profiler --------------------------------------------


def _frame_label(frame) -> str:
    code = frame.f_code
    filename = code.co_filename
    # keep the path's informative tail: "repro/core/query.py" not the
    # whole checkout prefix, so folded stacks are machine-independent
    for marker in ("/repro/", "\\repro\\"):
        cut = filename.rfind(marker)
        if cut >= 0:
            filename = "repro/" + filename[cut + len(marker):]
            break
    else:
        filename = filename.rsplit("/", 1)[-1].rsplit("\\", 1)[-1]
    return f"{code.co_name} ({filename}:{code.co_firstlineno})"


class SamplingProfiler:
    """Low-overhead statistical wall-clock profiler.

    A daemon thread wakes ``hz`` times per second, snapshots every live
    thread's stack via :func:`sys._current_frames`, tags each with the
    thread's open span stage, and folds it into an aggregate table.  The
    profiler times its own sampling work, so :attr:`overhead` reports the
    fraction of wall time it consumed — the number the <5% tracing budget
    is asserted against.
    """

    def __init__(self, hz: float = 67.0, max_stack: int = 48) -> None:
        if hz <= 0:
            raise ValueError(f"hz must be positive, got {hz}")
        self.hz = float(hz)
        self.max_stack = int(max_stack)
        self._interval = 1.0 / self.hz
        self._lock = threading.Lock()
        #: (stage, root-first frame tuple) -> sample count
        self._stacks: dict[tuple[str, tuple[str, ...]], int] = {}
        self._samples = 0
        self._sampling_seconds = 0.0
        self._elapsed_base = 0.0
        self._started_at: float | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle -------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        if self.running:
            return self
        self._stop.clear()
        self._started_at = time.perf_counter()
        _samplers.append(self)
        self._thread = threading.Thread(
            target=self._run, name="repro-profile-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        if self in _samplers:
            _samplers.remove(self)
        if self._started_at is not None:
            self._elapsed_base += time.perf_counter() - self._started_at
            self._started_at = None
        return self

    def _run(self) -> None:
        own = threading.get_ident()
        while not self._stop.wait(self._interval):
            begin = time.perf_counter()
            try:
                frames = sys._current_frames()
            except Exception:  # pragma: no cover - interpreter teardown
                break
            for ident, frame in frames.items():
                if ident == own:
                    continue
                stack: list[str] = []
                depth = 0
                while frame is not None and depth < self.max_stack:
                    stack.append(_frame_label(frame))
                    frame = frame.f_back
                    depth += 1
                stack.reverse()  # root-first
                stage = current_stage(ident) or "idle"
                key = (stage, tuple(stack))
                with self._lock:
                    self._stacks[key] = self._stacks.get(key, 0) + 1
                    self._samples += 1
            with self._lock:
                self._sampling_seconds += time.perf_counter() - begin

    # -- derived ---------------------------------------------------------------

    @property
    def elapsed(self) -> float:
        live = (
            time.perf_counter() - self._started_at
            if self._started_at is not None
            else 0.0
        )
        return self._elapsed_base + live

    @property
    def overhead(self) -> float:
        """Fraction of elapsed wall time spent inside the sampler."""
        elapsed = self.elapsed
        if elapsed <= 0:
            return 0.0
        with self._lock:
            return self._sampling_seconds / elapsed

    def stacks(self) -> dict[tuple[str, tuple[str, ...]], int]:
        with self._lock:
            return dict(self._stacks)

    def stage_shares(self) -> list[dict]:
        """Sampled share per stage, descending."""
        totals: dict[str, int] = {}
        total = 0
        for (stage, _stack), count in self.stacks().items():
            totals[stage] = totals.get(stage, 0) + count
            total += count
        return [
            {
                "stage": stage,
                "samples": count,
                "share": round(count / total, 6) if total else 0.0,
            }
            for stage, count in sorted(
                totals.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]

    def top_functions(self, n: int = 15) -> list[dict]:
        """Leaf (self-time) sample counts per function, descending."""
        totals: dict[str, int] = {}
        total = 0
        for (_stage, stack), count in self.stacks().items():
            if not stack:
                continue
            leaf = stack[-1]
            totals[leaf] = totals.get(leaf, 0) + count
            total += count
        ranked = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))[:n]
        return [
            {
                "function": name,
                "self_samples": count,
                "share": round(count / total, 6) if total else 0.0,
            }
            for name, count in ranked
        ]

    def snapshot(self) -> dict:
        with self._lock:
            samples = self._samples
        return {
            "running": self.running,
            "hz": self.hz,
            "samples": samples,
            "elapsed_s": round(self.elapsed, 6),
            "overhead": round(self.overhead, 6),
            "stages": self.stage_shares(),
            "top_functions": self.top_functions(),
        }

    # -- exporters -------------------------------------------------------------

    def folded(self) -> str:
        """Collapsed-stack text: ``stage:X;root;...;leaf count`` lines,
        sorted — the input format of flamegraph.pl and friends."""
        lines = []
        for (stage, stack), count in self.stacks().items():
            frames = ";".join((f"stage:{stage}",) + stack)
            lines.append(f"{frames} {count}")
        return "\n".join(sorted(lines)) + ("\n" if lines else "")

    def speedscope(self, name: str = "repro-profile") -> dict:
        """The sampled-profile speedscope JSON document."""
        frame_index: dict[str, int] = {}
        frames: list[dict] = []

        def index_of(label: str) -> int:
            if label not in frame_index:
                frame_index[label] = len(frames)
                frames.append({"name": label})
            return frame_index[label]

        samples: list[list[int]] = []
        weights: list[int] = []
        for (stage, stack), count in sorted(self.stacks().items()):
            samples.append(
                [index_of(f"stage:{stage}")] + [index_of(f) for f in stack]
            )
            weights.append(count)
        total = sum(weights)
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "shared": {"frames": frames},
            "profiles": [
                {
                    "type": "sampled",
                    "name": name,
                    "unit": "none",
                    "startValue": 0,
                    "endValue": total,
                    "samples": samples,
                    "weights": weights,
                }
            ],
            "exporter": "repro.obs.profile",
        }


# -- the deterministic cost profiler ---------------------------------------------


class CostProfiler:
    """Charges sim-mode resource counters to ``(stage, code-site)`` pairs.

    Deterministic by construction: charges are integer adds keyed by
    stable strings, so two runs of the same seeded workload produce the
    same aggregate regardless of thread interleaving, and
    :meth:`to_json` renders a canonical byte sequence.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: (stage, site) -> {counter: int}
        self._charges: dict[tuple[str, str], dict[str, int]] = {}

    def charge(self, stage: str, site: str, **costs: int) -> None:
        unknown = [k for k in costs if k not in COST_COUNTERS]
        if unknown:
            raise ValueError(
                f"unknown cost counter(s) {unknown}; "
                f"allowed: {COST_COUNTERS}"
            )
        with self._lock:
            cell = self._charges.get((stage, site))
            if cell is None:
                cell = self._charges[(stage, site)] = {}
            for counter, amount in costs.items():
                if amount:
                    cell[counter] = cell.get(counter, 0) + int(amount)

    # -- aggregation -----------------------------------------------------------

    def charges(self) -> dict[tuple[str, str], dict[str, int]]:
        with self._lock:
            return {key: dict(cell) for key, cell in self._charges.items()}

    def stage_totals(self) -> dict[str, dict[str, int]]:
        """``{stage: {counter: total}}`` across all code sites."""
        out: dict[str, dict[str, int]] = {}
        for (stage, _site), cell in self.charges().items():
            bucket = out.setdefault(stage, {})
            for counter, amount in cell.items():
                bucket[counter] = bucket.get(counter, 0) + amount
        return out

    def counter_totals(self) -> dict[str, int]:
        """``{counter: total}`` across every stage and site."""
        out: dict[str, int] = {}
        for cell in self.charges().values():
            for counter, amount in cell.items():
                out[counter] = out.get(counter, 0) + amount
        return out

    def funnel_totals(self) -> dict[str, int]:
        """The attrition-funnel counters this profile accumulated —
        comparable 1:1 against ``QueryStats.funnel()`` / EXPLAIN."""
        totals = self.counter_totals()
        return {name: totals.get(name, 0) for name in FUNNEL_COUNTERS}

    # -- rendering -------------------------------------------------------------

    def to_dict(self) -> dict:
        sites = {}
        for (stage, site), cell in sorted(self.charges().items()):
            sites.setdefault(stage, {})[site] = {
                counter: cell[counter] for counter in sorted(cell)
            }
        return {
            "schema_version": PROFILE_SCHEMA_VERSION,
            "counters": sites,
            "totals": {
                counter: total
                for counter, total in sorted(self.counter_totals().items())
            },
        }

    def to_json(self) -> str:
        """Canonical serialisation (sorted keys, fixed separators): equal
        profiles are equal bytes."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


def install_cost_profiler(profiler: CostProfiler) -> CostProfiler:
    if profiler not in _cost_profilers:
        _cost_profilers.append(profiler)
    return profiler


def uninstall_cost_profiler(profiler: CostProfiler) -> None:
    if profiler in _cost_profilers:
        _cost_profilers.remove(profiler)


def charge(stage: str, site: str, **costs: int) -> None:
    """Charge *costs* to every installed cost profiler (no-op when none)."""
    if not _cost_profilers:
        return
    for profiler in _cost_profilers:
        profiler.charge(stage, site, **costs)


# -- the combined serving profiler -----------------------------------------------


class Profiler:
    """Both sides under one start/snapshot/stop lifecycle — what the
    serving gateway's PROFILE verb and ``repro profile`` drive."""

    def __init__(self, hz: float = 67.0) -> None:
        self.sampler = SamplingProfiler(hz=hz)
        self.cost = CostProfiler()

    @property
    def running(self) -> bool:
        return self.sampler.running

    def start(self) -> "Profiler":
        install_cost_profiler(self.cost)
        self.sampler.start()
        return self

    def stop(self) -> dict:
        self.sampler.stop()
        uninstall_cost_profiler(self.cost)
        return self.snapshot()

    def snapshot(self) -> dict:
        return {
            "running": self.running,
            "sampling": self.sampler.snapshot(),
            "cost": self.cost.to_dict(),
        }


def write_profile_artifacts(
    out_dir: str,
    profiler: Profiler,
    name: str = "profile",
) -> dict[str, str]:
    """Write the three profile artifacts into *out_dir*:

    * ``PROFILE.json`` — the deterministic cost profile (canonical bytes);
    * ``<name>.folded`` — collapsed stacks for flamegraph tooling;
    * ``<name>.speedscope.json`` — the speedscope document.

    Returns ``{kind: path}`` for the files written.
    """
    import os

    os.makedirs(out_dir, exist_ok=True)
    paths = {}
    cost_path = os.path.join(out_dir, "PROFILE.json")
    with open(cost_path, "w", encoding="utf-8") as handle:
        handle.write(profiler.cost.to_json())
    paths["cost"] = cost_path
    folded_path = os.path.join(out_dir, f"{name}.folded")
    with open(folded_path, "w", encoding="utf-8") as handle:
        handle.write(profiler.sampler.folded())
    paths["folded"] = folded_path
    speed_path = os.path.join(out_dir, f"{name}.speedscope.json")
    with open(speed_path, "w", encoding="utf-8") as handle:
        json.dump(profiler.sampler.speedscope(name=name), handle,
                  separators=(",", ":"), sort_keys=True)
    paths["speedscope"] = speed_path
    return paths
