"""Exporters: Prometheus text exposition and Chrome trace-event JSON.

* :func:`prometheus_text` renders one or more registries in the Prometheus
  text exposition format (version 0.0.4) — what the gateway's METRICS verb
  returns and a scraper ingests directly.
* :func:`chrome_trace_events` flattens span trees into the Chrome
  trace-event format (complete ``"X"`` events with ``ph``/``ts``/``dur``/
  ``pid``/``tid``/``name``), loadable in ``chrome://tracing`` or Perfetto.
  Sim-clock timestamps are used — that is the clock the paper's turnaround
  lives on — with each span's *actor* (node id, group id, client) mapped to
  its own ``tid`` row so the fan-out/aggregation structure reads like the
  paper's Fig. 2 pipeline.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.obs.metrics import FamilySnapshot, MetricsRegistry, Sample
from repro.obs.trace import Span

# -- Prometheus text exposition -------------------------------------------------


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _render_sample(sample: Sample) -> str:
    if sample.labels:
        labels = ",".join(
            f'{name}="{_escape_label(value)}"' for name, value in sample.labels
        )
        series = f"{sample.name}{{{labels}}}"
    else:
        series = sample.name
    value = sample.value
    if value == float("inf"):
        rendered = "+Inf"
    elif value == float("-inf"):
        rendered = "-Inf"
    elif float(value).is_integer():
        rendered = str(int(value))
    else:
        rendered = repr(float(value))
    return f"{series} {rendered}"


def _render_family(snap: FamilySnapshot) -> list[str]:
    # HELP and TYPE are emitted for *every* family, exactly once each —
    # scrapers treat a repeated or missing TYPE as a malformed exposition,
    # and an empty help string still gets its (bare) HELP line.
    lines = [
        f"# HELP {snap.name} {_escape_help(snap.help)}".rstrip(),
        f"# TYPE {snap.name} {snap.kind}",
    ]
    lines.extend(_render_sample(sample) for sample in snap.samples)
    return lines


def prometheus_text(*registries: MetricsRegistry) -> str:
    """The text exposition of every family in *registries*, sorted by family
    name.  Same-named families of the same kind merge their samples (several
    gateway callbacks can each contribute their own labelled series to, say,
    ``repro_cache_hits_total``); a kind clash keeps the first occurrence."""
    merged: dict[str, FamilySnapshot] = {}
    for registry in registries:
        for snap in registry.collect():
            existing = merged.get(snap.name)
            if existing is None:
                merged[snap.name] = FamilySnapshot(
                    name=snap.name, kind=snap.kind, help=snap.help,
                    samples=list(snap.samples),
                )
            elif existing.kind == snap.kind:
                existing.samples.extend(snap.samples)
                if not existing.help and snap.help:
                    existing.help = snap.help
    lines: list[str] = []
    for name in sorted(merged):
        lines.extend(_render_family(merged[name]))
    return "\n".join(lines) + "\n" if lines else ""


# -- Chrome trace-event JSON ----------------------------------------------------


def chrome_trace_events(spans: Iterable[Span], pid: int = 1) -> list[dict]:
    """Flatten *spans* (roots of span trees) into Chrome trace events.

    Every span becomes one complete event (``"ph": "X"``) with sim-clock
    ``ts``/``dur`` in microseconds.  Spans carry their actor in
    ``attrs["actor"]``; distinct actors get distinct ``tid`` rows (with
    ``thread_name`` metadata events naming them), so Perfetto renders the
    cluster's parallelism one row per node/group.

    Event category comes from ``attrs["category"]`` (default ``"sim"``) —
    the emit site decides, not the exporter, so new span kinds classify
    without exporter edits.  Tier ``cold_read`` spans set
    ``category="io"`` where they are opened, keeping disk traffic
    isolatable in the timeline view; their byte/seek/``io_seconds``
    annotations ride along as event ``args`` like any other attrs.
    """
    events: list[dict] = []
    tids: dict[str, int] = {}

    def tid_for(actor: str) -> int:
        if actor not in tids:
            tids[actor] = len(tids) + 1
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tids[actor],
                    "args": {"name": actor},
                }
            )
        return tids[actor]

    for root in spans:
        for span in root.walk():
            if span.sim_start is None:
                continue
            actor = str(span.attrs.get("actor", root.name))
            args = {
                key: value
                for key, value in span.attrs.items()
                if key not in ("actor", "category")
            }
            args["trace_id"] = span.trace_id
            args["span_id"] = span.span_id
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            events.append(
                {
                    "ph": "X",
                    "name": span.name,
                    "cat": str(span.attrs.get("category", "sim")),
                    "ts": span.sim_start * 1e6,
                    "dur": max(0.0, span.sim_duration) * 1e6,
                    "pid": pid,
                    "tid": tid_for(actor),
                    "args": args,
                }
            )
    return events


def write_chrome_trace(path: str, spans: Iterable[Span]) -> int:
    """Write the Chrome trace JSON for *spans* to *path* (JSON object form
    with ``traceEvents``, the shape Perfetto and ``chrome://tracing`` both
    load); returns the number of events written."""
    events = chrome_trace_events(spans)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, separators=(",", ":"), default=str)
    return len(events)
