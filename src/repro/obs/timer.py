"""The one wall-clock timing primitive shared across the repo.

Everything that measures *wall-clock* time — the benchmark harness's
:class:`Stopwatch`, the serving layer's latency accounting, and the span
timer of :mod:`repro.obs.trace` — reads the same monotonic clock defined
here (:data:`wall_clock`), so measurements from different layers are
directly comparable.  ``repro.util.timing`` re-exports this module so
existing imports keep working.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

#: The process-wide monotonic wall clock every timer reads.
wall_clock = time.perf_counter


@dataclass
class Stopwatch:
    """Accumulating stopwatch.

    Usage::

        sw = Stopwatch()
        with sw:
            do_work()
        print(sw.elapsed)

    Multiple ``with`` blocks accumulate into :attr:`elapsed`; ``laps`` records
    each individual measurement.  ``on_lap`` (if set) is called with each lap
    duration — the hook benchmarks use to feed laps straight into an
    observability histogram (``on_lap=histogram.observe``), so traces,
    metrics, and benchmark tables all derive from one timing primitive.
    """

    elapsed: float = 0.0
    laps: list[float] = field(default_factory=list)
    on_lap: Callable[[float], None] | None = None
    _start: float | None = None

    def start(self) -> None:
        if self._start is not None:
            raise RuntimeError("stopwatch already running")
        self._start = wall_clock()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("stopwatch not running")
        lap = wall_clock() - self._start
        self._start = None
        self.elapsed += lap
        self.laps.append(lap)
        if self.on_lap is not None:
            self.on_lap(lap)
        return lap

    def reset(self) -> None:
        self.elapsed = 0.0
        self.laps.clear()
        self._start = None

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def mean_lap(self) -> float:
        if not self.laps:
            raise ValueError("no laps recorded")
        return self.elapsed / len(self.laps)


def format_duration(seconds: float) -> str:
    """Render *seconds* in a human-friendly unit (ns/us/ms/s/min)."""
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    if seconds < 1e-6:
        return f"{seconds * 1e9:.1f} ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    return f"{seconds / 60.0:.1f} min"
