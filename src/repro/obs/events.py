"""Bounded structured event log with trace-id correlation.

Spans (PR 3) answer "where did *this* query spend its time"; metrics answer
"how much of everything happened".  Neither answers "what *happened to the
system* around 12:03" — the question every alert investigation starts with.
This module adds that layer: a bounded, thread-safe ring buffer of typed
:class:`Event` records that the query engine, the serving gateway, the
failure detector, the chaos controller, and the re-replicator all emit
into.

Design points:

* **Dual clocks.**  Every event carries the wall clock and (when emitted
  from inside a simulated run) the sim clock.  :meth:`Event.to_dict`
  excludes the wall stamp, so two runs of the same ``CHAOS_SEED`` produce
  byte-identical ``EventLog.to_dicts()`` — the same replayability contract
  the span trees honour.
* **Trace correlation.**  Events carry ``trace_id``/``span_id`` when the
  emitting code path has one, so an alert or a slow-query log entry can be
  joined against the span tree that explains it.
* **Bounded.**  The log is a ring: emission never blocks and never grows
  without bound; ``dropped`` counts evictions so consumers know when the
  tail is incomplete.

A process-global default log (:func:`default_event_log`) is shared the same
way the default metrics registry is; deterministic tests pass their own
:class:`EventLog` instance instead.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Iterable

from repro.obs.timer import wall_clock

#: Event kinds considered *fault causes* when correlating an alert that
#: starts firing (see :mod:`repro.obs.slo`).
FAULT_KINDS = frozenset(
    {"crash", "partition", "drop_link", "slowdown", "detected", "suspect",
     "subquery_failed", "bit_flip", "torn_write", "disk_full",
     "corruption_detected"}
)

#: Topology-change kinds emitted by the elastic autoscaler
#: (:mod:`repro.scale`) — scale-out, splits, merges, and safe drains.
TOPOLOGY_KINDS = frozenset(
    {"node_added", "node_drained", "group_split", "group_merged"}
)

#: Event kinds considered *recovery causes* when an alert resolves.
#: Topology changes count: an alert that clears right after a scale-out
#: should cite the scale-out, closing the alert -> action -> resolution
#: loop in the transition record.
RECOVERY_KINDS = (
    frozenset({"restart", "rejoin", "repair", "heal", "heal_link", "restore",
               "scrub_heal", "disk_free"})
    | TOPOLOGY_KINDS
)


@dataclass(frozen=True)
class Event:
    """One structured log entry.

    ``seq`` is the per-log emission index (monotone, including evicted
    entries); ``sim_time`` is ``None`` for events emitted outside a
    simulated run (e.g. by the wall-clock serving gateway).
    """

    seq: int
    kind: str
    actor: str
    message: str
    wall_time: float
    sim_time: float | None = None
    trace_id: str | None = None
    span_id: str | None = None
    fields: tuple[tuple[str, Any], ...] = ()

    def to_dict(self, include_wall: bool = False) -> dict:
        """JSON-friendly form; wall stamps excluded by default so identical
        seeded runs serialise byte-identically."""
        out: dict[str, Any] = {
            "seq": self.seq,
            "kind": self.kind,
            "actor": self.actor,
            "message": self.message,
            "sim_time": self.sim_time,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "fields": dict(self.fields),
        }
        if include_wall:
            out["wall_time"] = self.wall_time
        return out

    def __str__(self) -> str:
        clock = (
            f"{self.sim_time * 1e3:9.3f} ms" if self.sim_time is not None
            else "     wall"
        )
        line = f"[{clock}] {self.kind:>16}  {self.actor}: {self.message}"
        if self.trace_id:
            line += f"  ({self.trace_id})"
        return line


class EventLog:
    """Thread-safe bounded ring buffer of :class:`Event` entries."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._events: deque[Event] = deque(maxlen=capacity)
        self._seq = 0

    def emit(
        self,
        kind: str,
        actor: str,
        message: str = "",
        sim_time: float | None = None,
        trace_id: str | None = None,
        span_id: str | None = None,
        **fields: Any,
    ) -> Event:
        """Append one event; returns it.  Never blocks, never raises on a
        full ring (the oldest entry is evicted)."""
        with self._lock:
            event = Event(
                seq=self._seq,
                kind=kind,
                actor=actor,
                message=message,
                wall_time=wall_clock(),
                sim_time=sim_time,
                trace_id=trace_id,
                span_id=span_id,
                fields=tuple(sorted(fields.items())),
            )
            self._seq += 1
            self._events.append(event)
            return event

    # -- reading ---------------------------------------------------------------

    def events(self) -> list[Event]:
        with self._lock:
            return list(self._events)

    def tail(self, n: int = 20) -> list[Event]:
        with self._lock:
            if n <= 0:
                return []
            return list(self._events)[-n:]

    def recent(
        self,
        kinds: Iterable[str],
        since: float | None = None,
        until: float | None = None,
    ) -> list[Event]:
        """Events of *kinds* whose sim time falls in ``(since, until]``
        (untimed bounds match everything); oldest first."""
        wanted = frozenset(kinds)
        out = []
        for event in self.events():
            if event.kind not in wanted:
                continue
            when = event.sim_time
            if since is not None and (when is None or when <= since):
                continue
            if until is not None and when is not None and when > until:
                continue
            out.append(event)
        return out

    def to_dicts(self, include_wall: bool = False) -> list[dict]:
        return [event.to_dict(include_wall=include_wall) for event in self.events()]

    def clear(self) -> None:
        """Empty the ring and reset the sequence counter (test isolation)."""
        with self._lock:
            self._events.clear()
            self._seq = 0

    @property
    def emitted(self) -> int:
        """Total events ever emitted (evicted ones included)."""
        with self._lock:
            return self._seq

    @property
    def dropped(self) -> int:
        """Events evicted by the ring bound."""
        with self._lock:
            return max(0, self._seq - len(self._events))

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


_default = EventLog()


def default_event_log() -> EventLog:
    """The process-global event log the cluster and gateway share."""
    return _default
