"""Thread-safe metrics: counters, gauges, bucketed histograms, one registry.

The model follows Prometheus' client conventions closely enough that the
text exposition (:func:`repro.obs.export.prometheus_text`) is directly
scrapeable:

* a **metric family** has a name, help string, and fixed label names;
* ``family.labels(group="g00")`` returns (creating on first use) a *child*
  holding the actual value for that label combination; unlabelled families
  have one implicit child;
* registries hand out families get-or-create style, so hot paths can
  resolve a child once and hold onto it — the per-increment cost is one
  lock acquire and an add.

:class:`Histogram` children keep, besides the cumulative buckets Prometheus
wants, a bounded reservoir of recent samples for exact recent-window
percentiles (what a serving dashboard actually watches) and the stream
maximum — this is what lets the gateway's latency tracker ride on the same
type.

A process-global default registry (:func:`default_registry`) is shared by
the cluster hot paths (distance evaluations, subquery routing, repair
bytes) and the serving gateway, so one METRICS scrape sees the whole
system.  **Registry callbacks** let components export values computed at
collect time (cache hit rates, queue depths) without double bookkeeping.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram bucket upper bounds (seconds), Prometheus-style.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class MetricError(ValueError):
    """Invalid metric usage: bad names, mismatched labels, re-typed names."""


@dataclass(frozen=True)
class Sample:
    """One exposition line: ``name{labels} value``."""

    name: str
    labels: tuple[tuple[str, str], ...]
    value: float


@dataclass
class FamilySnapshot:
    """A family's samples at one collect, as the exporter consumes them."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str
    samples: list[Sample] = field(default_factory=list)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise MetricError(f"invalid metric name {name!r}")
    return name


def _check_labelnames(labelnames: Sequence[str]) -> tuple[str, ...]:
    names = tuple(labelnames)
    for label in names:
        if not _LABEL_RE.match(label):
            raise MetricError(f"invalid label name {label!r}")
    if len(set(names)) != len(names):
        raise MetricError(f"duplicate label names in {names!r}")
    return names


class _Family:
    """Shared family machinery: child creation keyed on label values."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str]) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labelnames = _check_labelnames(labelnames)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}

    def _make_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, **labelvalues: object):
        """The child for this label combination (created on first use)."""
        if set(labelvalues) != set(self.labelnames):
            raise MetricError(
                f"{self.name} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    def _default_child(self):
        if self.labelnames:
            raise MetricError(
                f"{self.name} has labels {self.labelnames}; use .labels(...)"
            )
        return self.labels()

    def remove(self, **labelvalues: object) -> bool:
        """Drop the child for this exact label combination; returns whether
        one existed.  Used when the labelled entity (a node, a group) leaves
        the topology, so the exposition does not grow without bound."""
        if set(labelvalues) != set(self.labelnames):
            raise MetricError(
                f"{self.name} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self._lock:
            return self._children.pop(key, None) is not None

    def purge_label(self, label: str, value: str) -> int:
        """Drop every child whose *label* equals *value*; returns the count
        removed (0 when the family does not carry that label at all)."""
        if label not in self.labelnames:
            return 0
        position = self.labelnames.index(label)
        value = str(value)
        with self._lock:
            doomed = [key for key in self._children if key[position] == value]
            for key in doomed:
                del self._children[key]
        return len(doomed)

    def purge_matching(self, labelvalues: dict[str, str]) -> int:
        """Drop every child matching **all** of the *labelvalues* pairs this
        family carries; returns the count removed.

        Pairs whose label name the family does not carry are ignored, but a
        family carrying *none* of them is untouched — so a multi-label
        purge (``node=..., tier=...``) prunes ``(node, tier)``-keyed series
        *and* plain ``(node,)``-keyed series, without wiping unrelated
        families wholesale."""
        applicable = {
            label: str(value)
            for label, value in labelvalues.items()
            if label in self.labelnames
        }
        if not applicable:
            return 0
        positions = [
            (self.labelnames.index(label), value)
            for label, value in applicable.items()
        ]
        with self._lock:
            doomed = [
                key
                for key in self._children
                if all(key[pos] == value for pos, value in positions)
            ]
            for key in doomed:
                del self._children[key]
        return len(doomed)

    def _items(self) -> list[tuple[tuple[tuple[str, str], ...], object]]:
        with self._lock:
            return [
                (tuple(zip(self.labelnames, key)), child)
                for key, child in sorted(self._children.items())
            ]


class CounterChild:
    """A monotonically increasing value."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError(f"counters only go up, got inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Counter(_Family):
    kind = "counter"

    def _make_child(self) -> CounterChild:
        return CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    @property
    def value(self) -> float:
        return self._default_child().value

    def snapshot(self) -> FamilySnapshot:
        snap = FamilySnapshot(name=self.name, kind=self.kind, help=self.help)
        for labels, child in self._items():
            snap.samples.append(Sample(self.name, labels, child.value))
        return snap


class GaugeChild:
    """A value that can go up and down, or be computed at collect time."""

    __slots__ = ("_lock", "_value", "_fn")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._fn: Callable[[], float] | None = None

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, fn: Callable[[], float] | None) -> None:
        """Read *fn* at every collect instead of the stored value."""
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        with self._lock:
            return float(self._fn()) if self._fn is not None else self._value


class Gauge(_Family):
    kind = "gauge"

    def _make_child(self) -> GaugeChild:
        return GaugeChild()

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    def set_function(self, fn: Callable[[], float] | None) -> None:
        self._default_child().set_function(fn)

    @property
    def value(self) -> float:
        return self._default_child().value

    def snapshot(self) -> FamilySnapshot:
        snap = FamilySnapshot(name=self.name, kind=self.kind, help=self.help)
        for labels, child in self._items():
            snap.samples.append(Sample(self.name, labels, child.value))
        return snap


class HistogramChild:
    """Bucketed distribution plus a recent-sample reservoir.

    The cumulative buckets / sum / count are what Prometheus scrapes; the
    bounded reservoir gives exact percentiles over the last *reservoir*
    observations, and ``max`` tracks the whole stream — together covering
    everything the old ``LatencyTracker`` reported.
    """

    __slots__ = ("_lock", "bounds", "_bucket_counts", "count", "sum", "max",
                 "_recent")

    def __init__(self, bounds: tuple[float, ...], reservoir: int) -> None:
        self._lock = threading.Lock()
        self.bounds = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # +inf bucket last
        self.count = 0
        self.sum = 0.0
        self.max = 0.0
        self._recent: deque[float] = deque(maxlen=reservoir) if reservoir else None

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._bucket_counts[bisect_left(self.bounds, value)] += 1
            self.count += 1
            self.sum += value
            if value > self.max:
                self.max = value
            if self._recent is not None:
                self._recent.append(value)

    @property
    def mean(self) -> float:
        with self._lock:
            return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """The *p*-th percentile (0..100) of the recent window; 0 if empty."""
        with self._lock:
            recent = sorted(self._recent) if self._recent else []
        if not recent:
            return 0.0
        rank = max(0, min(len(recent) - 1,
                          round(p / 100.0 * (len(recent) - 1))))
        return recent[rank]

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``+inf`` last."""
        with self._lock:
            counts = list(self._bucket_counts)
        out: list[tuple[float, int]] = []
        running = 0
        for bound, bucket in zip(self.bounds, counts):
            running += bucket
            out.append((bound, running))
        out.append((float("inf"), running + counts[-1]))
        return out


class Histogram(_Family):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        reservoir: int = 256,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise MetricError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise MetricError(f"duplicate bucket bounds in {buckets!r}")
        self.bounds = bounds
        self.reservoir = reservoir

    def _make_child(self) -> HistogramChild:
        return HistogramChild(self.bounds, self.reservoir)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    def snapshot(self) -> FamilySnapshot:
        snap = FamilySnapshot(name=self.name, kind=self.kind, help=self.help)
        for labels, child in self._items():
            for bound, cumulative in child.cumulative_buckets():
                le = "+Inf" if bound == float("inf") else _format_value(bound)
                snap.samples.append(
                    Sample(self.name + "_bucket", labels + (("le", le),),
                           cumulative)
                )
            snap.samples.append(Sample(self.name + "_sum", labels, child.sum))
            snap.samples.append(
                Sample(self.name + "_count", labels, child.count)
            )
        return snap


def _format_value(value: float) -> str:
    """Shortest exact-ish rendering (``0.005`` not ``0.005000``)."""
    text = repr(value)
    return text[:-2] if text.endswith(".0") else text


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Families by name, get-or-create, plus collect-time callbacks.

    Re-requesting a name returns the existing family; requesting it with a
    different type or label set is an error (it would corrupt the
    exposition).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}
        self._callbacks: list[Callable[[], Iterable[FamilySnapshot]]] = []

    # -- family accessors ------------------------------------------------------

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        reservoir: int = 256,
    ) -> Histogram:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                self._check_match(existing, Histogram, name, labelnames)
                return existing  # type: ignore[return-value]
            family = Histogram(name, help, labelnames, buckets=buckets,
                               reservoir=reservoir)
            self._families[name] = family
            return family

    def _get_or_create(self, cls, name: str, help: str, labelnames):
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                self._check_match(existing, cls, name, labelnames)
                return existing
            family = cls(name, help, labelnames)
            self._families[name] = family
            return family

    @staticmethod
    def _check_match(existing: _Family, cls, name: str, labelnames) -> None:
        if type(existing) is not cls:
            raise MetricError(
                f"{name!r} already registered as {existing.kind}, "
                f"requested {cls.kind}"
            )
        if existing.labelnames != tuple(labelnames):
            raise MetricError(
                f"{name!r} already registered with labels "
                f"{existing.labelnames}, requested {tuple(labelnames)}"
            )

    # -- callbacks -------------------------------------------------------------

    def register_callback(
        self, fn: Callable[[], Iterable[FamilySnapshot]]
    ) -> Callable[[], Iterable[FamilySnapshot]]:
        """Run *fn* at every collect; it returns :class:`FamilySnapshot`
        objects for values derived on the fly (cache stats, queue depths).
        Returns *fn* as the unregistration handle."""
        with self._lock:
            self._callbacks.append(fn)
        return fn

    def unregister_callback(self, fn) -> None:
        with self._lock:
            if fn in self._callbacks:
                self._callbacks.remove(fn)

    # -- collection ------------------------------------------------------------

    def collect(self) -> list[FamilySnapshot]:
        """Every family's snapshot plus callback-derived snapshots, sorted
        by name for a stable exposition."""
        with self._lock:
            families = list(self._families.values())
            callbacks = list(self._callbacks)
        snaps = [family.snapshot() for family in families]
        for fn in callbacks:
            snaps.extend(fn())
        return sorted(snaps, key=lambda snap: snap.name)

    def family_total(self, name: str) -> float:
        """Sum of a family's children (histograms sum their observation
        counts); 0.0 if the family does not exist yet.  This is what a
        rolling-window fold samples: the label-agnostic total of a stream,
        without creating families or children as a side effect."""
        with self._lock:
            family = self._families.get(name)
        if family is None:
            return 0.0
        total = 0.0
        for _labels, child in family._items():
            if isinstance(child, HistogramChild):
                total += child.count
            else:
                total += child.value  # type: ignore[union-attr]
        return total

    def purge_labels(self, **labelvalues: object) -> int:
        """Drop, across every family, all children matching **all** of the
        given ``label=value`` pairs that each family carries; returns the
        number of series removed.

        The topology-change hook: when a node is drained or a group merged
        away, its labelled counters/gauges would otherwise live in the
        exposition forever, growing the scrape output unboundedly across
        scale events.  Per family, only the subset of pairs it carries is
        matched — a ``purge_labels(node="g0.n1", tier="block_cache")``
        prunes ``(node, tier)``-keyed cache series and ``(node,)``-keyed
        durability series alike — and families carrying none of the given
        labels are untouched.  Matching is conjunctive: a multi-pair purge
        never removes a series that differs on any requested label the
        family carries.
        """
        pairs = {label: str(value) for label, value in labelvalues.items()}
        with self._lock:
            families = list(self._families.values())
        return sum(family.purge_matching(pairs) for family in families)

    def value(self, name: str, **labelvalues: object) -> float:
        """Test/debug helper: the current value of one counter/gauge child
        (0.0 if the family or child does not exist yet)."""
        with self._lock:
            family = self._families.get(name)
        if family is None:
            return 0.0
        try:
            child = family.labels(**labelvalues)
        except MetricError:
            return 0.0
        return child.value  # type: ignore[union-attr]


_default = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-global registry the cluster and gateway share."""
    return _default
