"""Rolling-window SLI aggregation and the continuous health monitor.

The observability layers so far are point-in-time: a span tree explains one
query, a counter accumulates forever.  Operating a cluster needs the middle
timescale — *"over the last few windows of traffic, what fraction of
answers were complete, and how slow was the p99?"* — which is what a
service-level indicator (SLI) is.  This module provides:

* :class:`RollingWindow` — a bounded sliding time window of ``(time,
  value, good)`` observations with exact percentiles over the window;
* :class:`SLIRecorder` — named SLIs, each folded into several window
  widths at once (the classic 1s/10s/60s triple by default; chaos runs
  auto-scale the widths to the scripted failure horizon);
* :class:`RegistryFold` — samples :class:`~repro.obs.metrics.
  MetricsRegistry` counter/gauge families at each tick and folds the
  deltas into rate SLIs, so the existing hot-path instrumentation
  (queries, sheds, hedged retries, chaos events, balance gauges) becomes
  windowed without double bookkeeping;
* :class:`HealthMonitor` — the composition: one recorder, one
  :class:`~repro.obs.slo.SLOEngine`, one
  :class:`~repro.obs.events.EventLog`, ticked either by a simulated
  process (chaos runs) or lazily on access (the wall-clock gateway), with
  a Prometheus install hook exporting SLI windows and alert states.

Windows operate on whatever clock the caller feeds ``now`` from — the
simulated cluster clock inside a run, the process monotonic clock at the
gateway — which is why nothing here reads a clock itself.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.obs.events import EventLog, default_event_log
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    FamilySnapshot,
    MetricsRegistry,
    Sample,
    _format_value,
    default_registry,
)
from repro.obs.slo import SLO, SLOEngine, default_slos
from repro.obs.timer import format_duration


@dataclass(frozen=True)
class WindowStats:
    """One window's aggregate at one instant."""

    width: float
    count: int
    good: int
    bad: int
    mean: float
    max: float
    p50: float
    p90: float
    p99: float

    @property
    def good_ratio(self) -> float:
        return self.good / self.count if self.count else 1.0

    @property
    def bad_fraction(self) -> float:
        return self.bad / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "width": self.width,
            "count": self.count,
            "good": self.good,
            "bad": self.bad,
            "good_ratio": round(self.good_ratio, 6),
            "mean": self.mean,
            "max": self.max,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
        }


def _percentile(ordered: Sequence[float], p: float) -> float:
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, round(p / 100.0 * (len(ordered) - 1))))
    return ordered[rank]


class RollingWindow:
    """A sliding time window of observations.

    Observations older than ``width`` (relative to the ``now`` each reader
    supplies) are pruned; ``max_samples`` additionally bounds memory under
    pathological rates.  Not internally locked — the owning
    :class:`SLIRecorder` serialises access.
    """

    __slots__ = ("width", "_samples", "last_bad_at")

    def __init__(self, width: float, max_samples: int = 4096) -> None:
        if width <= 0:
            raise ValueError(f"window width must be positive, got {width}")
        self.width = width
        self._samples: deque[tuple[float, float, bool]] = deque(
            maxlen=max_samples
        )
        self.last_bad_at: float | None = None

    def observe(self, now: float, value: float, good: bool = True) -> None:
        self._samples.append((float(now), float(value), bool(good)))
        if not good:
            self.last_bad_at = float(now)
        self._prune(now)

    def _prune(self, now: float) -> None:
        cutoff = now - self.width
        samples = self._samples
        while samples and samples[0][0] <= cutoff:
            samples.popleft()

    def stats(self, now: float) -> WindowStats:
        self._prune(now)
        values = sorted(value for _t, value, _g in self._samples)
        good = sum(1 for _t, _v, ok in self._samples if ok)
        count = len(self._samples)
        return WindowStats(
            width=self.width,
            count=count,
            good=good,
            bad=count - good,
            mean=(sum(values) / count) if count else 0.0,
            max=values[-1] if values else 0.0,
            p50=_percentile(values, 50),
            p90=_percentile(values, 90),
            p99=_percentile(values, 99),
        )

    def bad_fraction(self, now: float) -> float:
        self._prune(now)
        if not self._samples:
            return 0.0
        bad = sum(1 for _t, _v, ok in self._samples if not ok)
        return bad / len(self._samples)

    def exceed_fraction(self, now: float, threshold: float) -> float:
        """Fraction of windowed values strictly above *threshold*."""
        self._prune(now)
        if not self._samples:
            return 0.0
        over = sum(1 for _t, value, _g in self._samples if value > threshold)
        return over / len(self._samples)

    def count(self, now: float) -> int:
        self._prune(now)
        return len(self._samples)

    def values(self, now: float) -> list[float]:
        """The raw windowed values at *now*, observation order."""
        self._prune(now)
        return [value for _t, value, _g in self._samples]


class SLI:
    """One named indicator folded into every recorder window width."""

    def __init__(self, name: str, widths: Sequence[float]) -> None:
        self.name = name
        self.windows = {width: RollingWindow(width) for width in widths}
        #: trace ids of recent *bad* observations — what an alert carries
        #: so an investigation can jump straight to a span tree.
        self.bad_trace_ids: deque[str] = deque(maxlen=8)

    def observe(
        self, now: float, value: float, good: bool = True,
        trace_id: str | None = None,
    ) -> None:
        for window in self.windows.values():
            window.observe(now, value, good=good)
        if not good and trace_id:
            self.bad_trace_ids.append(trace_id)

    def window(self, width: float) -> RollingWindow:
        try:
            return self.windows[width]
        except KeyError:
            raise KeyError(
                f"SLI {self.name!r} has no {width}s window "
                f"(has {sorted(self.windows)})"
            ) from None

    @property
    def last_bad_at(self) -> float | None:
        stamps = [w.last_bad_at for w in self.windows.values()
                  if w.last_bad_at is not None]
        return max(stamps) if stamps else None


class SLIRecorder:
    """Thread-safe registry of named SLIs sharing one set of window widths."""

    def __init__(self, windows: Sequence[float] = (1.0, 10.0, 60.0)) -> None:
        widths = tuple(sorted(set(float(w) for w in windows)))
        if not widths:
            raise ValueError("recorder needs at least one window width")
        self.windows = widths
        self._lock = threading.Lock()
        self._slis: dict[str, SLI] = {}

    def sli(self, name: str) -> SLI:
        with self._lock:
            sli = self._slis.get(name)
            if sli is None:
                sli = SLI(name, self.windows)
                self._slis[name] = sli
            return sli

    def observe(
        self, name: str, now: float, value: float, good: bool = True,
        trace_id: str | None = None,
    ) -> None:
        sli = self.sli(name)
        with self._lock:
            sli.observe(now, value, good=good, trace_id=trace_id)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._slis)

    def snapshot(self, now: float) -> dict:
        """``{sli: {window_label: window_stats_dict}}`` at *now*."""
        with self._lock:
            slis = dict(self._slis)
        out: dict[str, dict] = {}
        for name in sorted(slis):
            sli = slis[name]
            with self._lock:
                out[name] = {
                    format_duration(width): sli.windows[width].stats(now).to_dict()
                    for width in self.windows
                }
        return out

    def window_values(self, now: float) -> dict[str, dict[str, list[float]]]:
        """``{sli: {window_label: [raw values]}}`` at *now* — what the
        cumulative-histogram export buckets."""
        with self._lock:
            slis = dict(self._slis)
        out: dict[str, dict[str, list[float]]] = {}
        for name in sorted(slis):
            sli = slis[name]
            with self._lock:
                out[name] = {
                    format_duration(width): sli.windows[width].values(now)
                    for width in self.windows
                }
        return out


#: Default registry streams folded into rate SLIs each tick:
#: ``(sli_name, family_name, mode)`` with mode ``"delta"`` (counter
#: increments since the previous tick) or ``"level"`` (current gauge value).
DEFAULT_FOLDS: tuple[tuple[str, str, str], ...] = (
    ("rate:queries", "repro_queries_total", "delta"),
    ("rate:admission_sheds", "repro_admission_rejections_total", "delta"),
    ("rate:hedged_retries", "repro_hedged_retries_total", "delta"),
    ("rate:node_failures", "repro_node_failures_total", "delta"),
    ("rate:chaos_events", "repro_chaos_events_total", "delta"),
    ("rate:alignments", "repro_query_funnel_total", "delta"),
    ("level:balance_node_cv", "repro_balance_node_cv", "level"),
    ("level:balance_group_cv", "repro_balance_group_cv", "level"),
)


class RegistryFold:
    """Samples metric families at each tick and records windowed deltas.

    Counters become per-tick increment SLIs (a windowed rate once divided
    by the tick interval); gauges are recorded at their current level.
    Families that do not exist yet sample as 0 and start counting when
    they appear — folding never creates families.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        folds: Iterable[tuple[str, str, str]] = DEFAULT_FOLDS,
    ) -> None:
        self.registry = registry
        self.folds = tuple(folds)
        self._last: dict[str, float] = {}

    def tick(self, recorder: SLIRecorder, now: float) -> None:
        for sli_name, family, mode in self.folds:
            total = self.registry.family_total(family)
            if mode == "delta":
                previous = self._last.get(family)
                self._last[family] = total
                if previous is None:
                    continue  # first tick: no interval to attribute to
                recorder.observe(sli_name, now, max(0.0, total - previous))
            else:
                recorder.observe(sli_name, now, total)


@dataclass
class HealthMonitor:
    """Continuous health: SLIs + SLO burn-rate alerting + event tail.

    One monitor watches one stream of traffic on one clock: the query
    engine attaches a sim-clock monitor to a chaos run (ticked by a
    simulated process), the serving gateway holds a wall-clock monitor
    ticked lazily whenever HEALTH/ALERTS/STATS are read.

    Parameters
    ----------
    windows:
        Rolling window widths, ascending.  ``windows[0]`` is the fast
        burn window, ``windows[-1]`` the slow one.
    slos:
        Declarative objectives; defaults to
        :func:`repro.obs.slo.default_slos` over ``windows``.
    latency_threshold:
        When set, latency/turnaround observations above it count *bad*
        (feeds the latency SLO).
    event_log:
        Where emitted/correlated events live; defaults to the process
        global log.
    label:
        ``source`` label value on exported Prometheus families (so the
        engine monitor and several gateway monitors can share a registry).
    """

    windows: Sequence[float] = (1.0, 10.0, 60.0)
    slos: Sequence[SLO] | None = None
    latency_threshold: float | None = None
    event_log: EventLog | None = None
    label: str = "engine"
    interval: float | None = None
    history_size: int = 128

    def __post_init__(self) -> None:
        widths = tuple(sorted(set(float(w) for w in self.windows)))
        self.windows = widths
        self.fast_window = widths[0]
        self.slow_window = widths[-1]
        if self.interval is None:
            self.interval = self.fast_window / 2.0
        self.events = (
            self.event_log if self.event_log is not None else default_event_log()
        )
        self.recorder = SLIRecorder(widths)
        slos = (
            tuple(self.slos)
            if self.slos is not None
            else default_slos(widths, latency_threshold=self.latency_threshold)
        )
        self.slo_engine = SLOEngine(self.recorder, slos, self.events)
        self.fold: RegistryFold | None = None
        self.backlog_fn: Callable[[], int] | None = None
        self.history: deque[dict] = deque(maxlen=self.history_size)
        self.last_now: float = 0.0
        self._registry: MetricsRegistry | None = None
        self._collect_cb = None
        self._lock = threading.Lock()

    # -- construction helpers --------------------------------------------------

    @classmethod
    def for_chaos_run(
        cls,
        horizon: float,
        arrival_interval: float = 0.0,
        event_log: EventLog | None = None,
        latency_threshold: float | None = None,
    ) -> "HealthMonitor":
        """A sim-clock monitor scaled to a scripted failure *horizon*.

        The fast window must hold a few arrivals (or burn rates flap on
        sparse traffic) and the slow window should span the whole failure
        story, so both derive from the schedule rather than wall-clock
        defaults.
        """
        horizon = max(horizon, 1e-6)
        fast = max(horizon / 8.0, 2.5 * arrival_interval)
        slow = max(horizon, 4.0 * fast)
        mid = (fast * slow) ** 0.5
        return cls(
            windows=(fast, mid, slow),
            event_log=event_log,
            latency_threshold=latency_threshold,
        )

    # -- observation -----------------------------------------------------------

    def observe_query(
        self,
        now: float,
        turnaround: float,
        coverage: float,
        degraded: bool,
        trace_id: str | None = None,
    ) -> None:
        """Fold one completed cluster query into the SLIs (sim clock)."""
        good = not degraded
        self.recorder.observe("availability", now, 1.0 if good else 0.0,
                              good=good, trace_id=trace_id)
        self.recorder.observe("coverage", now, coverage,
                              good=coverage >= 1.0, trace_id=trace_id)
        slow = (
            self.latency_threshold is not None
            and turnaround > self.latency_threshold
        )
        self.recorder.observe("turnaround", now, turnaround,
                              good=not slow, trace_id=trace_id)

    def observe_request(
        self,
        now: float,
        latency: float,
        degraded: bool = False,
        trace_id: str | None = None,
    ) -> None:
        """Fold one gateway request into the SLIs (wall clock)."""
        good = not degraded
        self.recorder.observe("availability", now, 1.0 if good else 0.0,
                              good=good, trace_id=trace_id)
        slow = (
            self.latency_threshold is not None
            and latency > self.latency_threshold
        )
        self.recorder.observe("turnaround", now, latency,
                              good=not slow, trace_id=trace_id)

    # -- ticking ---------------------------------------------------------------

    def attach_registry_fold(
        self,
        registry: MetricsRegistry | None = None,
        folds: Iterable[tuple[str, str, str]] = DEFAULT_FOLDS,
    ) -> None:
        """Fold *registry* streams into rate SLIs at every tick."""
        self.fold = RegistryFold(
            registry if registry is not None else default_registry(), folds
        )

    def tick(self, now: float) -> list:
        """One evaluation step at *now*: fold registry deltas, sample the
        repair backlog, evaluate every SLO, and append a dashboard frame.
        Returns the alert transitions this tick produced."""
        with self._lock:
            self.last_now = max(self.last_now, now)
            if self.fold is not None:
                self.fold.tick(self.recorder, now)
            if self.backlog_fn is not None:
                backlog = float(self.backlog_fn())
                self.recorder.observe("repair_backlog", now, backlog,
                                      good=backlog == 0)
            transitions = self.slo_engine.evaluate(now)
            self.history.append(self.snapshot_locked(now))
            return transitions

    def tick_proc(self, sim, stop_at: float):
        """Generator process ticking this monitor on a simulation clock
        until *stop_at* (monitors must terminate or the heap never
        drains)."""
        while sim.now + self.interval <= stop_at:
            yield self.interval
            self.tick(sim.now)

    # -- reading ---------------------------------------------------------------

    def snapshot(self, now: float | None = None) -> dict:
        with self._lock:
            return self.snapshot_locked(
                now if now is not None else self.last_now
            )

    def snapshot_locked(self, now: float) -> dict:
        """The full dashboard frame at *now* (caller holds the lock or is
        the tick path)."""
        return {
            "now": now,
            "windows": [format_duration(w) for w in self.windows],
            "slis": self.recorder.snapshot(now),
            "alerts": self.slo_engine.states_dict(now),
            "transitions": [t.to_dict() for t in self.slo_engine.transitions],
            "events": [e.to_dict() for e in self.events.tail(20)],
        }

    def alerts_firing(self) -> list[str]:
        return self.slo_engine.firing()

    # -- Prometheus export -----------------------------------------------------

    def install(self, registry: MetricsRegistry) -> None:
        """Export SLI windows and alert states as collect-time families."""
        if self._collect_cb is not None:
            return
        self._registry = registry
        self._collect_cb = registry.register_callback(self._collect)

    def uninstall(self) -> None:
        if self._collect_cb is not None and self._registry is not None:
            self._registry.unregister_callback(self._collect_cb)
        self._collect_cb = None
        self._registry = None

    _ALERT_LEVELS = {"ok": 0.0, "resolved": 0.0, "warning": 1.0, "critical": 2.0}

    #: bucket upper bounds for the cumulative SLI-window histogram export;
    #: the latency-shaped defaults plus coarse tails for rate/level SLIs
    #: whose values run past 10 (counts per tick, burn rates).
    SLI_BUCKETS: tuple[float, ...] = DEFAULT_BUCKETS + (25.0, 100.0, 1000.0)

    def _collect(self) -> Iterable[FamilySnapshot]:
        now = self.last_now
        ratio = FamilySnapshot(
            name="repro_sli_window_good_ratio", kind="gauge",
            help="Fraction of good observations per SLI rolling window",
        )
        quantiles = FamilySnapshot(
            name="repro_sli_window_value", kind="gauge",
            help="SLI value aggregates (quantiles, mean, max) per rolling window",
        )
        counts = FamilySnapshot(
            name="repro_sli_window_count", kind="gauge",
            help="Observations currently inside each SLI rolling window",
        )
        snapshot = self.recorder.snapshot(now)
        for sli_name, per_window in snapshot.items():
            for window_label, stats in per_window.items():
                base = (
                    ("source", self.label),
                    ("sli", sli_name),
                    ("window", window_label),
                )
                counts.samples.append(Sample(
                    counts.name, base, float(stats["count"])
                ))
                ratio.samples.append(Sample(
                    ratio.name, base, float(stats["good_ratio"])
                ))
                for stat in ("p50", "p90", "p99", "mean", "max"):
                    quantiles.samples.append(Sample(
                        quantiles.name, base + (("stat", stat),),
                        float(stats[stat]),
                    ))
        # Standard cumulative histogram series over the same windows, so an
        # external Prometheus/Grafana can run histogram_quantile() natively
        # instead of trusting the precomputed stat gauges above.
        # (named _dist, not the bare prefix: the histogram's implicit
        # _count series must not collide with the repro_sli_window_count
        # gauge above)
        histogram = FamilySnapshot(
            name="repro_sli_window_dist", kind="histogram",
            help="SLI value distribution per rolling window "
                 "(cumulative buckets)",
        )
        for sli_name, per_window in self.recorder.window_values(now).items():
            for window_label, values in per_window.items():
                base = (
                    ("source", self.label),
                    ("sli", sli_name),
                    ("window", window_label),
                )
                running = 0
                remaining = sorted(values)
                idx = 0
                for bound in self.SLI_BUCKETS:
                    while idx < len(remaining) and remaining[idx] <= bound:
                        idx += 1
                    running = idx
                    histogram.samples.append(Sample(
                        histogram.name + "_bucket",
                        base + (("le", _format_value(bound)),),
                        float(running),
                    ))
                histogram.samples.append(Sample(
                    histogram.name + "_bucket",
                    base + (("le", "+Inf"),),
                    float(len(remaining)),
                ))
                histogram.samples.append(Sample(
                    histogram.name + "_sum", base, float(sum(remaining)),
                ))
                histogram.samples.append(Sample(
                    histogram.name + "_count", base, float(len(remaining)),
                ))
        burn = FamilySnapshot(
            name="repro_slo_burn_rate", kind="gauge",
            help="SLO error-budget burn rate per evaluation window",
        )
        state = FamilySnapshot(
            name="repro_alert_state", kind="gauge",
            help="Alert severity per SLO (0 ok, 1 warning, 2 critical)",
        )
        for name, alert in self.slo_engine.states_dict(now).items():
            labels = (("source", self.label), ("slo", name))
            state.samples.append(Sample(
                state.name, labels,
                self._ALERT_LEVELS.get(alert["state"], 0.0),
            ))
            burn.samples.append(Sample(
                burn.name, labels + (("window", "fast"),),
                float(alert["burn_fast"]),
            ))
            burn.samples.append(Sample(
                burn.name, labels + (("window", "slow"),),
                float(alert["burn_slow"]),
            ))
        transitions = FamilySnapshot(
            name="repro_alert_transitions_total", kind="counter",
            help="Alert state transitions by SLO and new state",
        )
        for (slo_name, to), count in sorted(
            self.slo_engine.transition_counts().items()
        ):
            transitions.samples.append(Sample(
                transitions.name,
                (("source", self.label), ("slo", slo_name), ("to", to)),
                float(count),
            ))
        return [state, burn, counts, ratio, quantiles, histogram, transitions]
