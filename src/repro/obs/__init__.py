"""Observability: tracing, metrics, exporters, and continuous health.

The paper's whole evaluation (section VI) is about *where time goes* —
routing, intra-group fan-out, local vp-tree k-NN, extension, and two levels
of aggregation.  This package makes that visible on a live deployment:

* :mod:`repro.obs.trace` — span trees (:class:`TraceContext` /
  :class:`Span`) propagated from the serving gateway through the query
  engine down to per-node subqueries, stamped with *both* wall-clock and
  sim-clock times;
* :mod:`repro.obs.metrics` — a thread-safe registry of counters, gauges,
  and bucketed histograms with labels; one process-global default registry
  shared by the cluster hot paths and the serving gateway;
* :mod:`repro.obs.events` — a bounded structured event log (node deaths,
  repairs, slow queries, alerts) with trace-id correlation, replayable
  deterministically under ``CHAOS_SEED``;
* :mod:`repro.obs.health` — rolling-window SLI aggregation and the
  :class:`HealthMonitor` that composes SLIs, SLOs, and the event log into
  one continuously-evaluated health picture;
* :mod:`repro.obs.slo` — declarative SLOs with multi-window burn-rate
  alerting, every alert correlated with its suspected chaos-event cause;
* :mod:`repro.obs.analyze` — trace analytics: span-shape fingerprints,
  slow-query family clustering, and critical-path profiling (the ANALYZE
  verb and ``repro analyze`` / ``repro explore`` are built on it);
* :mod:`repro.obs.profile` — two-sided continuous profiling: a sampling
  wall-clock profiler whose stacks are tagged with the active span's
  pipeline stage, and a deterministic cost profiler charging sim-mode
  resource counters to (stage, code-site) pairs (the PROFILE verb,
  ``repro profile``, and ``repro bench diff`` are built on it);
* :mod:`repro.obs.dashboard` — the plain-text frame renderer behind
  ``repro watch``;
* :mod:`repro.obs.export` — Prometheus text exposition and Chrome
  trace-event JSON (loadable in ``chrome://tracing`` / Perfetto);
* :mod:`repro.obs.timer` — the one wall-clock primitive (and the benchmark
  :class:`Stopwatch`) every layer reads.

DESIGN.md's "three clocks" subsection explains how wall-clock time,
sim-clock time, and trace timestamps relate.
"""

from repro.obs.analyze import (
    TraceFingerprint,
    cluster_slow_queries,
    critical_path,
    critical_path_table,
    merge_critical_tables,
    trace_fingerprint,
)
from repro.obs.events import Event, EventLog, default_event_log
from repro.obs.export import (
    chrome_trace_events,
    prometheus_text,
    write_chrome_trace,
)
from repro.obs.health import (
    HealthMonitor,
    RollingWindow,
    SLIRecorder,
    WindowStats,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from repro.obs.profile import (
    CostProfiler,
    Profiler,
    SamplingProfiler,
    charge,
    install_cost_profiler,
    uninstall_cost_profiler,
)
from repro.obs.slo import SLO, AlertTransition, SLOEngine, default_slos
from repro.obs.timer import Stopwatch, format_duration, wall_clock
from repro.obs.trace import NO_SPAN, Span, TraceContext

__all__ = [
    "AlertTransition",
    "CostProfiler",
    "Counter",
    "Event",
    "EventLog",
    "Gauge",
    "HealthMonitor",
    "Histogram",
    "MetricsRegistry",
    "NO_SPAN",
    "Profiler",
    "RollingWindow",
    "SLIRecorder",
    "SLO",
    "SLOEngine",
    "SamplingProfiler",
    "Span",
    "Stopwatch",
    "TraceContext",
    "TraceFingerprint",
    "WindowStats",
    "charge",
    "chrome_trace_events",
    "cluster_slow_queries",
    "critical_path",
    "critical_path_table",
    "default_event_log",
    "default_registry",
    "default_slos",
    "format_duration",
    "install_cost_profiler",
    "merge_critical_tables",
    "prometheus_text",
    "trace_fingerprint",
    "uninstall_cost_profiler",
    "wall_clock",
    "write_chrome_trace",
]
