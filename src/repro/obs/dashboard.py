"""Text rendering for ``repro watch`` — the terminal health dashboard.

The renderer is deliberately dumb: it takes the plain-dict snapshot a
:class:`~repro.obs.health.HealthMonitor` produces (the same dict the serve
``HEALTH``/``ALERTS`` verbs ship over the wire) and lays it out as fixed
sections — alert banner, SLI window grid, recent alert transitions, event
tail.  No curses, no ANSI requirements: a frame is a plain string, so the
``--once`` CI mode, the live loop (which just reprints frames), and tests
all share one code path.
"""

from __future__ import annotations

from typing import Iterable

_STATE_MARK = {
    "ok": "  ok  ",
    "warning": " WARN ",
    "critical": " CRIT ",
    "resolved": "rsolvd",
}


def _rule(title: str, width: int) -> str:
    pad = max(0, width - len(title) - 4)
    return f"== {title} " + "=" * pad


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:8.2f}ms"


def render_alerts(alerts: dict, width: int = 96) -> list[str]:
    lines = [_rule("alerts", width)]
    for name in sorted(alerts):
        alert = alerts[name]
        mark = _STATE_MARK.get(alert["state"], alert["state"][:6])
        line = (
            f"[{mark}] {name:<16} burn fast={alert['burn_fast']:8.2f} "
            f"slow={alert['burn_slow']:8.2f}"
        )
        cause = alert.get("cause")
        if cause and alert["state"] != "ok":
            line += f"  suspect: {cause.get('kind')} {cause.get('actor')}"
        trace_ids = alert.get("trace_ids") or []
        if trace_ids and alert["state"] != "ok":
            line += f"  e.g. {trace_ids[0]}"
        lines.append(line)
    if len(lines) == 1:
        lines.append("(no SLOs configured)")
    return lines


def _fmt_bytes(count: float) -> str:
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024
    return f"{value:.1f}GiB"  # pragma: no cover - loop always returns


def render_tier_cache(storage: dict, width: int = 96) -> list[str]:
    """The tier-cache panel: page-cache hit rate, pinned pages, cold-read
    device traffic (the ``repro_tier_cache_*`` / tier occupancy rollup the
    gateway ships in its ALERTS frame)."""
    lines = [_rule("tier cache", width)]
    if not storage.get("tiered"):
        lines.append("(deployment is all-RAM; nothing spilled)")
        return lines
    hits = float(storage.get("cache_hits", 0.0))
    misses = float(storage.get("cache_misses", 0.0))
    lookups = hits + misses
    hit_rate = (hits / lookups * 100.0) if lookups else 0.0
    lines.append(
        f"hit rate {hit_rate:5.1f}%  ({int(hits)} hits / "
        f"{int(misses)} misses, {int(storage.get('cache_evictions', 0))} "
        f"evictions)"
    )
    lines.append(
        f"resident {int(storage.get('cache_resident_pages', 0))} pages "
        f"(+{int(storage.get('pinned_pages', 0))} pinned vantage), "
        f"{storage.get('resident_fraction', 0.0) * 100:.1f}% of raw bytes "
        f"in RAM"
    )
    lines.append(
        f"cold reads {_fmt_bytes(storage.get('cold_read_bytes', 0))} in "
        f"{int(storage.get('cold_read_seeks', 0))} seeks; "
        f"{_fmt_bytes(storage.get('bytes_on_disk', 0))} on disk across "
        f"{int(storage.get('spilled_nodes', 0))} nodes "
        f"(x{storage.get('compression_ratio', 0.0):.2f} compression)"
    )
    return lines


def render_hotspots(profile: dict, width: int = 96, limit: int = 5) -> list[str]:
    """The hotspots panel: top pipeline stages and functions by sampled
    wall-clock share, from the live PROFILE snapshot the gateway ships in
    its ALERTS frame while a profiler is running."""
    lines = [_rule("hotspots", width)]
    sampling = profile.get("sampling") or {}
    samples = int(sampling.get("samples", 0))
    if not samples:
        lines.append("(profiler running; no stacks sampled yet)")
        return lines
    lines.append(
        f"{samples} stacks @ {sampling.get('hz', 0):g} Hz over "
        f"{sampling.get('elapsed_s', 0.0):.1f}s "
        f"(sampler overhead {100 * sampling.get('overhead', 0.0):.2f}%)"
    )
    stages = sampling.get("stages") or []
    if stages:
        shown = stages[:limit]
        lines.append("stages:    " + "  ".join(
            f"{row['stage']} {100 * row['share']:.1f}%" for row in shown
        ))
    functions = sampling.get("top_functions") or []
    for row in functions[:limit]:
        lines.append(
            f"  {100 * row['share']:5.1f}%  {row['function']}"
        )
    return lines


def render_slis(slis: dict, windows: Iterable[str], width: int = 96) -> list[str]:
    window_labels = list(windows)
    lines = [_rule("SLIs", width)]
    header = f"{'sli':<22}" + "".join(
        f"| {label:^28} " for label in window_labels
    )
    sub = f"{'':<22}" + "".join(
        f"| {'n':>5} {'good%':>6} {'p50':>7} {'p99':>7} "
        for _ in window_labels
    )
    lines.append(header)
    lines.append(sub)
    for name in sorted(slis):
        row = f"{name:<22}"
        for label in window_labels:
            stats = slis[name].get(label)
            if stats is None or not stats["count"]:
                row += f"| {'-':>5} {'-':>6} {'-':>7} {'-':>7} "
                continue
            row += (
                f"| {stats['count']:>5} {stats['good_ratio'] * 100:>5.1f}% "
                f"{stats['p50'] * 1e3:>6.2f}m {stats['p99'] * 1e3:>6.2f}m "
            )
        lines.append(row)
    if len(lines) == 3:
        lines.append("(no observations yet)")
    return lines


def render_transitions(transitions: list, width: int = 96,
                       limit: int = 8) -> list[str]:
    lines = [_rule("recent alert transitions", width)]
    for t in transitions[-limit:]:
        line = (
            f"{_fmt_ms(t['time'])}  {t['slo']:<16} "
            f"{t['from']:>8} -> {t['to']:<8}"
        )
        cause = t.get("cause")
        if cause:
            line += f"  suspect: {cause.get('kind')} {cause.get('actor')}"
        lines.append(line)
    if len(lines) == 1:
        lines.append("(none)")
    return lines


def render_events(events: list, width: int = 96, limit: int = 12) -> list[str]:
    lines = [_rule("event tail", width)]
    for event in events[-limit:]:
        when = event.get("sim_time")
        clock = _fmt_ms(when) if when is not None else "      wall"
        line = (
            f"{clock}  {event['kind']:>16}  "
            f"{event['actor']}: {event['message']}"
        )
        if event.get("trace_id"):
            line += f"  ({event['trace_id']})"
        lines.append(line)
    if len(lines) == 1:
        lines.append("(empty)")
    return lines


def render_frame(snapshot: dict, width: int = 96) -> str:
    """One full dashboard frame from a monitor snapshot dict."""
    firing = sorted(
        name for name, alert in snapshot.get("alerts", {}).items()
        if alert["state"] in ("warning", "critical")
    )
    banner = "FIRING: " + ", ".join(firing) if firing else "all objectives met"
    lines = [
        f"repro watch @ {_fmt_ms(snapshot.get('now', 0.0)).strip()}  -- {banner}",
        "",
    ]
    lines.extend(render_alerts(snapshot.get("alerts", {}), width))
    lines.append("")
    storage = snapshot.get("storage")
    if storage is not None:
        lines.extend(render_tier_cache(storage, width))
        lines.append("")
    profile = snapshot.get("profile")
    if profile is not None:
        lines.extend(render_hotspots(profile, width))
        lines.append("")
    lines.extend(render_slis(
        snapshot.get("slis", {}), snapshot.get("windows", []), width
    ))
    lines.append("")
    lines.extend(render_transitions(snapshot.get("transitions", []), width))
    lines.append("")
    lines.extend(render_events(snapshot.get("events", []), width))
    return "\n".join(lines)
