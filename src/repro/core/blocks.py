"""Inverted-index blocks (paper section V-A.1).

A block is a fixed-length segment of a reference sequence produced by a
stride-1 sliding window — "the basic unit of computation and storage in the
system".  Each block carries the metadata the query path needs: owning
sequence id, start/end positions, and references to the previous/next block
(used to lengthen anchors during extension).

Blocks do not copy residues: their ``codes`` are views into the owning
record's code array, held by the :class:`BlockStore`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.seq.records import SequenceRecord, SequenceSet


@dataclass(frozen=True)
class InvertedIndexBlock:
    """Metadata of one indexed segment.

    ``prev_id``/``next_id`` are block ids (or ``-1`` at sequence ends) — the
    neighbour references of section V-A.1.
    """

    block_id: int
    seq_id: str
    start: int
    end: int
    prev_id: int
    next_id: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty block span [{self.start}, {self.end})")

    @property
    def length(self) -> int:
        return self.end - self.start


class BlockStore:
    """All blocks of a database plus id-based lookup and code access.

    The store is the reproduction's stand-in for the distributed block
    storage: every node can resolve a block id; the *placement* of blocks on
    nodes (and the cost of remote access) is handled by the cluster layer.
    """

    def __init__(self, database: SequenceSet, segment_length: int) -> None:
        if segment_length < 2:
            raise ValueError(f"segment_length must be >= 2, got {segment_length}")
        self.database = database
        self.segment_length = int(segment_length)
        self.blocks: list[InvertedIndexBlock] = []
        self._record_of_block: list[SequenceRecord] = []
        self._range_of_seq: dict[str, tuple[int, int]] = {}
        for record in database:
            self._ingest(record)

    def _ingest(self, record: SequenceRecord) -> None:
        w = self.segment_length
        length = len(record)
        if length < w:
            # Sequences shorter than one window contribute no blocks; real
            # reference sets contain a few of these and Mendel simply cannot
            # seed in them (same limitation as word-based tools).
            self._range_of_seq[record.seq_id] = (len(self.blocks), len(self.blocks))
            return
        first_id = len(self.blocks)
        count = length - w + 1  # stride-1 windows (the paper counts "L - k")
        for offset in range(count):
            block_id = first_id + offset
            self.blocks.append(
                InvertedIndexBlock(
                    block_id=block_id,
                    seq_id=record.seq_id,
                    start=offset,
                    end=offset + w,
                    prev_id=block_id - 1 if offset > 0 else -1,
                    next_id=block_id + 1 if offset < count - 1 else -1,
                )
            )
            self._record_of_block.append(record)
        self._range_of_seq[record.seq_id] = (first_id, first_id + count)

    # -- access ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.blocks)

    def block(self, block_id: int) -> InvertedIndexBlock:
        if not 0 <= block_id < len(self.blocks):
            raise KeyError(f"no block with id {block_id}")
        return self.blocks[block_id]

    def codes_of(self, block_id: int) -> np.ndarray:
        """Residue codes of a block (a view into the owning record)."""
        block = self.block(block_id)
        return self._record_of_block[block_id].codes[block.start : block.end]

    def record_of(self, block_id: int) -> SequenceRecord:
        self.block(block_id)  # bounds check
        return self._record_of_block[block_id]

    def blocks_of_sequence(self, seq_id: str) -> Iterator[InvertedIndexBlock]:
        first, last = self._range_of_seq[seq_id]
        return iter(self.blocks[first:last])

    def codes_matrix(self, block_ids: list[int] | np.ndarray) -> np.ndarray:
        """Stack the codes of many blocks into an ``(n, w)`` matrix."""
        ids = np.asarray(block_ids, dtype=np.intp)
        out = np.empty((ids.shape[0], self.segment_length), dtype=np.uint8)
        for row, block_id in enumerate(ids):
            out[row] = self.codes_of(int(block_id))
        return out

    def block_key(self, block_id: int) -> bytes:
        """Stable byte key used for tier-2 SHA-1 placement."""
        block = self.block(block_id)
        return f"{block.seq_id}:{block.start}".encode()
