"""The Mendel facade: the library's primary public entry point.

Typical use::

    from repro import Mendel, MendelConfig, QueryParams
    from repro.seq import read_fasta

    db = read_fasta("references.fasta", "protein")
    mendel = Mendel.build(db, MendelConfig(group_count=4, group_size=3))
    report = mendel.query_text("MKV...WLA", params=QueryParams(n=8, c=0.5))
    for alignment in report.alignments:
        print(alignment.brief())

``build`` runs the full indexing pipeline (blocks -> vp-prefix dispersion ->
local vp-trees); ``query``/``query_text``/``query_many`` evaluate alignment
searches over the simulated cluster and report ranked alignments with
turnaround statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.index import IndexStats, MendelIndex
from repro.core.params import MendelConfig, QueryParams
from repro.core.query import QueryEngine, QueryReport
from repro.seq.records import SequenceRecord, SequenceSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.balance import BalanceAuditor, BalanceReport
    from repro.core.explain import QueryPlan
    from repro.faults.schedule import FaultSchedule
    from repro.obs.events import EventLog
    from repro.obs.health import HealthMonitor
    from repro.obs.trace import TraceContext
    from repro.serve.service import QueryService


@dataclass
class Mendel:
    """A built Mendel deployment bound to one reference database."""

    index: MendelIndex
    engine: QueryEngine

    @classmethod
    def build(cls, database: SequenceSet, config: MendelConfig | None = None) -> "Mendel":
        """Index *database* on a simulated cluster shaped by *config*."""
        index = MendelIndex(database, config or MendelConfig())
        return cls(index=index, engine=QueryEngine(index))

    # -- queries -------------------------------------------------------------

    def query(
        self,
        record: SequenceRecord,
        params: QueryParams | None = None,
        faults: "FaultSchedule | None" = None,
        subquery_deadline: float | None = None,
        trace_ctx: "TraceContext | None" = None,
    ) -> QueryReport:
        """Similarity-search *record* against the indexed database.

        *faults* attaches a scripted chaos schedule to the run;
        *subquery_deadline* bounds each node subquery (simulated seconds)
        with one hedged retry before the report degrades; *trace_ctx*
        records a span tree of the run (``report.root_span``).  See
        :meth:`~repro.core.query.QueryEngine.run_batch`.
        """
        return self.engine.run(
            record, params, faults=faults, subquery_deadline=subquery_deadline,
            trace_ctx=trace_ctx,
        )

    def query_text(
        self,
        text: str,
        params: QueryParams | None = None,
        query_id: str = "query",
    ) -> QueryReport:
        """Convenience: encode *text* under the database alphabet and query."""
        record = SequenceRecord.from_text(query_id, text, self.index.alphabet)
        return self.query(record, params)

    def query_many(
        self,
        records: SequenceSet | list[SequenceRecord],
        params: QueryParams | None = None,
        trace_contexts: "list[TraceContext] | None" = None,
    ) -> list[QueryReport]:
        """Evaluate a whole query set; one report per query, in order.

        *trace_contexts* (one per record) attaches a span tree to each
        report — what the serving gateway uses for per-request tracing.
        """
        if trace_contexts is None:
            return [self.query(record, params) for record in records]
        if len(trace_contexts) != len(records):
            raise ValueError(
                f"{len(trace_contexts)} trace contexts for "
                f"{len(records)} records"
            )
        return [
            self.query(record, params, trace_ctx=ctx)
            for record, ctx in zip(records, trace_contexts)
        ]

    def query_under_faults(
        self,
        records: SequenceSet | list[SequenceRecord],
        faults: "FaultSchedule",
        params: QueryParams | None = None,
        arrival_interval: float = 0.0,
        subquery_deadline: float | None = None,
        trace_contexts: "list[TraceContext] | None" = None,
        monitor: "HealthMonitor | None" = None,
        event_log: "EventLog | None" = None,
    ) -> list[QueryReport]:
        """Evaluate *records* concurrently on one clock while *faults*
        plays out — the chaos-experiment entry point.

        Queries arrive ``arrival_interval`` apart so the batch spans the
        scripted failures; reports carry ``coverage`` / ``degraded`` /
        ``failed_nodes``.  The run mutates the live cluster (crashes,
        repair streams); inspect ``engine.last_chaos`` for the timeline and
        call :meth:`repair` / :meth:`recover_node` to restore a clean state.

        A :class:`~repro.obs.health.HealthMonitor` is attached to the run
        (auto-created and horizon-scaled unless *monitor* is given):
        afterwards ``engine.last_monitor`` holds the SLI windows, the SLO
        alert transitions, and the correlated event log —
        :meth:`health_report` packages it all.
        """
        return self.engine.run_batch(
            list(records),
            params,
            arrival_interval=arrival_interval,
            faults=faults,
            subquery_deadline=subquery_deadline,
            trace_contexts=trace_contexts,
            monitor=monitor,
            event_log=event_log,
        )

    def query_translated(
        self, record: SequenceRecord, params: QueryParams | None = None
    ) -> QueryReport:
        """BLASTX-style translated search: a DNA *record* against a protein
        index, querying all six reading frames and merging the reports.

        The returned report's alignments carry the frame in their query id
        suffix (``|frame+0`` .. ``|frame-2``) with coordinates in translated
        (amino-acid) space.  The six frames are dispatched *concurrently*
        (one client, six in-flight subqueries contending for the cluster),
        so the merged turnaround is the completion time of the slowest
        frame; the other counters sum across frames.
        """
        from repro.seq.translate import six_frame_translations

        if self.index.alphabet.name != "protein":
            raise ValueError("translated search needs a protein index")
        if record.alphabet.name != "dna":
            raise ValueError("translated search needs a DNA query")
        minimum = self.index.segment_length
        frames = [
            frame
            for frame in six_frame_translations(record)
            if len(frame) >= minimum
        ]
        if not frames:
            raise ValueError(
                f"query too short: no frame reaches the indexed segment "
                f"length {minimum}"
            )
        reports = self.engine.run_batch(frames, params)
        merged_alignments = [a for r in reports for a in r.alignments]
        merged_alignments.sort(key=lambda a: (a.evalue, -a.score))
        stats = reports[0].stats
        for report in reports[1:]:
            stats.windows += report.stats.windows
            stats.subqueries_routed += report.stats.subqueries_routed
            stats.candidate_hits += report.stats.candidate_hits
            stats.anchors_extended += report.stats.anchors_extended
            stats.anchors_merged += report.stats.anchors_merged
            stats.gapped_extensions += report.stats.gapped_extensions
            stats.node_evals += report.stats.node_evals
        stats.turnaround = max(r.stats.turnaround for r in reports)
        stats.messages = reports[-1].stats.messages  # shared network counters
        stats.bytes_sent = reports[-1].stats.bytes_sent
        stats.alignments_reported = len(merged_alignments)
        return QueryReport(
            query_id=record.seq_id, alignments=merged_alignments, stats=stats
        )

    # -- growth & introspection ------------------------------------------------

    def explain(
        self,
        record: SequenceRecord,
        params: QueryParams | None = None,
    ) -> "QueryPlan":
        """EXPLAIN: run *record* once with tracing attached and return the
        structured :class:`~repro.core.explain.QueryPlan` — subquery
        windows, vp-prefix routes (with tolerance replication branches),
        the group/node fan-out, the per-stage attrition funnel, and the
        sim-clock stage timings.

        The query really executes (the plan reflects an actual cluster
        run, and the funnel counters in the default registry are bumped);
        ``plan.report`` carries the full traced report.
        """
        from repro.core.explain import build_plan
        from repro.obs.trace import TraceContext

        params = params or QueryParams()
        report = self.query(record, params, trace_ctx=TraceContext())
        return build_plan(self.index, self.engine, record, params, report)

    def explain_text(
        self,
        text: str,
        params: QueryParams | None = None,
        query_id: str = "query",
    ) -> "QueryPlan":
        """Convenience: encode *text* under the database alphabet and
        :meth:`explain` it."""
        record = SequenceRecord.from_text(query_id, text, self.index.alphabet)
        return self.explain(record, params)

    def balance(self) -> "BalanceReport":
        """Audit block distribution over both placement tiers (Fig. 5):
        per-node / per-group primary counts with CV and Gini, and tier-1
        prefix-route skew.  Cached against :attr:`index_version`."""
        return self._balance_auditor().report()

    def _balance_auditor(self) -> "BalanceAuditor":
        auditor = getattr(self, "_balance_auditor_instance", None)
        if auditor is None:
            from repro.cluster.balance import BalanceAuditor

            auditor = BalanceAuditor(self.index)
            self._balance_auditor_instance = auditor
        return auditor

    def insert(self, new_sequences: SequenceSet) -> None:
        """Incrementally index additional reference sequences.

        Bumps :attr:`index_version`, so serving caches built over this
        deployment invalidate their entries (cache coherence)."""
        self.index.insert_sequences(new_sequences)

    def add_node(self, group_id: str):
        """Elastically grow *group_id* by one node (data redistributes
        within the group only); returns the new node."""
        return self.index.add_node(group_id)

    def remove_node(self, node_id: str):
        """Safely drain and remove one node (refused if the group would
        drop below the replication factor); returns the node."""
        return self.index.remove_node(node_id)

    def split_group(self, group_id: str):
        """Split an overloaded group: half its tier-1 region moves to a
        brand-new group (refining the vp-prefix frontier when the group
        owns a single prefix); returns the settled
        :class:`~repro.core.index.TopologyChange`."""
        return self.index.split_group(group_id)

    def merge_groups(self, source_id: str, target_id: str):
        """Merge an underloaded group into another and retire it; returns
        the settled :class:`~repro.core.index.TopologyChange`."""
        return self.index.merge_groups(source_id, target_id)

    def autoscaler(self, monitor=None, **kwargs) -> "AutoScaler":
        """An :class:`~repro.scale.controller.AutoScaler` watching this
        deployment.  *monitor* defaults to the engine's most recent
        health monitor, or a fresh sim-clock one when none exists;
        keyword arguments pass through to the controller."""
        from repro.obs.health import HealthMonitor
        from repro.scale.controller import AutoScaler

        if monitor is None:
            monitor = getattr(self.engine, "last_monitor", None)
        if monitor is None:
            monitor = HealthMonitor()
        return AutoScaler(index=self.index, monitor=monitor, **kwargs)

    # -- failure handling ------------------------------------------------------

    def fail_node(self, node_id: str, rereplicate: bool = False):
        """Crash-stop one node (optionally re-replicating its blocks
        immediately); returns the node."""
        return self.index.fail_node(node_id, rereplicate=rereplicate)

    def recover_node(self, node_id: str):
        """Rejoin a crashed node and reconcile its group back to canonical
        placement (exactly ``replication`` holders per block)."""
        return self.index.recover_node(node_id)

    def repair(self, group_id: str | None = None):
        """Reconcile placement against ground-truth liveness (one group or
        all); returns the :class:`~repro.faults.repair.RepairReport`."""
        return self.index.rereplicate(group_id)

    # -- durability and integrity ----------------------------------------------

    def scrub(self, heal: bool = True):
        """One anti-entropy pass over every replica copy: digest-verify,
        quarantine what rotted, and (by default) heal it back from verified
        replicas.  Returns the :class:`~repro.store.scrub.ScrubReport`."""
        return self.index.scrub(heal=heal)

    def flush_durable(self) -> int:
        """Checkpoint every node's WAL into its snapshot; returns the
        number of nodes that acknowledged."""
        return self.index.flush_durable()

    def durability(self) -> dict:
        """Per-node durable-state status (snapshot + WAL depth, unacked
        writes, degraded flags) plus cluster rollups."""
        return self.index.durability_report()

    def spill(self, cache_bytes: int | None = None, config=None):
        """Spill the deployment to the disk tier (see
        :meth:`~repro.core.index.MendelIndex.spill_to_tier`): block codes
        move to per-node compressed block files, queries read through a
        bounded shared RAM cache, and results stay byte-identical to the
        all-RAM deployment.  Returns the shared block cache."""
        return self.index.spill_to_tier(cache_bytes=cache_bytes, config=config)

    def unspill(self) -> None:
        """Fold every node back to all-RAM and drop the tier policy."""
        self.index.unspill_tier()

    def tier_report(self) -> dict:
        """Cluster-wide tier occupancy (cache stats, per-node pages and
        bytes, compression rollups)."""
        return self.index.tier_report()

    def cluster_health(self) -> dict:
        """Liveness snapshot: node counts by state plus the per-group
        breakdown the serving HEALTH endpoint reports."""
        nodes = self.index.topology.nodes
        dead = sorted(n.node_id for n in nodes if not n.alive)
        suspected = sorted(n.node_id for n in nodes if n.alive and n.suspected)
        groups = {}
        for group in self.index.topology.groups:
            groups[group.group_id] = {
                "alive": sum(1 for n in group.nodes if n.alive),
                "total": len(group.nodes),
            }
        return {
            "nodes_total": len(nodes),
            "nodes_alive": len(nodes) - len(dead),
            "nodes_dead": dead,
            "nodes_suspected": suspected,
            "groups": groups,
            "replication": self.index.config.replication,
        }

    def health_report(self) -> dict:
        """Continuous-health snapshot of the most recent monitored run:
        the cluster liveness view (:meth:`cluster_health`) plus — when a
        :class:`~repro.obs.health.HealthMonitor` rode the last
        :meth:`query_under_faults` batch — its SLI windows, alert states,
        alert transitions (with correlated causes and trace ids), and the
        event tail.  The programmatic face of ``repro watch``."""
        out = {"cluster": self.cluster_health()}
        monitor = getattr(self.engine, "last_monitor", None)
        if monitor is not None:
            out.update(monitor.snapshot())
            out["firing"] = monitor.alerts_firing()
        return out

    @property
    def index_version(self) -> int:
        """Monotonic index mutation counter (see
        :attr:`~repro.core.index.MendelIndex.version`).  Query entry points
        are pure functions of the index state at one version; the serving
        layer keys cache validity on it."""
        return self.index.version

    def service(self, **kwargs) -> "QueryService":
        """A :class:`~repro.serve.service.QueryService` over this deployment
        — the concurrent, cached, load-shedding entry point the TCP gateway
        (``repro serve``) fronts.  Keyword arguments pass through to the
        service constructor."""
        from repro.serve.service import QueryService

        return QueryService(self, **kwargs)

    @property
    def stats(self) -> IndexStats:
        return self.index.stats

    @property
    def node_count(self) -> int:
        return len(self.index.topology.nodes)

    @property
    def block_count(self) -> int:
        return len(self.index.store)

    def load_fractions(self) -> dict[str, float]:
        """Per-node storage share (the Fig. 5 load-balance measure)."""
        return self.index.load_fractions()
