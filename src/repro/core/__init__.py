"""Core Mendel: inverted-index blocks, the two-tier index, the distributed
query pipeline, and the public facade."""

from repro.core.aggregate import bin_by_sequence, merge_anchors, merge_same_diagonal
from repro.core.anchors import (
    CandidateScore,
    consecutivity_score,
    evaluate_candidate,
    extend_anchor,
    match_mask,
)
from repro.core.autoconfig import suggest_config
from repro.core.blocks import BlockStore, InvertedIndexBlock
from repro.core.explain import FunnelStage, QueryPlan, WindowRoute
from repro.core.framework import Mendel
from repro.core.persist import load_index, save_index
from repro.core.index import IndexStats, MendelIndex
from repro.core.params import MendelConfig, QueryParams
from repro.core.query import QueryEngine, QueryReport, QueryStats, resolve_matrix

__all__ = [
    "bin_by_sequence",
    "merge_anchors",
    "merge_same_diagonal",
    "CandidateScore",
    "consecutivity_score",
    "evaluate_candidate",
    "extend_anchor",
    "match_mask",
    "BlockStore",
    "InvertedIndexBlock",
    "FunnelStage",
    "QueryPlan",
    "WindowRoute",
    "Mendel",
    "IndexStats",
    "MendelIndex",
    "MendelConfig",
    "QueryParams",
    "QueryEngine",
    "QueryReport",
    "QueryStats",
    "resolve_matrix",
    "suggest_config",
    "load_index",
    "save_index",
]
