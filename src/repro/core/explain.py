"""EXPLAIN: structured query plans built from a traced run.

``Mendel.explain(query)`` evaluates the query once with a
:class:`~repro.obs.trace.TraceContext` attached and condenses the run into
a :class:`QueryPlan` — the introspection surface behind the paper's
attrition arguments (Figures 6a-6d all hinge on *where candidates die*):

* **routing** — the subquery windows, the tier-1 vp-prefix routes each
  window takes (including tolerance-induced replication branches), and the
  groups/nodes the query fanned out to;
* **funnel** — the per-stage candidate attrition (k-NN candidates ->
  percent-identity filter -> c-score filter -> extension -> merged anchors
  -> gapped extensions -> reported alignments), with counts from
  :meth:`~repro.core.query.QueryStats.funnel` and sim-clock timings from
  the span tree;
* **stage timings** — the pipeline stages (receive, route, fanout, gapped,
  reply) that tile the simulated turnaround.

The same plan is what the serving gateway's ``EXPLAIN`` verb returns
(:meth:`QueryPlan.to_dict`) and what ``repro explain`` renders
(:meth:`QueryPlan.render`).  Stage counts reconcile exactly with the
``repro_query_funnel_total{stage}`` counters bumped by the engine and with
the span tree of the same run — tested in ``tests/core/test_explain.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.query import FUNNEL_STAGES, QueryReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.index import MendelIndex
    from repro.core.params import QueryParams
    from repro.core.query import QueryEngine
    from repro.seq.records import SequenceRecord


@dataclass(frozen=True)
class FunnelStage:
    """One attrition stage: its survivor count and drop from the previous."""

    stage: str
    count: int
    #: survivors of the previous stage that died here
    dropped: int
    #: fraction of the previous stage's count that survived (1.0 for the
    #: first stage and whenever the previous stage was empty)
    retained: float
    #: sim-clock duration of the pipeline span this stage executes inside
    #: (the fanout span for node-side stages, the gapped span for the final
    #: extension/report stages); stages sharing a span share the timing
    sim_ms: float = 0.0

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "count": self.count,
            "dropped": self.dropped,
            "retained": round(self.retained, 6),
            "sim_ms": round(self.sim_ms, 6),
        }


@dataclass(frozen=True)
class WindowRoute:
    """Tier-1 routing of one subquery window."""

    window: int
    query_start: int
    #: distinct vp-prefixes the tolerance traversal reached
    prefixes: tuple[int, ...]
    #: distinct groups those prefixes map to, in first-reached order
    groups: tuple[str, ...]

    @property
    def replicated(self) -> bool:
        """True when branching tolerance sent this window to >1 group."""
        return len(self.groups) > 1

    def to_dict(self) -> dict:
        return {
            "window": self.window,
            "query_start": self.query_start,
            "prefixes": list(self.prefixes),
            "groups": list(self.groups),
            "replicated": self.replicated,
        }


@dataclass
class QueryPlan:
    """Everything EXPLAIN reports about one traced query execution."""

    query_id: str
    residues: int
    trace_id: str | None
    entry_node: str | None
    window_length: int
    stride: int
    tolerance: float
    replication: int
    routes: list[WindowRoute]
    groups_contacted: list[str]
    nodes_fanned_out: list[str]
    subqueries_routed: int
    funnel: list[FunnelStage]
    #: ``(stage name, sim-clock ms)`` for the top-level pipeline spans,
    #: in execution order; they tile the turnaround
    stage_timings: list[tuple[str, float]] = field(default_factory=list)
    turnaround_ms: float = 0.0
    coverage: float = 1.0
    degraded: bool = False
    failed_nodes: list[str] = field(default_factory=list)
    #: the underlying traced report (alignments, stats, root span)
    report: QueryReport | None = None

    # -- derived ---------------------------------------------------------------

    @property
    def windows(self) -> int:
        return len(self.routes)

    @property
    def replicated_windows(self) -> int:
        return sum(1 for route in self.routes if route.replicated)

    def stage(self, name: str) -> FunnelStage:
        for item in self.funnel:
            if item.stage == name:
                return item
        raise KeyError(f"no funnel stage {name!r}")

    def is_monotone(self) -> bool:
        """True when every funnel stage's count is <= the previous one's —
        the invariant an attrition funnel must satisfy."""
        counts = [item.count for item in self.funnel]
        return all(b <= a for a, b in zip(counts, counts[1:]))

    # -- serialisation ---------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-friendly plan (what the serve EXPLAIN verb returns)."""
        return {
            "query_id": self.query_id,
            "residues": self.residues,
            "trace_id": self.trace_id,
            "entry_node": self.entry_node,
            "window_length": self.window_length,
            "stride": self.stride,
            "tolerance": self.tolerance,
            "replication": self.replication,
            "windows": self.windows,
            "replicated_windows": self.replicated_windows,
            "subqueries_routed": self.subqueries_routed,
            "groups_contacted": list(self.groups_contacted),
            "nodes_fanned_out": list(self.nodes_fanned_out),
            "routes": [route.to_dict() for route in self.routes],
            "funnel": [item.to_dict() for item in self.funnel],
            "stage_timings": [
                {"stage": name, "sim_ms": round(ms, 6)}
                for name, ms in self.stage_timings
            ],
            "turnaround_ms": round(self.turnaround_ms, 6),
            "coverage": self.coverage,
            "degraded": self.degraded,
            "failed_nodes": list(self.failed_nodes),
        }

    # -- rendering -------------------------------------------------------------

    def render_funnel(self, width: int = 28) -> str:
        """The attrition funnel as an aligned table with survivor bars."""
        top = max((item.count for item in self.funnel), default=0)
        lines = [
            f"{'stage':<18} {'count':>8} {'dropped':>8} {'retained':>9} "
            f"{'sim ms':>10}  survivors"
        ]
        lines.append("-" * len(lines[0]))
        for item in self.funnel:
            bar = "#" * (
                int(round(width * item.count / top)) if top else 0
            )
            lines.append(
                f"{item.stage:<18} {item.count:>8d} {item.dropped:>8d} "
                f"{item.retained:>8.1%} {item.sim_ms:>10.3f}  {bar}"
            )
        return "\n".join(lines)

    def render(self) -> str:
        """Full human-readable plan: routing summary, funnel, timings."""
        lines = [
            f"EXPLAIN {self.query_id} ({self.residues} residues)"
            + (f" [{self.trace_id}]" if self.trace_id else ""),
            f"  entry point     : {self.entry_node or '-'}",
            f"  windows         : {self.windows} x {self.window_length} "
            f"residues, stride {self.stride}",
            f"  tier-1 routing  : {self.subqueries_routed} subqueries -> "
            f"{len(self.groups_contacted)} group(s) "
            f"({self.replicated_windows} window(s) branched by tolerance "
            f"{self.tolerance:.3g})",
            f"  fan-out         : {len(self.nodes_fanned_out)} node(s), "
            f"replication {self.replication}",
        ]
        if self.degraded or self.failed_nodes:
            lines.append(
                f"  degraded        : coverage {self.coverage:.1%}, "
                f"failed nodes: {', '.join(self.failed_nodes) or '-'}"
            )
        lines.append("")
        lines.append(self.render_funnel())
        lines.append("")
        lines.append("stage timings (sim clock):")
        for name, ms in self.stage_timings:
            lines.append(f"  {name:<18} {ms:>10.3f} ms")
        lines.append(f"  {'turnaround':<18} {self.turnaround_ms:>10.3f} ms")
        return "\n".join(lines)


def build_funnel(report: QueryReport, stage_ms: dict[str, float] | None = None) -> list[FunnelStage]:
    """The attrition funnel of one report, with per-stage drop accounting.

    *stage_ms* maps funnel stage names to the sim-clock duration of the
    pipeline span they execute inside (see :func:`build_plan`).
    """
    stage_ms = stage_ms or {}
    funnel: list[FunnelStage] = []
    previous: int | None = None
    for stage, count in report.stats.funnel():
        dropped = max(0, previous - count) if previous is not None else 0
        retained = (
            1.0 if previous in (None, 0) else count / previous
        )
        funnel.append(
            FunnelStage(
                stage=stage,
                count=count,
                dropped=dropped,
                retained=retained,
                sim_ms=stage_ms.get(stage, 0.0),
            )
        )
        previous = count
    return funnel


def build_plan(
    index: "MendelIndex",
    engine: "QueryEngine",
    record: "SequenceRecord",
    params: "QueryParams",
    report: QueryReport,
) -> QueryPlan:
    """Condense a traced *report* plus recomputed routing into a plan.

    Routing (window -> prefixes -> groups) is recomputed here with the same
    deterministic tier-1 traversal the engine used; fan-out nodes, stage
    timings, and the entry point are read off the report's span tree.
    """
    tolerance = (
        params.tolerance
        if params.tolerance is not None
        else 0.5 * engine.search_radius(params)
    )
    routes: list[WindowRoute] = []
    subqueries = 0
    group_order: list[str] = []
    seen_groups: set[str] = set()
    for window in engine.windows_for(record, params):
        codes = np.asarray(window.codes, dtype=np.uint8)
        prefixes: list[int] = []
        groups: list[str] = []
        for item in index.prefix_tree.hash_query(codes, tolerance):
            if item.prefix not in prefixes:
                prefixes.append(item.prefix)
            group_id = index.topology.group_for_prefix(item.prefix).group_id
            if group_id not in groups:
                groups.append(group_id)
        subqueries += len(groups)
        for group_id in groups:
            if group_id not in seen_groups:
                seen_groups.add(group_id)
                group_order.append(group_id)
        routes.append(
            WindowRoute(
                window=window.index,
                query_start=window.query_start,
                prefixes=tuple(prefixes),
                groups=tuple(groups),
            )
        )

    # Read execution facts off the span tree.
    root = report.root_span
    entry_node: str | None = None
    nodes: list[str] = []
    stage_timings: list[tuple[str, float]] = []
    fanout_ms = gapped_ms = 0.0
    if root is not None:
        entry_node = root.attrs.get("entry")
        for span in root.children:
            stage_timings.append((span.name, span.sim_duration * 1e3))
            if span.name == "fanout":
                fanout_ms = span.sim_duration * 1e3
            elif span.name == "gapped":
                gapped_ms = span.sim_duration * 1e3
        for span in root.walk():
            if span.name.startswith("node:"):
                node_id = span.name.split(":", 1)[1]
                if node_id not in nodes:
                    nodes.append(node_id)

    stage_ms = {stage: fanout_ms for stage, _field in FUNNEL_STAGES}
    stage_ms["gapped_extensions"] = gapped_ms
    stage_ms["alignments"] = gapped_ms

    return QueryPlan(
        query_id=record.seq_id,
        residues=len(record),
        trace_id=report.trace_id,
        entry_node=entry_node,
        window_length=index.segment_length,
        stride=params.k,
        tolerance=tolerance,
        replication=index.config.replication,
        routes=routes,
        groups_contacted=group_order,
        nodes_fanned_out=sorted(nodes),
        subqueries_routed=subqueries,
        funnel=build_funnel(report, stage_ms),
        stage_timings=stage_timings,
        turnaround_ms=report.stats.turnaround * 1e3,
        coverage=report.coverage,
        degraded=report.degraded,
        failed_nodes=list(report.failed_nodes),
        report=report,
    )
