"""Index persistence (paper section VII-B, future work).

"Adding the ability to save pre-indexed data for popular large datasets,
such as the non-redundant protein (nr) ..., for various cluster sizes would
save researchers a lot of time."

:func:`save_index` serialises a built :class:`~repro.core.index.MendelIndex`
(reference sequences, deployment config, and the complete block placement)
to a single file; :func:`load_index` reconstructs a live deployment from it
*without* re-running the vp-prefix hashing of every block — the dominant
indexing cost — by replaying the saved placement directly into per-node
batch inserts.

Format: a self-verifying container — magic ``MENDELIX``, a format version,
and a whole-payload CRC32 — around a compressed ``numpy`` archive holding
the concatenated residue codes, per-sequence offsets/ids, the per-block
node assignment, and a JSON header with the config.  The prefix tree is
rebuilt deterministically from the saved config seed, so hashes of *future*
insertions remain consistent with the saved deployment.

Durability contract (mirrors :mod:`repro.store`): writes go through a
temporary file and an atomic ``os.replace``, so a crash mid-save leaves any
previous archive intact; loads verify magic, version, and checksum before a
single byte is parsed, raising a typed :class:`PersistError` —
:class:`CorruptArchiveError` for damage, never a confusing decode error
deep inside ``numpy``.
"""

from __future__ import annotations

import dataclasses
import io
import json
import os
import struct
import zlib
from pathlib import Path

import numpy as np

from repro.core.index import MendelIndex
from repro.core.params import MendelConfig
from repro.seq.alphabet import alphabet_for
from repro.seq.records import SequenceRecord, SequenceSet

#: v2 wrapped the archive in the checksummed ``MENDELIX`` container.
FORMAT_VERSION = 2

MAGIC = b"MENDELIX"
_CONTAINER_HEAD = struct.Struct("<8sHI")  # magic, version, payload crc32


class PersistError(Exception):
    """Base class for index save/load failures."""


class CorruptArchiveError(PersistError):
    """The archive failed its integrity checks (magic, version, CRC)."""


def save_index(index: MendelIndex, path: str | Path) -> None:
    """Serialise *index* (database + config + placement) to *path*
    atomically (tmp file + ``os.replace``)."""
    records = list(index.database)
    lengths = np.array([len(r) for r in records], dtype=np.int64)
    concat = (
        np.concatenate([r.codes for r in records])
        if records
        else np.zeros(0, dtype=np.uint8)
    )
    node_numbers = {
        node.node_id: number for number, node in enumerate(index.topology.nodes)
    }
    placement = np.array(
        [node_numbers[index.node_of_block[b.block_id]]
         for b in index.store.blocks],
        dtype=np.int32,
    )
    header = {
        "version": FORMAT_VERSION,
        "alphabet": index.alphabet.name,
        "config": dataclasses.asdict(index.config),
        "seq_ids": [r.seq_id for r in records],
        "descriptions": [r.description for r in records],
        "node_ids": [n.node_id for n in index.topology.nodes],
    }
    buffer = io.BytesIO()
    np.savez_compressed(
        buffer,
        header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        concat=concat,
        lengths=lengths,
        placement=placement,
    )
    payload = buffer.getvalue()
    head = _CONTAINER_HEAD.pack(MAGIC, FORMAT_VERSION, zlib.crc32(payload))
    target = Path(path)
    if target.suffix != ".npz":
        target = target.with_suffix(target.suffix + ".npz")
    tmp = target.with_name(target.name + ".tmp")
    try:
        tmp.write_bytes(head + payload)
        os.replace(tmp, target)
    finally:
        tmp.unlink(missing_ok=True)


def load_index(path: str | Path) -> MendelIndex:
    """Reconstruct a live :class:`MendelIndex` from a saved archive.

    The cluster shell and prefix tree are rebuilt deterministically from the
    saved config; block placement is replayed from the archive instead of
    re-hashing, so loading is dominated by the per-node batch inserts.

    Raises :class:`CorruptArchiveError` when the container fails its
    integrity checks and :class:`PersistError` for a missing file or an
    unsupported format version.
    """
    payload = _read_verified(_with_suffix(path))
    with np.load(io.BytesIO(payload), allow_pickle=False) as archive:
        header = json.loads(bytes(archive["header"]).decode())
        if header["version"] != FORMAT_VERSION:
            raise PersistError(
                f"unsupported index format version {header['version']}"
            )
        concat = archive["concat"]
        lengths = archive["lengths"]
        placement = archive["placement"]

    alphabet = alphabet_for(header["alphabet"])
    database = SequenceSet(alphabet=alphabet)
    offset = 0
    for seq_id, description, length in zip(
        header["seq_ids"], header["descriptions"], lengths
    ):
        database.add(
            SequenceRecord(
                seq_id=seq_id,
                codes=concat[offset : offset + int(length)].copy(),
                alphabet=alphabet,
                description=description,
            )
        )
        offset += int(length)

    config = MendelConfig(**header["config"])
    index = MendelIndex.__new__(MendelIndex)
    _rebuild_from_placement(index, database, config, header, placement)
    return index


def _rebuild_from_placement(index, database, config, header, placement) -> None:
    """Initialise *index* like ``MendelIndex.__init__`` but replay the saved
    placement instead of re-hashing every block."""
    from repro.cluster.topology import ClusterSpec, ClusterTopology
    from repro.core.blocks import BlockStore
    from repro.core.index import IndexStats
    from repro.seq.distance import default_distance
    from repro.util.rng import as_generator
    from repro.vptree.prefix import VPPrefixTree

    index.database = database
    index.config = config
    index.alphabet = database.alphabet
    index.stats = IndexStats()
    gen = as_generator(config.seed)

    index.store = BlockStore(database, config.segment_length)
    index.stats.block_count = len(index.store)
    if len(placement) != len(index.store):
        raise ValueError(
            f"placement length {len(placement)} does not match block count "
            f"{len(index.store)}; archive does not belong to this database"
        )

    sample_size = min(config.sample_size, len(index.store))
    sample_ids = gen.choice(len(index.store), size=sample_size, replace=False)
    sample = index.store.codes_matrix(sample_ids)
    index._metric_factory = lambda: default_distance(index.alphabet)
    index.prefix_tree = VPPrefixTree(
        sample,
        index._metric_factory(),
        depth_threshold=config.prefix_depth,
        bucket_capacity=config.prefix_bucket_capacity,
        rng=int(gen.integers(0, 2**31 - 1)),
    )
    spec = ClusterSpec(
        group_count=config.group_count,
        group_size=config.group_size,
        heterogeneous=config.heterogeneous,
        bucket_capacity=config.bucket_capacity,
    )
    index.topology = ClusterTopology(
        spec=spec,
        prefix_tree=index.prefix_tree,
        sample=sample,
        metric_factory=index._metric_factory,
        segment_length=config.segment_length,
        rng=int(gen.integers(0, 2**31 - 1)),
    )

    node_ids = header["node_ids"]
    if node_ids != [n.node_id for n in index.topology.nodes]:
        raise ValueError("saved cluster shape does not match rebuilt topology")

    index.node_of_block = {}
    per_node: dict[str, list[int]] = {node_id: [] for node_id in node_ids}
    for block_id, node_number in enumerate(placement):
        primary_id = node_ids[int(node_number)]
        # Re-derive the replica set from the deterministic successor rule —
        # only the (cheap) intra-group SHA-1 runs; the saved placement spares
        # the expensive vp-prefix hashing.
        group = index.topology.group(primary_id.split(".")[0])
        replicas = group.place_replicas(
            index.store.block_key(block_id), config.replication
        )
        for node in replicas:
            per_node[node.node_id].append(block_id)
        index.node_of_block[block_id] = primary_id

    nodes_by_id = {n.node_id: n for n in index.topology.nodes}
    for node_id, block_ids in per_node.items():
        if block_ids:
            nodes_by_id[node_id].store_blocks(
                index.store.codes_matrix(block_ids), block_ids
            )
        index.stats.per_node_blocks[node_id] = len(block_ids)


def _read_verified(path: Path) -> bytes:
    """Read an archive and verify magic, version, and payload CRC; returns
    the wrapped ``npz`` payload bytes."""
    try:
        raw = path.read_bytes()
    except FileNotFoundError as exc:
        raise PersistError(f"no index archive at {path}") from exc
    if len(raw) < _CONTAINER_HEAD.size:
        raise CorruptArchiveError(
            f"{path} is {len(raw)} bytes — shorter than the container header"
        )
    magic, version, payload_crc = _CONTAINER_HEAD.unpack_from(raw, 0)
    if magic != MAGIC:
        raise CorruptArchiveError(
            f"{path} is not a Mendel index archive (bad magic {magic!r}; "
            "pre-v2 archives must be rebuilt)"
        )
    if version > FORMAT_VERSION:
        raise PersistError(
            f"{path} uses container version {version}; this build reads "
            f"up to {FORMAT_VERSION}"
        )
    payload = raw[_CONTAINER_HEAD.size:]
    if zlib.crc32(payload) != payload_crc:
        raise CorruptArchiveError(
            f"{path} failed its checksum: the archive is truncated or "
            "corrupted"
        )
    return payload


def _with_suffix(path: str | Path) -> Path:
    path = Path(path)
    if path.suffix != ".npz" and not path.exists():
        candidate = path.with_suffix(path.suffix + ".npz")
        if candidate.exists():
            return candidate
    return path
