"""Candidate scoring and anchor extension (paper section V-B).

For every k-NN candidate block a node computes two filter measures:

* **percent identity** — ``matches / candidate_length`` (exact residue
  matches, the paper's Hamming-based measure);
* **consecutivity score (c-score)** — "the percent of those matches that are
  in succession": the fraction of matching positions that belong to a run of
  at least two.  For protein data, substitutions scored positive by the
  scoring matrix count as matches for succession purposes.

Survivors become anchors and are lengthened residue-by-residue through the
blocks' neighbour references — "starting with the segment previous to the
match, the sequence is incrementally extended until the extension
deteriorates the score of a match below the threshold".  The incremental
walk is vectorised with cumulative sums (no per-residue Python loop).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.align.result import Anchor


@dataclass(frozen=True)
class CandidateScore:
    """Filter measures for one k-NN candidate."""

    identity: float
    c_score: float


def match_mask(
    query_window: np.ndarray,
    candidate: np.ndarray,
    matrix: np.ndarray | None = None,
) -> np.ndarray:
    """Positions counting as matches for succession purposes.

    Exact matches always count; with a *matrix*, positively scored
    substitutions count too (the BLOSUM62 rule of section V-B).
    """
    query_window = np.asarray(query_window, dtype=np.uint8)
    candidate = np.asarray(candidate, dtype=np.uint8)
    if query_window.shape != candidate.shape:
        raise ValueError(
            f"shape mismatch {query_window.shape} vs {candidate.shape}"
        )
    exact = query_window == candidate
    if matrix is None:
        return exact
    positive = np.asarray(matrix)[query_window, candidate] > 0
    return exact | positive


def consecutivity_score(mask: np.ndarray) -> float:
    """Fraction of matching positions that sit in a run of length >= 2.

    Returns 0.0 when there are no matches at all.
    """
    mask = np.asarray(mask, dtype=bool)
    total = int(mask.sum())
    if total == 0:
        return 0.0
    left = np.zeros_like(mask)
    right = np.zeros_like(mask)
    left[1:] = mask[:-1]
    right[:-1] = mask[1:]
    in_run = mask & (left | right)
    return float(in_run.sum()) / total


def evaluate_candidate(
    query_window: np.ndarray,
    candidate: np.ndarray,
    matrix: np.ndarray | None = None,
) -> CandidateScore:
    """Both filter measures for one candidate block."""
    query_window = np.asarray(query_window, dtype=np.uint8)
    candidate = np.asarray(candidate, dtype=np.uint8)
    if candidate.shape[0] == 0:
        raise ValueError("candidate must be non-empty")
    exact = query_window == candidate
    identity = float(exact.sum()) / candidate.shape[0]
    c_score = consecutivity_score(match_mask(query_window, candidate, matrix))
    return CandidateScore(identity=identity, c_score=c_score)


def _extension_extent(
    matches: np.ndarray, base_matches: int, base_length: int, threshold: float
) -> int:
    """How many residues of *matches* (scanned outward) the anchor absorbs
    before running identity first drops below *threshold*.

    ``matches`` is the outward boolean match array; the running identity
    after absorbing ``t`` residues is
    ``(base_matches + cumsum[t]) / (base_length + t)``.
    """
    if matches.size == 0:
        return 0
    cums = np.cumsum(matches, dtype=np.int64)
    lengths = base_length + np.arange(1, matches.size + 1)
    identity = (base_matches + cums) / lengths
    below = identity < threshold
    if below.any():
        return int(np.argmax(below))  # stop at first violation
    return int(matches.size)


def extend_anchor(
    query: np.ndarray,
    subject: np.ndarray,
    seq_id: str,
    query_start: int,
    query_end: int,
    subject_start: int,
    identity_threshold: float,
    matrix: np.ndarray,
) -> Anchor:
    """Extend the matched window in both directions along its diagonal.

    Parameters
    ----------
    query, subject:
        Full code arrays of the query and the subject reference sequence.
    query_start, query_end, subject_start:
        The matched window (the candidate block's span on the subject).
    identity_threshold:
        The paper's ``i`` parameter: extension stops once running identity
        first falls below it.
    matrix:
        Scoring matrix used to score the final anchor span.

    Returns the extended :class:`~repro.align.result.Anchor`.
    """
    query = np.asarray(query, dtype=np.uint8)
    subject = np.asarray(subject, dtype=np.uint8)
    window = query_end - query_start
    subject_end = subject_start + window
    if window <= 0:
        raise ValueError("anchor window must be non-empty")
    if query_end > query.shape[0] or subject_end > subject.shape[0]:
        raise ValueError("anchor window out of bounds")

    base = query[query_start:query_end] == subject[subject_start:subject_end]
    base_matches = int(base.sum())

    # Rightward residues (outward order).
    right_len = min(query.shape[0] - query_end, subject.shape[0] - subject_end)
    right = (
        query[query_end : query_end + right_len]
        == subject[subject_end : subject_end + right_len]
    )
    # Leftward residues (outward order = reversed slices).
    left_len = min(query_start, subject_start)
    left = (
        query[query_start - left_len : query_start][::-1]
        == subject[subject_start - left_len : subject_start][::-1]
    )

    right_keep = _extension_extent(right, base_matches, window, identity_threshold)
    matches_after_right = base_matches + int(right[:right_keep].sum())
    left_keep = _extension_extent(
        left, matches_after_right, window + right_keep, identity_threshold
    )

    new_q_start = query_start - left_keep
    new_q_end = query_end + right_keep
    new_s_start = subject_start - left_keep
    new_s_end = subject_end + right_keep
    span_q = query[new_q_start:new_q_end]
    span_s = subject[new_s_start:new_s_end]
    score = float(np.asarray(matrix)[span_q, span_s].sum())
    return Anchor(
        seq_id=seq_id,
        query_start=new_q_start,
        query_end=new_q_end,
        subject_start=new_s_start,
        subject_end=new_s_end,
        score=score,
    )
