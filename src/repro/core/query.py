"""Query evaluation (paper section V-B) over the simulated cluster.

The pipeline, executed as discrete-event processes so the reported
*turnaround* reflects cluster parallelism:

1. the client sends the query to the **system entry point** (any node —
   Mendel is symmetric);
2. a sliding window of the indexed segment length steps over the query in
   intervals of ``k`` (subquery normalisation with reduced amplification);
3. each window is hashed through the vp-prefix tree *with branching
   tolerance*; every group the traversal reaches becomes a **group entry
   point** for that window;
4. each group broadcasts its windows to all member nodes (tier-2 placement
   is flat, so every node may hold relevant blocks); nodes run local
   vp-tree k-NN, filter candidates by percent identity and c-score, and
   lengthen survivors into anchors via the block neighbour references;
5. anchors aggregate at the group entry point (overlapping same-diagonal
   anchors combined), then again at the system entry point;
6. merged anchors whose normalised score exceeds ``S`` receive a banded
   gapped extension (band of ``l`` diagonals); results are scored with the
   user matrix ``M``, assigned Karlin–Altschul E-values, filtered at ``E``,
   deduplicated, ranked, and returned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.align.gapped import banded_extend
from repro.align.result import Alignment, Anchor
from repro.align.stats import KarlinAltschulParams, karlin_altschul
from repro.cluster.group import StorageGroup
from repro.cluster.messages import (
    AnchorReport,
    GroupReport,
    QueryResult,
    SubQuery,
)
from repro.cluster.node import StorageNode
from repro.core.aggregate import merge_anchors
from repro.core.anchors import evaluate_candidate, extend_anchor
from repro.core.index import MendelIndex
from repro.core.params import QueryParams
from repro.obs.events import EventLog
from repro.obs.health import HealthMonitor
from repro.obs.metrics import default_registry
from repro.obs.profile import charge as profile_charge
from repro.obs.trace import NO_SPAN, Span, TraceContext
from repro.seq.alphabet import Alphabet
from repro.seq.matrices import dna_matrix, named_matrix
from repro.seq.records import SequenceRecord
from repro.sim.engine import AllOf, AnyOf, Simulation
from repro.sim.network import Network

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.schedule import FaultSchedule


@dataclass
class QueryStats:
    """Per-query accounting reported alongside the alignments."""

    turnaround: float = 0.0
    windows: int = 0
    groups_contacted: int = 0
    subqueries_routed: int = 0
    candidate_hits: int = 0
    #: candidates surviving the percent-identity filter
    identity_pass: int = 0
    #: identity survivors also passing the consecutivity-score filter
    cscore_pass: int = 0
    anchors_extended: int = 0
    anchors_merged: int = 0
    gapped_extensions: int = 0
    alignments_reported: int = 0
    node_evals: int = 0
    messages: int = 0
    bytes_sent: int = 0
    #: subquery retries after a drop, timeout, or mid-query node death
    hedged_retries: int = 0

    def funnel(self) -> "list[tuple[str, int]]":
        """``(stage, count)`` pairs of the candidate attrition funnel, in
        pipeline order; each stage's count is <= the previous stage's."""
        return [(stage, getattr(self, field_name))
                for stage, field_name in FUNNEL_STAGES]


#: The attrition funnel (paper pipeline III-E / V-B), in order: each stage
#: name paired with the :class:`QueryStats` field holding its count.
FUNNEL_STAGES: tuple[tuple[str, str], ...] = (
    ("knn_candidates", "candidate_hits"),
    ("identity_pass", "identity_pass"),
    ("cscore_pass", "cscore_pass"),
    ("anchors_extended", "anchors_extended"),
    ("anchors_merged", "anchors_merged"),
    ("gapped_extensions", "gapped_extensions"),
    ("alignments", "alignments_reported"),
)


@dataclass(frozen=True)
class TraceEvent:
    """One step of the distributed dataflow, for observability.

    ``time`` is simulated seconds since the query entered the system;
    ``actor`` is a node id, group id, or ``"client"``; ``detail`` is a
    human-readable payload summary.
    """

    time: float
    actor: str
    event: str
    detail: str = ""

    def __str__(self) -> str:
        return f"[{self.time * 1e3:9.3f} ms] {self.actor:>12}  {self.event}" + (
            f"  ({self.detail})" if self.detail else ""
        )


@dataclass
class QueryReport:
    """Result of one query: ranked alignments plus statistics.

    ``coverage`` is the fraction of distinct index blocks in the contacted
    groups that a responding node actually searched; 1.0 means the answer
    is complete with respect to the routed subqueries.  ``degraded`` is set
    whenever coverage fell short — some blocks had no reachable holder —
    so callers can distinguish a complete answer from a best-effort one.
    ``failed_nodes`` lists the nodes that failed to contribute (dead at
    fan-out, crashed mid-query, unreachable, or past the subquery
    deadline even after a hedged retry).
    """

    query_id: str
    alignments: list[Alignment]
    stats: QueryStats
    trace: list[TraceEvent] = field(default_factory=list)
    coverage: float = 1.0
    degraded: bool = False
    failed_nodes: list[str] = field(default_factory=list)
    #: root of the span tree recorded when a :class:`~repro.obs.trace.
    #: TraceContext` was attached to the run (``None`` otherwise); its
    #: sim-clock duration equals ``stats.turnaround``
    root_span: Span | None = None

    @property
    def trace_id(self) -> str | None:
        return self.root_span.trace_id if self.root_span is not None else None

    def best(self) -> Alignment | None:
        return self.alignments[0] if self.alignments else None

    def subject_ids(self) -> list[str]:
        """Distinct subject ids in rank order."""
        seen: set[str] = set()
        out: list[str] = []
        for alignment in self.alignments:
            if alignment.subject_id not in seen:
                seen.add(alignment.subject_id)
                out.append(alignment.subject_id)
        return out

    def hits(self, subject_id: str) -> list[Alignment]:
        return [a for a in self.alignments if a.subject_id == subject_id]


def resolve_matrix(params: QueryParams, alphabet: Alphabet) -> np.ndarray:
    """The scoring matrix for this query, defaulting sensibly per alphabet.

    ``M`` names the matrix (Table I); a protein default (``BLOSUM62``)
    against a DNA database silently means "the DNA default" rather than an
    error, matching how alignment tools pick per-program defaults.
    """
    if alphabet.name == "dna" and params.M.lower() == "blosum62":
        return dna_matrix()
    return named_matrix(params.M)


@dataclass
class _Window:
    index: int
    query_start: int
    codes: np.ndarray


@dataclass(frozen=True)
class _NodeFailure:
    """Sentinel returned by a subquery that produced no usable anchors."""

    node_id: str
    reason: str  # "unreachable" | "died" | "deadline"


class QueryEngine:
    """Evaluates queries against a :class:`~repro.core.index.MendelIndex`."""

    def __init__(self, index: MendelIndex) -> None:
        self.index = index
        self._ka_cache: dict[str, KarlinAltschulParams] = {}
        self._background = index.database.residue_frequencies()

    # -- statistics --------------------------------------------------------

    def ka_params(self, params: QueryParams) -> KarlinAltschulParams:
        key = params.M.lower() + ":" + self.index.alphabet.name
        if key not in self._ka_cache:
            matrix = resolve_matrix(params, self.index.alphabet)
            self._ka_cache[key] = karlin_altschul(matrix, self._background)
        return self._ka_cache[key]

    def search_radius(self, params: QueryParams) -> float:
        """Largest local-tree distance the identity filter could accept.

        With at most ``floor((1 - i) * w)`` mismatching positions in a
        window of length ``w``, the segment distance cannot exceed
        ``mismatches * max_per_residue_distance`` — so bounding the NNS at
        that radius is lossless.  ``search_radius_scale`` < 1 tightens it
        into an approximate (faster) search.
        """
        w = self.index.segment_length
        max_mismatches = int((1.0 - params.i) * w)
        metric = self.index.topology.nodes[0].tree.adapter.metric
        per_residue = getattr(metric, "matrix", None)
        if per_residue is None:
            radius = float(max_mismatches)  # Hamming: distance == mismatches
        else:
            radius = max_mismatches * float(np.asarray(per_residue).max())
        return radius * params.search_radius_scale

    # -- window construction ----------------------------------------------------

    def windows_for(self, query: SequenceRecord, params: QueryParams) -> list[_Window]:
        w = self.index.segment_length
        length = len(query)
        if length < w:
            raise ValueError(
                f"query length {length} is shorter than the indexed segment "
                f"length {w}"
            )
        positions = list(range(0, length - w + 1, params.k))
        if positions[-1] != length - w:
            positions.append(length - w)  # always cover the tail
        return [
            _Window(index=i, query_start=pos, codes=query.codes[pos : pos + w])
            for i, pos in enumerate(positions)
        ]

    # -- the pipeline -------------------------------------------------------------

    def run(
        self,
        query: SequenceRecord,
        params: QueryParams | None = None,
        trace: bool = False,
        faults: "FaultSchedule | None" = None,
        subquery_deadline: float | None = None,
        trace_ctx: TraceContext | None = None,
        monitor: HealthMonitor | None = None,
        event_log: EventLog | None = None,
    ) -> QueryReport:
        """Evaluate *query*; returns ranked alignments and statistics.

        With ``trace=True`` the report carries a
        :class:`TraceEvent` timeline of the distributed dataflow.  With a
        *trace_ctx*, the report additionally carries a full span tree
        (``report.root_span``) stamped with both wall and sim clocks.
        """
        return self.run_batch(
            [query], params, trace=trace, faults=faults,
            subquery_deadline=subquery_deadline,
            trace_contexts=[trace_ctx] if trace_ctx is not None else None,
            monitor=monitor, event_log=event_log,
        )[0]

    def run_batch(
        self,
        queries: list[SequenceRecord],
        params: QueryParams | None = None,
        arrival_interval: float = 0.0,
        trace: bool = False,
        faults: "FaultSchedule | None" = None,
        subquery_deadline: float | None = None,
        trace_contexts: "list[TraceContext] | None" = None,
        monitor: HealthMonitor | None = None,
        event_log: EventLog | None = None,
        arrival_times: "list[float] | None" = None,
        autoscaler=None,
    ) -> list[QueryReport]:
        """Evaluate *queries* concurrently on one simulated cluster.

        Query ``i`` arrives at simulated time ``i * arrival_interval``
        (0 = all at once); *arrival_times* overrides the uniform spacing
        with an explicit non-decreasing schedule (one entry per query) —
        how the autoscale scenarios shape diurnal and flash-crowd load.  Overlapping queries contend for each node's CPU
        through a FIFO :class:`~repro.sim.resource.Resource`, so per-query
        turnarounds reflect queueing under load — the throughput story a
        storage framework lives or dies by.  A single-query batch reduces
        exactly to the sequential behaviour.

        *faults* attaches a scripted :class:`~repro.faults.schedule.
        FaultSchedule` to the run's clock: nodes crash, restart, or
        straggle, links drop and partition, heartbeats detect deaths, and
        re-replication restores the replication factor — all
        deterministically from the schedule's seed.  *subquery_deadline*
        bounds each node-level subquery in simulated seconds; a subquery
        that misses it (straggler, drop) is hedged with one retry, after
        which the node counts as failed and the report degrades.

        Returns one report per query, in input order; each report's
        ``turnaround`` is completion time minus that query's arrival time,
        and each carries ``coverage`` / ``degraded`` / ``failed_nodes``
        describing how complete the answer is.

        *trace_contexts* (one :class:`~repro.obs.trace.TraceContext` per
        query) enables span-tree tracing: each query's report carries a
        ``root_span`` whose children tile the turnaround stage by stage
        (receive, route, fanout with per-group/per-node subspans, gapped,
        reply), annotated with hedged retries, node failures, and degraded
        coverage.

        *monitor* attaches a :class:`~repro.obs.health.HealthMonitor` to
        the run's sim clock: every completed query feeds its availability /
        coverage / turnaround SLIs, a tick process evaluates the SLO
        engine across the run, and the monitor's event log collects the
        query/fault/repair/alert stream.  With *faults* set and no monitor
        given, one is auto-created scaled to the schedule's horizon and
        exposed as ``engine.last_monitor``.  *event_log* routes event
        emission without a full monitor (``None`` + no faults = no event
        overhead at all, keeping the traced/untraced fig6a comparison
        clean).

        *autoscaler* spawns an :class:`~repro.scale.controller.AutoScaler`
        tick process on the same clock and horizon as the monitor, closing
        the loop: alerts fire, the scaler mutates the topology mid-run
        (nodes added lazily acquire CPU locks on first contact), and the
        alerts resolve.  When the scaler brings its own monitor and none
        is passed here, that monitor is attached to the run.
        """
        from repro.sim.resource import Resource

        params = params or QueryParams()
        if trace_contexts is not None and len(trace_contexts) != len(queries):
            raise ValueError(
                f"{len(trace_contexts)} trace contexts for "
                f"{len(queries)} queries"
            )
        if arrival_interval < 0:
            raise ValueError(
                f"arrival_interval must be non-negative, got {arrival_interval}"
            )
        if arrival_times is not None:
            if len(arrival_times) != len(queries):
                raise ValueError(
                    f"{len(arrival_times)} arrival times for "
                    f"{len(queries)} queries"
                )
            if any(t < 0 for t in arrival_times):
                raise ValueError("arrival times must be non-negative")
            if any(b < a for a, b in zip(arrival_times, arrival_times[1:])):
                raise ValueError("arrival times must be non-decreasing")
        if subquery_deadline is not None and subquery_deadline <= 0:
            raise ValueError(
                f"subquery_deadline must be positive, got {subquery_deadline}"
            )
        for query in queries:
            if query.alphabet.name != self.index.alphabet.name:
                raise ValueError(
                    f"query alphabet {query.alphabet.name!r} does not match "
                    f"the indexed alphabet {self.index.alphabet.name!r}"
                )
        matrix = resolve_matrix(params, self.index.alphabet)
        is_protein = self.index.alphabet.name == "protein"
        topo = self.index.topology
        store = self.index.store
        sim = Simulation()
        net = Network(sim=sim, rng=faults.seed if faults is not None else None)
        self.last_chaos = None
        # Continuous health: under faults every run gets a monitor (auto-
        # created, horizon-scaled) unless the caller brought one; without
        # faults monitoring is strictly opt-in so the plain fig6a read
        # path stays byte-for-byte what the overhead gate compares.
        if monitor is None and autoscaler is not None:
            monitor = autoscaler.monitor
        if monitor is None and faults is not None:
            monitor = HealthMonitor.for_chaos_run(
                faults.effective_horizon,
                arrival_interval=arrival_interval,
                event_log=event_log,
            )
        self.last_monitor = monitor
        elog = event_log if event_log is not None else (
            monitor.events if monitor is not None else None
        )
        if faults is not None:
            from repro.faults.chaos import ChaosController

            self.last_chaos = ChaosController(
                sim, net, self.index, faults, event_log=elog,
                recorder=monitor.recorder if monitor is not None else None,
            )
            self.last_chaos.install()
        if arrival_times is not None:
            last_arrival = max(arrival_times) if arrival_times else 0.0
        else:
            last_arrival = max(0.0, (len(queries) - 1) * arrival_interval)
        if monitor is not None:
            if self.last_chaos is not None:
                monitor.backlog_fn = self.last_chaos.pending_repairs
            horizon = faults.effective_horizon if faults is not None else 0.0
            stop_at = (
                max(horizon, last_arrival)
                + max(4.0 * monitor.interval, 4.0 * monitor.fast_window)
            )
            sim.spawn(monitor.tick_proc(sim, stop_at), name="health-monitor")
            if autoscaler is not None:
                sim.spawn(autoscaler.tick_proc(sim, stop_at),
                          name="autoscaler")
        entry = next((n for n in topo.nodes if n.alive), topo.nodes[0])
        # CPU locks are created on demand: the autoscaler can add nodes
        # mid-run, and those must contend like any seed node.
        locks: dict[str, Resource] = {}

        def lock_for(node_id: str) -> Resource:
            lock = locks.get(node_id)
            if lock is None:
                lock = Resource(sim, name=node_id)
                locks[node_id] = lock
            return lock
        radius = self.search_radius(params)
        tolerance = (
            params.tolerance
            if params.tolerance is not None
            else 0.5 * self.search_radius(params)
        )

        per_query_stats = [QueryStats() for _ in queries]
        holders: list[dict] = [
            {"covered": set(), "total": set(), "failed": set()} for _ in queries
        ]
        if autoscaler is not None:
            # The scaler holds a topology change's dual-ownership window
            # open until every query that arrived before the change has
            # completed — the precise condition for mid-rebalance answers
            # to match a quiesced cluster.
            def _inflight_before(cutoff: float) -> int:
                count = 0
                for qi in range(len(queries)):
                    at = (
                        arrival_times[qi] if arrival_times is not None
                        else qi * arrival_interval
                    )
                    if at < cutoff and "completed_at" not in holders[qi]:
                        count += 1
                return count

            autoscaler.inflight_before = _inflight_before
        traces: list[list[TraceEvent]] = [[] for _ in queries]
        roots: list = [NO_SPAN] * len(queries)

        registry = default_registry()
        m_queries = registry.counter(
            "repro_queries_total",
            "Queries evaluated by the engine",
            ("status",),
        )
        m_routed = registry.counter(
            "repro_subqueries_routed_total",
            "Window subqueries routed to storage groups",
            ("group",),
        )
        m_retries = registry.counter(
            "repro_hedged_retries_total",
            "Subqueries hedged with a retry after a drop/timeout",
            ("group",),
        )
        m_failures = registry.counter(
            "repro_node_failures_total",
            "Subqueries that terminally failed (no anchors contributed)",
            ("group", "reason"),
        )
        m_funnel = registry.counter(
            "repro_query_funnel_total",
            "Candidates surviving each stage of the query attrition funnel",
            ("stage",),
        )
        funnel = {stage: m_funnel.labels(stage=stage)
                  for stage, _field in FUNNEL_STAGES}

        def make_note(index: int):
            if not trace:
                return lambda actor, event, detail="": None

            def note(actor: str, event: str, detail: str = "") -> None:
                traces[index].append(
                    TraceEvent(time=sim.now, actor=actor, event=event,
                               detail=detail)
                )

            return note

        def node_proc(index: int, query: SequenceRecord, node: StorageNode,
                      coordinator: StorageNode, windows: list[_Window],
                      span=NO_SPAN):
            stats = per_query_stats[index]
            note = make_note(index)
            # Broadcast delivery coordinator -> node (drop-aware: a lossy
            # link or partition loses the subquery; the caller hedges).
            delivered, delay = net.try_transfer(
                coordinator.node_id,
                node.node_id,
                SubQuery(
                    src=coordinator.node_id,
                    dst=node.node_id,
                    codes_bytes=sum(w.codes.nbytes for w in windows),
                ).wire_bytes(),
            )
            yield delay
            if not delivered or not node.alive:
                return _NodeFailure(node.node_id, "unreachable")
            # Acquire the node CPU: concurrent queries queue FIFO here.
            lock = lock_for(node.node_id)
            yield lock.request()
            try:
                anchors: list[Anchor] = []
                service = 0.0
                extension_ops = 0
                candidates = identity_survivors = cscore_survivors = 0
                seen: set[tuple[str, int, int]] = set()
                local_before = node.tree.adapter.pair_evaluations
                io_seeks = io_bytes = 0
                io_seconds = 0.0
                for window in windows:
                    hits, seconds = node.local_knn(
                        window.codes, params.n, max_radius=radius
                    )
                    service += seconds
                    if node.last_io is not None:
                        io_seeks += node.last_io["seeks"]
                        io_bytes += node.last_io["bytes"]
                        io_seconds += node.last_io["seconds"]
                    stats.candidate_hits += len(hits)
                    candidates += len(hits)
                    for _dist, block_id in hits:
                        # Verified read: a hit whose durable copy fails its
                        # content digest is skipped — the query's fan-out to
                        # the block's other replicas answers from a healthy
                        # copy instead of serving rotted bytes.
                        if not node.verify_block(block_id):
                            note(node.node_id, "corrupt_skip",
                                 f"block {block_id} failed digest check")
                            continue
                        candidate = store.codes_of(block_id)
                        score = evaluate_candidate(
                            window.codes, candidate,
                            matrix if is_protein else None,
                        )
                        if score.identity < params.i:
                            continue
                        stats.identity_pass += 1
                        identity_survivors += 1
                        if score.c_score < params.c:
                            continue
                        stats.cscore_pass += 1
                        cscore_survivors += 1
                        block = store.block(block_id)
                        subject = store.record_of(block_id)
                        anchor = extend_anchor(
                            query=query.codes,
                            subject=subject.codes,
                            seq_id=block.seq_id,
                            query_start=window.query_start,
                            query_end=window.query_start + block.length,
                            subject_start=block.start,
                            identity_threshold=params.i,
                            matrix=matrix,
                        )
                        key = (anchor.seq_id, anchor.diagonal, anchor.query_start)
                        if key in seen:
                            continue
                        seen.add(key)
                        extension_ops += anchor.length
                        anchors.append(anchor)
                evals = node.tree.adapter.pair_evaluations - local_before
                stats.anchors_extended += len(anchors)
                stats.node_evals += evals
                funnel["knn_candidates"].inc(candidates)
                funnel["identity_pass"].inc(identity_survivors)
                funnel["cscore_pass"].inc(cscore_survivors)
                funnel["anchors_extended"].inc(len(anchors))
                profile_charge(
                    "node", "core/query.py:node_proc",
                    distance_evals=evals,
                    residues_compared=extension_ops,
                    blocks_scanned=candidates,
                    cold_read_bytes=io_bytes,
                    cold_read_seeks=io_seeks,
                    knn_candidates=candidates,
                    identity_pass=identity_survivors,
                    cscore_pass=cscore_survivors,
                    anchors_extended=len(anchors),
                )
                span.annotate(evals=evals, candidates=candidates,
                              identity_pass=identity_survivors,
                              cscore_pass=cscore_survivors)
                io_span = None
                if io_seeks or io_bytes:
                    # Cold tier reads this subquery paid for (device time is
                    # inside the service yield below).
                    io_span = span.child(
                        "cold_read", sim_now=sim.now, actor=node.node_id,
                        seeks=io_seeks, bytes=io_bytes, category="io",
                    )
                yield service + node.service_time_ops(extension_ops)
                if io_span is not None:
                    io_span.annotate(io_seconds=io_seconds)
                    io_span.finish(sim_now=sim.now)
            finally:
                lock.release()
            if not node.alive:
                # Crash-stop mid-service: the partial results died with it.
                return _NodeFailure(node.node_id, "died")
            note(node.node_id, "local search done",
                 f"{len(windows)} windows -> {len(anchors)} anchors")
            # Report anchors node -> coordinator (drop-aware).
            delivered, delay = net.try_transfer(
                node.node_id,
                coordinator.node_id,
                AnchorReport(
                    src=node.node_id,
                    dst=coordinator.node_id,
                    anchor_count=len(anchors),
                ).wire_bytes(),
            )
            yield delay
            if not delivered:
                return _NodeFailure(node.node_id, "unreachable")
            return anchors

        def guarded_node(index: int, query: SequenceRecord, node: StorageNode,
                         coordinator: StorageNode, windows: list[_Window],
                         parent_span=NO_SPAN):
            """One subquery with a deadline and a single hedged retry.

            Retries only make sense while the node is still alive (a dropped
            message or straggler round); a dead node's blocks are covered —
            if at all — by the replica holders in the same fan-out.
            """
            stats = per_query_stats[index]
            attempts = 0
            while True:
                span = parent_span.child(
                    f"node:{node.node_id}", sim_now=sim.now,
                    actor=node.node_id, windows=len(windows),
                    attempt=attempts,
                )
                if attempts:
                    span.annotate(hedged_retry=True)
                inner = sim.spawn(
                    node_proc(index, query, node, coordinator, windows,
                              span=span),
                    name=f"q{index}:node:{node.node_id}:a{attempts}",
                )
                if subquery_deadline is not None:
                    timer = sim.event(f"q{index}:deadline:{node.node_id}")
                    timer.fire_at(subquery_deadline)
                    which, value = yield AnyOf([inner, timer])
                    result = (
                        value if which == 0
                        else _NodeFailure(node.node_id, "deadline")
                    )
                else:
                    result = yield inner
                if not isinstance(result, _NodeFailure):
                    span.annotate(anchors=len(result))
                    span.finish(sim_now=sim.now)
                    return result
                span.annotate(failed=result.reason)
                span.finish(sim_now=sim.now)
                if attempts >= 1 or not node.alive:
                    m_failures.labels(
                        group=node.group_id, reason=result.reason
                    ).inc()
                    return result
                attempts += 1
                stats.hedged_retries += 1
                m_retries.labels(group=node.group_id).inc()

        def group_proc(index: int, query: SequenceRecord, group: StorageGroup,
                       windows: list[_Window], parent_span=NO_SPAN):
            stats = per_query_stats[index]
            note = make_note(index)
            holder = holders[index]
            gspan = parent_span.child(
                f"group:{group.group_id}", sim_now=sim.now,
                actor=group.group_id, windows=len(windows),
            )
            # Pin the coordinator for this query's lifetime: src/dst of every
            # in-flight transfer stays stable even if the entry node dies
            # mid-query (the replies were already addressed).
            coordinator = group.entry_point()
            gspan.annotate(coordinator=coordinator.node_id)
            # System entry -> group coordinator (the subquery batch).
            yield net.transfer(
                entry.node_id,
                coordinator.node_id,
                SubQuery(
                    src=entry.node_id,
                    dst=coordinator.node_id,
                    codes_bytes=sum(w.codes.nbytes for w in windows),
                ).wire_bytes(),
            )
            # Coverage denominators: every distinct block this group knows
            # about is in scope for the routed subqueries (a crashed
            # member's durable manifest still counts — its blocks are in
            # scope even though its RAM is gone).
            dead_members = []
            for member in group.nodes:
                holder["total"].update(member.known_block_ids)
                if not member.alive:
                    holder["failed"].add(member.node_id)
                    dead_members.append(member.node_id)
            if dead_members:
                gspan.annotate(dead_nodes=",".join(sorted(dead_members)))
            fanout = [node for node in group.nodes if node.alive]
            # Tiered members: prefetch every page whose summary ball can
            # intersect a subquery's search ball — one batched sequential
            # fetch per node instead of per-miss seeks — and pin the
            # candidate set so concurrent queries cannot evict it mid-scan.
            prefetch_pins = [
                (node, keys)
                for node in fanout
                if node.tiered
                for keys in [node.tier.prefetch([w.codes for w in windows],
                                                radius)]
                if keys
            ]
            node_events = [
                sim.spawn(
                    guarded_node(index, query, node, coordinator, windows,
                                 parent_span=gspan),
                    name=f"q{index}:guard:{node.node_id}",
                )
                for node in fanout
            ]
            if not node_events:
                gspan.annotate(failed="group-down")
                gspan.finish(sim_now=sim.now)
                return []  # whole group down: no anchors from here
            per_node = yield AllOf(node_events)
            for node, keys in prefetch_pins:
                if node.tier is not None:
                    node.tier.release_pins(keys)
            collected: list[Anchor] = []
            failed_here = []
            for node, result in zip(fanout, per_node):
                if isinstance(result, _NodeFailure):
                    holder["failed"].add(node.node_id)
                    failed_here.append(node.node_id)
                else:
                    collected.extend(result)
                    holder["covered"].update(node.block_ids)
            if failed_here:
                gspan.annotate(failed_nodes=",".join(sorted(failed_here)))
                if elog is not None:
                    elog.emit(
                        "subquery_failed", group.group_id,
                        f"{len(failed_here)} subquery failure(s) for "
                        f"{query.seq_id}",
                        sim_time=sim.now,
                        trace_id=getattr(gspan, "trace_id", None),
                        span_id=getattr(gspan, "span_id", None),
                        nodes=",".join(sorted(failed_here)),
                    )
            aspan = gspan.child("group_aggregate", sim_now=sim.now,
                                actor=group.group_id)
            merged = merge_anchors(collected)
            yield coordinator.service_time_ops(4 * max(1, len(collected)))
            note(group.group_id, "group aggregation",
                 f"{len(collected)} anchors merged to {len(merged)}")
            aspan.annotate(anchors_in=len(collected), anchors_out=len(merged))
            aspan.finish(sim_now=sim.now)
            # Group coordinator -> system entry.
            yield net.transfer(
                coordinator.node_id,
                entry.node_id,
                GroupReport(
                    src=coordinator.node_id,
                    dst=entry.node_id,
                    anchor_count=len(merged),
                ).wire_bytes(),
            )
            gspan.annotate(anchors=len(merged))
            gspan.finish(sim_now=sim.now)
            return merged

        def system_proc(index: int, query: SequenceRecord, arrival: float):
            stats = per_query_stats[index]
            note = make_note(index)
            if arrival > 0:
                yield arrival
            ctx = trace_contexts[index] if trace_contexts is not None else None
            root = (
                ctx.begin(f"query:{query.seq_id}", sim_now=sim.now,
                          actor="client", query_id=query.seq_id,
                          residues=len(query), entry=entry.node_id)
                if ctx is not None
                else NO_SPAN
            )
            roots[index] = root
            # Client -> system entry point.
            span = root.child("receive", sim_now=sim.now, actor="client")
            yield net.transfer("client", entry.node_id, query.codes.nbytes + 64)
            span.finish(sim_now=sim.now)
            note(entry.node_id, "query received",
                 f"{len(query)} residues from client")

            span = root.child("route", sim_now=sim.now, actor=entry.node_id)
            windows = self.windows_for(query, params)
            stats.windows = len(windows)

            # Route windows: vp-prefix hash with branching tolerance.
            adapter = self.index.prefix_tree._tree.adapter
            hash_before = adapter.pair_evaluations
            routing: dict[str, list[_Window]] = {}
            groups_by_id: dict[str, StorageGroup] = {}
            for window in windows:
                for group in topo.groups_for_query(window.codes, tolerance):
                    routing.setdefault(group.group_id, []).append(window)
                    groups_by_id[group.group_id] = group
                    stats.subqueries_routed += 1
                    m_routed.labels(group=group.group_id).inc()
            hash_evals = adapter.pair_evaluations - hash_before
            profile_charge("route", "core/query.py:system_proc",
                           distance_evals=hash_evals)
            yield entry.service_time(hash_evals)
            stats.groups_contacted = len(routing)
            span.annotate(windows=len(windows), groups=len(routing),
                          subqueries=stats.subqueries_routed)
            span.finish(sim_now=sim.now)
            note(entry.node_id, "windows hashed",
                 f"{len(windows)} windows -> {len(routing)} groups "
                 f"({stats.subqueries_routed} subqueries)")

            span = root.child("fanout", sim_now=sim.now, actor=entry.node_id,
                              groups=len(routing))
            group_events = [
                sim.spawn(group_proc(index, query, groups_by_id[gid], wins,
                                     parent_span=span),
                          name=f"q{index}:group:{gid}")
                for gid, wins in sorted(routing.items())
            ]
            merged: list[Anchor] = []
            if group_events:
                per_group = yield AllOf(group_events)
                merged = merge_anchors([a for group in per_group for a in group])
            stats.anchors_merged = len(merged)
            funnel["anchors_merged"].inc(len(merged))
            profile_charge("fanout", "core/query.py:system_proc",
                           anchors_merged=len(merged))
            span.annotate(anchors_merged=len(merged))
            span.finish(sim_now=sim.now)
            note(entry.node_id, "system aggregation",
                 f"{len(merged)} merged anchors")

            span = root.child("gapped", sim_now=sim.now, actor=entry.node_id)
            (alignments, gapped_count), gapped_ops = self._gapped_pass(
                query, merged, params, matrix
            )
            stats.gapped_extensions = gapped_count
            funnel["gapped_extensions"].inc(gapped_count)
            funnel["alignments"].inc(len(alignments))
            profile_charge("gapped", "core/query.py:system_proc",
                           residues_compared=int(gapped_ops),
                           gapped_extensions=gapped_count,
                           alignments=len(alignments))
            yield entry.service_time_ops(gapped_ops)
            span.annotate(extensions=gapped_count, alignments=len(alignments))
            span.finish(sim_now=sim.now)
            note(entry.node_id, "gapped pass done",
                 f"{gapped_count} extensions -> {len(alignments)} alignments")

            # System entry -> client.
            span = root.child("reply", sim_now=sim.now, actor=entry.node_id)
            yield net.transfer(
                entry.node_id,
                "client",
                QueryResult(
                    src=entry.node_id,
                    dst="client",
                    alignment_count=len(alignments),
                ).wire_bytes(),
            )
            span.finish(sim_now=sim.now)
            note("client", "result received",
                 f"{len(alignments)} ranked alignments")
            root.finish(sim_now=sim.now)
            holders[index]["alignments"] = alignments
            holders[index]["completed_at"] = sim.now
            holders[index]["arrival"] = arrival
            if monitor is not None or elog is not None:
                holder = holders[index]
                total, covered = holder["total"], holder["covered"]
                coverage = (
                    1.0 if not total else len(covered & total) / len(total)
                )
                turnaround = sim.now - arrival
                trace_id = getattr(root, "trace_id", None)
                if monitor is not None:
                    monitor.observe_query(
                        sim.now, turnaround, coverage,
                        degraded=coverage < 1.0, trace_id=trace_id,
                    )
                if elog is not None:
                    elog.emit(
                        "query", entry.node_id,
                        f"{query.seq_id} answered", sim_time=sim.now,
                        trace_id=trace_id,
                        coverage=round(coverage, 6),
                        degraded=coverage < 1.0,
                        turnaround=round(turnaround, 9),
                    )

        done_events = [
            sim.spawn(
                system_proc(
                    i, query,
                    arrival_times[i] if arrival_times is not None
                    else i * arrival_interval,
                ),
                name=f"q{i}:system-entry",
            )
            for i, query in enumerate(queries)
        ]
        sim.run()
        if not all(event.fired for event in done_events):
            raise RuntimeError("query simulation did not complete")

        reports: list[QueryReport] = []
        for index, query in enumerate(queries):
            stats = per_query_stats[index]
            holder = holders[index]
            alignments = holder.get("alignments", [])
            stats.turnaround = holder["completed_at"] - holder["arrival"]
            stats.alignments_reported = len(alignments)
            stats.messages = net.stats.messages
            stats.bytes_sent = net.stats.bytes_sent
            total = holder["total"]
            covered = holder["covered"]
            coverage = 1.0 if not total else len(covered & total) / len(total)
            degraded = coverage < 1.0
            root = roots[index]
            root.annotate(
                coverage=round(coverage, 6),
                degraded=degraded,
                hedged_retries=stats.hedged_retries,
                turnaround=stats.turnaround,
            )
            if holder["failed"]:
                root.annotate(failed_nodes=",".join(sorted(holder["failed"])))
            m_queries.labels(status="degraded" if degraded else "ok").inc()
            reports.append(
                QueryReport(
                    query_id=query.seq_id,
                    alignments=alignments,
                    stats=stats,
                    trace=traces[index],
                    coverage=coverage,
                    degraded=degraded,
                    failed_nodes=sorted(holder["failed"]),
                    root_span=root if isinstance(root, Span) else None,
                )
            )
        return reports

    # -- the final gapped pass -------------------------------------------------------

    def _gapped_pass(
        self,
        query: SequenceRecord,
        merged: list[Anchor],
        params: QueryParams,
        matrix: np.ndarray,
    ) -> tuple[tuple[list[Alignment], int], float]:
        """Gapped-extend qualifying anchors; score, filter by E, dedupe, rank.

        Returns ``((alignments, gapped_count), residue_ops_charged)``.
        """
        ka = self.ka_params(params)
        db_len = max(1, self.index.database.total_residues)
        ops = 0.0
        gapped_count = 0
        raw: list[Alignment] = []
        # Process each subject bin best-first: once a gapped extension covers
        # a region, remaining anchors of the same sequence within l diagonals
        # whose seed falls inside it are absorbed ("the gapped extension
        # considers all anchors from the same sequence within l diagonals in
        # either direction") rather than re-extended.
        by_subject: dict[str, list[Anchor]] = {}
        for anchor in merged:
            by_subject.setdefault(anchor.seq_id, []).append(anchor)

        for seq_id in sorted(by_subject):
            # Process best raw score first: long, reliable anchors claim the
            # per-subject budget before short lucky ones (the normalised
            # score S stays the *trigger*, per the paper, not the order).
            bin_anchors = sorted(
                by_subject[seq_id],
                key=lambda a: (-a.score, a.query_start),
            )
            covered: list[tuple[int, int, int]] = []  # (q_start, q_end, diagonal)
            per_subject = 0
            for anchor in bin_anchors:
                normalised = anchor.score / max(1, anchor.length)
                if normalised < params.S:
                    continue
                if per_subject >= params.max_gapped_per_subject:
                    break
                mid = (anchor.query_start + anchor.query_end) // 2
                if any(
                    lo <= mid < hi and abs(anchor.diagonal - diag) <= params.l
                    for lo, hi, diag in covered
                ):
                    continue
                raw_alignment, cell_ops = self._extend_and_score(
                    query, anchor, params, matrix, ka, db_len
                )
                ops += cell_ops
                gapped_count += 1
                per_subject += 1
                if raw_alignment is not None:
                    covered.append(
                        (
                            raw_alignment.query_start,
                            raw_alignment.query_end,
                            anchor.diagonal,
                        )
                    )
                    raw.append(raw_alignment)
        alignments = self._dedupe_rank(raw)
        return (alignments, gapped_count), ops

    def _extend_and_score(
        self,
        query: SequenceRecord,
        anchor: Anchor,
        params: QueryParams,
        matrix: np.ndarray,
        ka: KarlinAltschulParams,
        db_len: int,
    ) -> tuple[Alignment | None, float]:
        """Gapped-extend one anchor and build its alignment (or ``None`` if
        it fails the E-value filter); returns the residue-op cost too."""
        ops = 0.0
        subject = self.index.database[anchor.seq_id]
        seed_q = (anchor.query_start + anchor.query_end) // 2
        seed_s = seed_q + anchor.diagonal
        seed_q = min(max(seed_q, 0), len(query) - 1)
        seed_s = min(max(seed_s, 0), len(subject) - 1)
        if params.l > 0:
            ext = banded_extend(
                query.codes,
                subject.codes,
                matrix,
                seed_query=seed_q,
                seed_subject=seed_s,
                bandwidth=params.l,
                gap_open=params.gap_open,
                gap_extend=params.gap_extend,
                x_drop=params.x_drop,
            )
            span = ext.query_end - ext.query_start
            ops += span * (2 * params.l + 1)
            q_start, q_end = ext.query_start, ext.query_end
            s_start, s_end = ext.subject_start, ext.subject_end
            score = ext.score
        else:
            q_start, q_end = anchor.query_start, anchor.query_end
            s_start, s_end = anchor.subject_start, anchor.subject_end
            score = anchor.score
            ops += anchor.length

        evalue = ka.evalue(score, len(query), db_len)
        if evalue > params.E:
            return None, ops
        identity = self._ungapped_identity(
            query.codes, subject.codes, q_start, q_end, s_start, s_end
        )
        return (
            Alignment(
                query_id=query.seq_id,
                subject_id=anchor.seq_id,
                query_start=q_start,
                query_end=q_end,
                subject_start=s_start,
                subject_end=s_end,
                score=score,
                bit_score=ka.bit_score(score),
                evalue=evalue,
                identity=identity,
            ),
            ops,
        )

    @staticmethod
    def _ungapped_identity(
        query: np.ndarray,
        subject: np.ndarray,
        q_start: int,
        q_end: int,
        s_start: int,
        s_end: int,
    ) -> float:
        """Identity estimate along the dominant diagonal of the extension."""
        span = min(q_end - q_start, s_end - s_start)
        if span <= 0:
            return 0.0
        q = query[q_start : q_start + span]
        s = subject[s_start : s_start + span]
        return float((q == s).sum()) / span

    @staticmethod
    def _dedupe_rank(alignments: list[Alignment]) -> list[Alignment]:
        """Suppress near-duplicate alignments (same subject, mostly
        overlapping query spans), then rank by E-value then score."""
        ordered = sorted(alignments, key=lambda a: (a.evalue, -a.score))
        kept: list[Alignment] = []
        for candidate in ordered:
            duplicate = False
            for existing in kept:
                if existing.subject_id != candidate.subject_id:
                    continue
                lo = max(existing.query_start, candidate.query_start)
                hi = min(existing.query_end, candidate.query_end)
                overlap = max(0, hi - lo)
                shorter = max(
                    1, min(existing.query_span, candidate.query_span)
                )
                if overlap / shorter > 0.7:
                    duplicate = True
                    break
            if not duplicate:
                kept.append(candidate)
        return kept
