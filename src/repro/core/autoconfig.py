"""Automatic deployment configuration (paper section VII-B, future work).

"Currently, many aspects of the system configuration require user
intervention with an in-depth knowledge of the Mendel framework."

:func:`suggest_config` derives a reasonable :class:`MendelConfig` from the
database itself and a node budget, encoding the deployment heuristics the
paper leaves to the operator:

* **segment length** — 8 for protein, 16 for DNA (DNA's 4-letter alphabet
  needs longer windows for the same seed specificity);
* **group shape** — groups of ~5 nodes (the paper's configuration), with
  the group count filling the node budget;
* **prefix-tree sample** — large enough that the frontier at half depth has
  several regions per group, bounded to keep hashing cheap;
* **replication** — 2 when groups can afford it and fault tolerance is
  requested.
"""

from __future__ import annotations

from repro.core.params import MendelConfig
from repro.seq.records import SequenceSet
from repro.util.validation import check_positive

_PAPER_GROUP_SIZE = 5


def suggest_config(
    database: SequenceSet,
    node_budget: int = 50,
    fault_tolerant: bool = False,
    seed: int = 42,
) -> MendelConfig:
    """A :class:`MendelConfig` tuned to *database* and *node_budget*."""
    check_positive("node_budget", node_budget)
    if len(database) == 0:
        raise ValueError("cannot configure for an empty database")

    segment_length = 16 if database.alphabet.name == "dna" else 8

    group_size = min(_PAPER_GROUP_SIZE, node_budget)
    group_count = max(1, node_budget // group_size)

    block_estimate = max(
        2, sum(max(0, len(r) - segment_length + 1) for r in database)
    )
    # Enough sample mass for ~16 frontier regions per group, within bounds.
    sample_size = int(min(8192, max(256, 32 * group_count * 16)))
    sample_size = min(sample_size, block_estimate)
    sample_size = max(2, sample_size)

    replication = 2 if fault_tolerant and group_size >= 2 else 1

    return MendelConfig(
        segment_length=segment_length,
        group_count=group_count,
        group_size=group_size,
        sample_size=sample_size,
        replication=replication,
        seed=seed,
    )
