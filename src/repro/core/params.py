"""Query parameters — Table I of the paper, plus framework configuration.

Table I defines the per-query knobs:

====  =========================================  ============
name  description                                type
====  =========================================  ============
k     sliding window step                        int(1..inf)
n     number of nearest neighbours to find       int(1..inf)
i     identity threshold                         float(0..1)
c     consecutivity score threshold              float(0..1)
M     scoring matrix                             string
S     score threshold for gapped extension       float(0..inf)
l     gapped alignment band width                int(0..inf)
E     expectation value threshold                float(0..inf)
====  =========================================  ============

:class:`QueryParams` carries exactly those eight, validated to those types
and ranges; engine-internal tuning that the paper leaves implicit (branching
tolerance, X-drop, gap penalties) lives in the same dataclass but is
documented as an extension.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.seq.matrices import named_matrix
from repro.util.validation import check_fraction, check_non_negative


@dataclass(frozen=True)
class QueryParams:
    """The paper's per-query parameter set (Table I)."""

    #: sliding window step over the query (subquery amplification control)
    k: int = 4
    #: number of nearest neighbours each node returns per subquery
    n: int = 8
    #: percent-identity threshold for candidate filtering
    i: float = 0.5
    #: consecutivity-score threshold for candidate filtering
    c: float = 0.5
    #: scoring matrix used for final alignment scoring
    M: str = "BLOSUM62"
    #: per-residue normalised anchor score required to trigger gapped extension
    S: float = 1.0
    #: gapped alignment band width (diagonals either side)
    l: int = 8
    #: expectation-value threshold for reporting
    E: float = 10.0

    # -- engine tuning the paper leaves implicit (documented extensions) -----
    #: vp-prefix traversal branching tolerance (metric units); 0 = never
    #: replicate, ``None`` = auto: half the identity-derived search radius,
    #: so low-identity searches replicate widely and read-mapping searches
    #: route point-to-point
    tolerance: float | None = None
    #: X-drop for ungapped/gapped extensions
    x_drop: float = 25.0
    #: affine gap penalties for the gapped pass
    gap_open: float = 11.0
    gap_extend: float = 1.0
    #: cap on gapped extensions per subject sequence (the bin-level
    #: absorption of section V-B bounds work on noisy bins)
    max_gapped_per_subject: int = 4
    #: scale on the identity-derived NNS radius bound: 1.0 is lossless (the
    #: bound equals the largest distance the identity filter could accept);
    #: < 1.0 trades sensitivity for speed
    search_radius_scale: float = 1.0

    def __post_init__(self) -> None:
        if not isinstance(self.k, int) or self.k < 1:
            raise ValueError(f"k must be int >= 1, got {self.k!r}")
        if not isinstance(self.n, int) or self.n < 1:
            raise ValueError(f"n must be int >= 1, got {self.n!r}")
        check_fraction("i", self.i)
        check_fraction("c", self.c)
        if not isinstance(self.M, str) or not self.M:
            raise ValueError(f"M must be a non-empty matrix name, got {self.M!r}")
        named_matrix(self.M)  # fail fast on unknown matrices
        check_non_negative("S", self.S)
        if not isinstance(self.l, int) or self.l < 0:
            raise ValueError(f"l must be int >= 0, got {self.l!r}")
        check_non_negative("E", self.E)
        if self.tolerance is not None:
            check_non_negative("tolerance", self.tolerance)
        check_non_negative("x_drop", self.x_drop)
        if self.gap_open < self.gap_extend:
            raise ValueError(
                f"gap_open ({self.gap_open}) must be >= gap_extend "
                f"({self.gap_extend})"
            )
        if not isinstance(self.max_gapped_per_subject, int) or (
            self.max_gapped_per_subject < 1
        ):
            raise ValueError(
                "max_gapped_per_subject must be int >= 1, got "
                f"{self.max_gapped_per_subject!r}"
            )
        if not self.search_radius_scale > 0:
            raise ValueError(
                f"search_radius_scale must be positive, got "
                f"{self.search_radius_scale!r}"
            )

    def scoring_matrix(self):
        """Resolve ``M`` to its matrix (the user-defined scoring parameter)."""
        return named_matrix(self.M)

    def cache_key(self) -> str:
        """A stable canonical string: equal searches produce equal keys.

        Normalises representational slack that dataclass equality preserves:
        matrix names are case-insensitive (``named_matrix`` lowercases), and
        numeric fields that validate as "number" may arrive as ``int`` or
        ``float`` (``S=1`` vs ``S=1.0``) — both spell the same search, so
        both canonicalise to the float repr.  Field order is fixed by the
        dataclass definition, so the key is stable across processes.
        """
        parts = []
        for spec in fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, bool):  # guard: bool is an int subclass
                canon = repr(value)
            elif isinstance(value, (int, float)):
                canon = repr(float(value))
            elif isinstance(value, str):
                canon = value.lower() if spec.name == "M" else value
            else:
                canon = repr(value)
            parts.append(f"{spec.name}={canon}")
        return ";".join(parts)

    @classmethod
    def table_rows(cls) -> list[tuple[str, str, str]]:
        """The (parameter, description, type) rows of Table I, for the
        bench harness to print."""
        return [
            ("k", "Sliding window step", "int(1..inf)"),
            ("n", "No. of nearest neighbors to find", "int(1..inf)"),
            ("i", "Identity threshold", "float(0..1)"),
            ("c", "Consecutivity score threshold", "float(0..1)"),
            ("M", "Scoring Matrix", "string"),
            ("S", "Score threshold for gapped extension", "float(0..inf)"),
            ("l", "Gapped alignment band width", "int(0..inf)"),
            ("E", "Expectation value threshold", "float(0..inf)"),
        ]


@dataclass(frozen=True)
class MendelConfig:
    """Framework-level (index-time) configuration.

    These are the user-configurable deployment knobs of section IV-C: group
    shape, indexed segment length, prefix-tree depth, and sampling.
    """

    #: indexed block length (the inverted-index window size)
    segment_length: int = 8
    #: number of storage groups
    group_count: int = 10
    #: nodes per group
    group_size: int = 5
    #: local vp-tree leaf bucket capacity
    bucket_capacity: int = 64
    #: vp-prefix tree cutoff depth; None applies the paper's half-depth rule
    prefix_depth: int | None = None
    #: sample size used to build the shared vp-prefix tree
    sample_size: int = 2048
    #: prefix-tree leaf bucket capacity (shapes achievable depth)
    prefix_bucket_capacity: int = 4
    #: mirror the paper's heterogeneous testbed (two hardware classes)
    heterogeneous: bool = True
    #: copies of each block within its group (1 = no replication; the
    #: fault-tolerance extension of section VII-B future work)
    replication: int = 1
    #: intra-group placement: False = the paper's flat ``SHA-1 mod N``,
    #: True = a consistent-hashing ring, so elastic membership changes move
    #: only ~1/N of a group's blocks (the autoscaler-friendly mode)
    ring_placement: bool = False
    #: master seed for all derived randomness
    seed: int = 42

    def __post_init__(self) -> None:
        if self.segment_length < 2:
            raise ValueError(
                f"segment_length must be >= 2, got {self.segment_length}"
            )
        if self.group_count < 1 or self.group_size < 1:
            raise ValueError("group_count and group_size must be >= 1")
        if self.bucket_capacity < 1 or self.prefix_bucket_capacity < 1:
            raise ValueError("bucket capacities must be >= 1")
        if self.prefix_depth is not None and self.prefix_depth < 1:
            raise ValueError(f"prefix_depth must be >= 1, got {self.prefix_depth}")
        if self.sample_size < 2:
            raise ValueError(f"sample_size must be >= 2, got {self.sample_size}")
        if not 1 <= self.replication <= self.group_size:
            raise ValueError(
                f"replication must be in 1..group_size ({self.group_size}), "
                f"got {self.replication}"
            )
