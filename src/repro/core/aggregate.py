"""Anchor aggregation (paper section V-B, the two checkpoint stages).

Anchors stream back from worker nodes to the *group entry point* and then to
the *system entry point*.  At each checkpoint, anchors are binned by subject
sequence id, sorted by start position, and overlapping anchors on the same
diagonal are combined.  The same :func:`merge_anchors` routine serves both
stages (the operation is idempotent and associative over anchor sets, which
the property tests verify — that is what makes two-stage aggregation safe).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

from repro.align.result import Anchor


def bin_by_sequence(anchors: Iterable[Anchor]) -> dict[str, list[Anchor]]:
    """Bin anchors by subject sequence id, each bin sorted by diagonal and
    start position (the paper's "categorized anchors")."""
    bins: dict[str, list[Anchor]] = defaultdict(list)
    for anchor in anchors:
        bins[anchor.seq_id].append(anchor)
    for seq_id in bins:
        bins[seq_id].sort(key=lambda a: (a.diagonal, a.query_start, a.query_end))
    return dict(bins)


def merge_same_diagonal(anchors: Sequence[Anchor]) -> list[Anchor]:
    """Merge overlapping/touching anchors sharing one (seq, diagonal).

    Input must already be sorted by ``query_start``; output preserves order.
    """
    merged: list[Anchor] = []
    for anchor in anchors:
        if merged and merged[-1].overlaps(anchor):
            merged[-1] = merged[-1].merge(anchor)
        else:
            merged.append(anchor)
    return merged


def merge_anchors(anchors: Iterable[Anchor]) -> list[Anchor]:
    """Full checkpoint aggregation: bin by sequence, group by diagonal,
    combine overlaps.  Deterministic output order: by sequence id, then
    diagonal, then query start."""
    out: list[Anchor] = []
    for seq_id, per_seq in sorted(bin_by_sequence(anchors).items()):
        per_diag: dict[int, list[Anchor]] = defaultdict(list)
        for anchor in per_seq:  # already sorted by (diagonal, query_start)
            per_diag[anchor.diagonal].append(anchor)
        for diagonal in sorted(per_diag):
            out.extend(merge_same_diagonal(per_diag[diagonal]))
    return out
