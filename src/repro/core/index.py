"""Index construction: the three-step pipeline of section V-A.

1. **Inverted-index block creation** — :class:`~repro.core.blocks.BlockStore`
   slides a stride-1 window over every reference sequence.
2. **Vp-prefix tree sequence dispersion** — a shared
   :class:`~repro.vptree.prefix.VPPrefixTree` (built over a sample of the
   blocks) hashes each block to a storage group; flat SHA-1 picks the node
   within the group.
3. **Local vp-tree indexing** — each node batch-inserts its blocks into its
   dynamic vp-tree.

The index also records a simulated *indexing makespan*: per-node insertion
work proceeds in parallel across the cluster (the paper's batch submission),
so the makespan is the slowest node's service time plus dispersal costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.cluster.group import StorageGroup
from repro.cluster.node import StorageNode
from repro.cluster.topology import ClusterSpec, ClusterTopology
from repro.core.blocks import BlockStore
from repro.core.params import MendelConfig
from repro.obs.metrics import default_registry
from repro.seq.distance import default_distance
from repro.seq.records import SequenceSet
from repro.util.rng import as_generator
from repro.vptree.prefix import VPPrefixTree


@dataclass
class IndexStats:
    """Bookkeeping from index construction."""

    block_count: int = 0
    hash_evals: int = 0
    insert_evals: int = 0
    simulated_makespan: float = 0.0
    per_node_blocks: dict[str, int] = field(default_factory=dict)


@dataclass
class TopologyChange:
    """Handle for an online split/merge of storage groups.

    The routing-table update and the block copies onto the destination are
    applied atomically (between simulation events), but the *source* group
    keeps its copies of the moved blocks until :meth:`settle` — a
    dual-ownership window during which queries routed before the change
    still find every block where they expect it, so in-flight answers stay
    complete.  The autoscaler settles a change on its next tick; offline
    callers settle immediately (the default).
    """

    kind: str  # "node_added" | "group_split" | "group_merged"
    source: str
    target: str
    moved_blocks: int
    #: the (left, right) child prefixes when a single-prefix group was
    #: sharpened one level deeper in the vp-prefix tree, else ``None``
    refined: tuple[int, int] | None = None
    settled: bool = False
    _settle_fn: Callable[[], None] | None = field(default=None, repr=False)

    def settle(self) -> None:
        """Drop the source group's retained copies (idempotent)."""
        if self.settled:
            return
        self.settled = True
        if self._settle_fn is not None:
            self._settle_fn()


class MendelIndex:
    """A fully built Mendel deployment: block store + cluster + prefix LSH.

    Parameters
    ----------
    database:
        The reference :class:`~repro.seq.records.SequenceSet`.
    config:
        Deployment shape (:class:`~repro.core.params.MendelConfig`).
    """

    #: Mutation counter: bumped by :meth:`insert_sequences` and
    #: :meth:`add_node`, so cache layers (:mod:`repro.serve`) can detect that
    #: previously computed results may be stale.  A class-level default keeps
    #: instances reconstructed via ``__new__`` (the persistence path) valid.
    version: int = 0
    #: tiered-storage state (class-level defaults so ``__new__``-path
    #: reconstruction yields a valid all-RAM deployment; tiering is a
    #: runtime policy applied after load, never persisted)
    tier_cache = None
    tier_config = None

    def __init__(self, database: SequenceSet, config: MendelConfig) -> None:
        if len(database) == 0:
            raise ValueError("cannot index an empty database")
        self.database = database
        self.config = config
        self.alphabet = database.alphabet
        self.stats = IndexStats()
        gen = as_generator(config.seed)

        # Step 1: inverted-index block creation.
        self.store = BlockStore(database, config.segment_length)
        if len(self.store) < 2:
            raise ValueError(
                "database produced fewer than 2 index blocks; sequences must "
                f"be at least segment_length={config.segment_length} long"
            )
        self.stats.block_count = len(self.store)

        # Shared tier-1 LSH built over a block sample.
        sample_size = min(config.sample_size, len(self.store))
        sample_ids = gen.choice(len(self.store), size=sample_size, replace=False)
        sample = self.store.codes_matrix(sample_ids)
        self._metric_factory = lambda: default_distance(self.alphabet)
        self.prefix_tree = VPPrefixTree(
            sample,
            self._metric_factory(),
            depth_threshold=config.prefix_depth,
            bucket_capacity=config.prefix_bucket_capacity,
            rng=int(gen.integers(0, 2**31 - 1)),
        )

        # Cluster shell.
        spec = ClusterSpec(
            group_count=config.group_count,
            group_size=config.group_size,
            heterogeneous=config.heterogeneous,
            bucket_capacity=config.bucket_capacity,
            ring_placement=config.ring_placement,
        )
        self.topology = ClusterTopology(
            spec=spec,
            prefix_tree=self.prefix_tree,
            sample=sample,
            metric_factory=self._metric_factory,
            segment_length=config.segment_length,
            rng=int(gen.integers(0, 2**31 - 1)),
        )

        # Steps 2+3: dispersion and local indexing (batched per node).
        self.node_of_block: dict[int, str] = {}
        self._disperse()

    # -- construction internals ------------------------------------------------

    def _disperse(self) -> None:
        """Hash every block to its node and batch-insert per node."""
        tree_adapter = self.prefix_tree._tree.adapter
        evals_before = tree_adapter.pair_evaluations

        per_node_ids: dict[str, list[int]] = {
            node.node_id: [] for node in self.topology.nodes
        }
        nodes_by_id: dict[str, StorageNode] = {
            node.node_id: node for node in self.topology.nodes
        }
        replication = self.config.replication
        for block in self.store.blocks:
            codes = self.store.codes_of(block.block_id)
            prefix = self.prefix_tree.hash_one(codes).prefix
            group = self.topology.group_for_prefix(prefix)
            replicas = group.place_replicas(
                self.store.block_key(block.block_id), replication
            )
            for node in replicas:
                per_node_ids[node.node_id].append(block.block_id)
            self.node_of_block[block.block_id] = replicas[0].node_id

        self.stats.hash_evals = tree_adapter.pair_evaluations - evals_before

        makespan = 0.0
        for node_id, block_ids in per_node_ids.items():
            node = nodes_by_id[node_id]
            if block_ids:
                before = node.tree.adapter.pair_evaluations
                codes = self.store.codes_matrix(block_ids)
                node.store_blocks(codes, block_ids)
                evals = node.tree.adapter.pair_evaluations - before
                self.stats.insert_evals += evals
                makespan = max(makespan, node.service_time(evals))
            self.stats.per_node_blocks[node_id] = len(block_ids)
        # Hashing is embarrassingly parallel: the prefix tree is replicated
        # cluster-wide and every node ingests (and hashes) its share of the
        # input stream, pipelining with insertion — so the makespan is the
        # slower of per-node insertion and the per-node hashing share.
        entry = self.topology.nodes[0]
        node_count = max(1, len(self.topology.nodes))
        self.stats.simulated_makespan = max(
            makespan, entry.service_time(self.stats.hash_evals // node_count)
        )

    # -- convenience ----------------------------------------------------------------

    @property
    def segment_length(self) -> int:
        return self.config.segment_length

    def node(self, node_id: str) -> StorageNode:
        for node in self.topology.nodes:
            if node.node_id == node_id:
                return node
        raise KeyError(f"no node {node_id!r}")

    def load_fractions(self) -> dict[str, float]:
        """Per-node fraction of stored blocks (the Fig. 5 measure)."""
        return self.topology.load_fractions()

    # -- failure handling -------------------------------------------------------

    def fail_node(self, node_id: str, rereplicate: bool = False) -> StorageNode:
        """Crash-stop one node; with ``rereplicate=True`` immediately stream
        its blocks from surviving replicas so the replication factor is
        restored (the offline analogue of the chaos controller's detected
        repair)."""
        node = self.node(node_id)
        node.fail()
        if rereplicate:
            self.rereplicate(node.group_id)
        self.version += 1
        return node

    def recover_node(self, node_id: str) -> StorageNode:
        """Rejoin a crashed node and reconcile its group's placement.

        The bare :meth:`~repro.cluster.node.StorageNode.recover` leaves the
        cluster over-replicated (repair copies plus the rejoined node's
        original data); this entry point immediately syncs the group back to
        canonical placement so every block ends up on exactly
        ``config.replication`` holders.
        """
        node = self.node(node_id)
        node.recover()
        self.rereplicate(node.group_id)
        self.version += 1
        return node

    def rereplicate(self, group_id: str | None = None):
        """Reconcile placement (one group, or all) against ground-truth
        liveness; returns the :class:`~repro.faults.repair.RepairReport`."""
        from repro.faults.repair import ReReplicator

        repairer = ReReplicator(self)
        if group_id is None:
            return repairer.sync_all()
        return repairer.sync_group(self.topology.group(group_id))

    # -- durability and integrity -----------------------------------------------

    def scrub(self, heal: bool = True, event_log=None):
        """One full anti-entropy pass: digest-verify every replica copy,
        quarantine confirmed-corrupt ones and (with ``heal=True``) stream
        them back from verified replicas immediately.  Returns the
        :class:`~repro.store.scrub.ScrubReport`."""
        from repro.faults.repair import ReReplicator
        from repro.store.scrub import IntegrityScrubber

        repairer = ReReplicator(self)
        scrubber = IntegrityScrubber(
            self,
            event_log=event_log,
            heal=(lambda group, findings: repairer.sync_group(group))
            if heal
            else None,
        )
        scrubber.scrub_all()
        self.version += 1
        return scrubber.report

    def flush_durable(self) -> int:
        """Checkpoint every node's WAL into its snapshot; returns how many
        nodes acknowledged the checkpoint."""
        return sum(1 for node in self.topology.nodes if node.flush_durable())

    def durability_report(self) -> dict:
        """Per-node durable-state status plus cluster-wide rollups."""
        nodes = {
            node.node_id: dict(
                node.durable.status(),
                alive=node.alive,
                degraded=node.durability_degraded,
                ram_blocks=node.block_count,
                recoveries=node.stats.recoveries,
                corrupt_reads=node.stats.corrupt_reads,
            )
            for node in self.topology.nodes
        }
        return {
            "nodes": nodes,
            "durable_blocks": sum(
                status["blocks"] for status in nodes.values()
            ),
            "wal_records": sum(
                status["wal_records"] for status in nodes.values()
            ),
            "degraded_nodes": sorted(
                node_id
                for node_id, status in nodes.items()
                if status["degraded"]
            ),
        }

    # -- tiered storage ----------------------------------------------------------

    @property
    def tiered(self) -> bool:
        """Whether the deployment currently runs with a disk tier."""
        return self.tier_cache is not None

    def spill_to_tier(self, cache_bytes: int | None = None, config=None):
        """Spill every live node's block codes to its on-disk block file,
        serving cold reads through one shared bounded RAM cache.

        Search results stay byte-identical to the all-RAM deployment (the
        tree structure and every traversal decision are unchanged); only
        simulated service times gain cold-read charges.  Returns the
        shared :class:`~repro.tier.cache.BlockCache`.

        Parameters
        ----------
        cache_bytes:
            RAM budget for the shared page cache (overrides *config*).
        config:
            Full :class:`~repro.tier.store.TierConfig`; defaults derive
            the codec alphabet from the index's own alphabet.
        """
        import dataclasses

        from repro.tier.cache import BlockCache
        from repro.tier.store import TierConfig

        if config is None:
            config = TierConfig(alphabet_size=self.alphabet.size)
        if cache_bytes is not None:
            config = dataclasses.replace(config, cache_bytes=int(cache_bytes))
        if self.tiered:
            self.unspill_tier()
        cache = BlockCache(
            config.cache_bytes, probation_fraction=config.probation_fraction
        )
        for node in self.topology.nodes:
            node.attach_tier(cache, config)
            if node.alive:
                node.spill()
        self.tier_cache = cache
        self.tier_config = config
        self.version += 1
        return cache

    def unspill_tier(self) -> None:
        """Fold every node back to all-RAM and drop the tier policy."""
        if not self.tiered:
            return
        for node in self.topology.nodes:
            node.detach_tier()
        self.tier_cache = None
        self.tier_config = None
        self.version += 1

    def tier_report(self) -> dict:
        """Cluster-wide tier occupancy: cache stats, per-node occupancy,
        and rollups (``repro tier`` and the health endpoint render this)."""
        nodes = {
            node.node_id: occ
            for node in self.topology.nodes
            if (occ := node.tier_occupancy()) is not None
        }
        bytes_on_disk = sum(occ["bytes_on_disk"] for occ in nodes.values())
        raw_bytes = sum(occ["raw_bytes"] for occ in nodes.values())
        resident = sum(occ["resident_bytes"] for occ in nodes.values())
        report = {
            "enabled": self.tiered,
            "spilled_nodes": len(nodes),
            "bytes_on_disk": bytes_on_disk,
            "raw_bytes": raw_bytes,
            "resident_bytes": resident,
            "pinned_bytes": sum(occ["pinned_bytes"] for occ in nodes.values()),
            "pinned_pages": sum(
                occ["pinned_pages"] for occ in nodes.values()
            ),
            "cold_read_seeks": sum(
                occ["cold_read_seeks"] for occ in nodes.values()
            ),
            "cold_read_bytes": sum(
                occ["cold_read_bytes"] for occ in nodes.values()
            ),
            "summary_bytes": sum(
                occ["summary_bytes"] for occ in nodes.values()
            ),
            "pages": sum(occ["pages"] for occ in nodes.values()),
            "compression_ratio": (raw_bytes / bytes_on_disk)
            if bytes_on_disk
            else 0.0,
            "resident_fraction": (resident / raw_bytes) if raw_bytes else 0.0,
            "cache": self.tier_cache.stats() if self.tier_cache else None,
            "nodes": nodes,
        }
        return report

    # -- elastic topology mutation ----------------------------------------------

    def _new_node(self, group_id: str, number: int) -> StorageNode:
        """A deterministically seeded node for elastic growth."""
        from repro.cluster.node import HP_DL160, SUNFIRE_X4100

        profile = (
            (HP_DL160, SUNFIRE_X4100)[number % 2]
            if self.config.heterogeneous
            else HP_DL160
        )
        node = StorageNode(
            node_id=f"{group_id}.n{number}",
            group_id=group_id,
            metric_factory=self._metric_factory,
            segment_length=self.config.segment_length,
            profile=profile,
            bucket_capacity=self.config.bucket_capacity,
            rng_seed=number + 1,
        )
        if self.tiered:
            # Elastic growth under a spilled deployment: the new node joins
            # the tier policy, so the blocks streamed onto it land in its
            # block file, not RAM.
            node.attach_tier(self.tier_cache, self.tier_config)
        return node

    def _replace_group(
        self, group: StorageGroup, block_ids: list[int] | None = None
    ) -> None:
        """Re-place *block_ids* (default: the group's current union) over the
        group's current membership — the canonical layout every mutation
        converges to."""
        if block_ids is None:
            block_ids = sorted(
                {bid for member in group.nodes for bid in member.known_block_ids}
            )
        for member in group.nodes:
            member.reset_storage()
        per_node: dict[str, list[int]] = {n.node_id: [] for n in group.nodes}
        for block_id in block_ids:
            replicas = group.place_replicas(
                self.store.block_key(block_id), self.config.replication
            )
            for replica in replicas:
                per_node[replica.node_id].append(block_id)
            self.node_of_block[block_id] = replicas[0].node_id
        for member in group.nodes:
            ids = per_node[member.node_id]
            if ids:
                member.store_blocks(self.store.codes_matrix(ids), ids)
            self.stats.per_node_blocks[member.node_id] = len(ids)

    def _place_on_group(
        self, group: StorageGroup, block_ids: list[int]
    ) -> None:
        """Add *block_ids* to *group* under its placement hash (without
        touching what the group already holds)."""
        per_node: dict[str, list[int]] = {n.node_id: [] for n in group.nodes}
        for block_id in block_ids:
            replicas = group.place_replicas(
                self.store.block_key(block_id), self.config.replication
            )
            for replica in replicas:
                per_node[replica.node_id].append(block_id)
            self.node_of_block[block_id] = replicas[0].node_id
        for member in group.nodes:
            ids = per_node[member.node_id]
            if ids:
                member.store_blocks(self.store.codes_matrix(ids), ids)
            self.stats.per_node_blocks[member.node_id] = (
                self.stats.per_node_blocks.get(member.node_id, 0) + len(ids)
            )

    def expand_group(
        self, group_id: str, settle: bool = True
    ) -> TopologyChange:
        """Elastically grow one storage group by a node and redistribute.

        The DHT story of section IV-A — "commodity hardware can be added
        incrementally if there is demand for additional storage or
        processing" — applied to one group: a new node joins, the group's
        placement hash is rebuilt, and blocks whose placement changed are
        *copied* to their new holders (the streaming block transfer).  The
        old copies survive until :meth:`TopologyChange.settle`, so queries
        fanned out under either membership find every block; offline
        callers settle immediately (the default), converging to the
        canonical layout.  Only this group's data moves; the tier-1
        prefix->group assignment is untouched, so the rest of the cluster
        is unaffected.
        """
        group = self.topology.group(group_id)  # KeyError for unknown groups
        node = self._new_node(group_id, len(group.nodes))
        held_before = {
            member.node_id: set(member.known_block_ids)
            for member in group.nodes
        }
        blocks = sorted(
            set().union(*held_before.values()) if held_before else set()
        )
        group.add_node(node)
        per_node_add: dict[str, list[int]] = {n.node_id: [] for n in group.nodes}
        for block_id in blocks:
            replicas = group.place_replicas(
                self.store.block_key(block_id), self.config.replication
            )
            self.node_of_block[block_id] = replicas[0].node_id
            for replica in replicas:
                if block_id not in held_before.get(replica.node_id, set()):
                    per_node_add[replica.node_id].append(block_id)
        streamed = 0
        for member in group.nodes:
            added = per_node_add[member.node_id]
            if added:
                member.store_blocks(self.store.codes_matrix(added), added)
                streamed += len(added)
            self.stats.per_node_blocks[member.node_id] = member.block_count
        self.version += 1

        def _drop_stale() -> None:
            self._replace_group(group)
            self.version += 1

        change = TopologyChange(
            kind="node_added",
            source=group_id,
            target=node.node_id,
            moved_blocks=streamed,
            _settle_fn=_drop_stale,
        )
        if settle:
            change.settle()
        return change

    def add_node(self, group_id: str) -> StorageNode:
        """Grow *group_id* by one node and settle immediately (the offline
        convenience wrapper around :meth:`expand_group`)."""
        change = self.expand_group(group_id)
        return self.topology.group(group_id).node(change.target)

    def remove_node(self, node_id: str) -> StorageNode:
        """Safely drain and remove one node (elastic scale-in).

        The replication factor is never violated: the group's full block
        set (including what only the leaving node holds) is captured first,
        membership shrinks, and every block is re-placed over the survivors
        before the leaving node's storage is released.  Removal is refused
        when it would leave the group below the replication factor.
        """
        node = self.node(node_id)  # KeyError for unknown nodes
        group = self.topology.group(node.group_id)
        if len(group.nodes) - 1 < self.config.replication:
            raise ValueError(
                f"removing {node_id!r} would leave group {group.group_id!r} "
                f"with {len(group.nodes) - 1} node(s), below the replication "
                f"factor {self.config.replication}"
            )
        node.flush_durable()  # compact the WAL before the manifest is read
        blocks = sorted(
            {bid for member in group.nodes for bid in member.known_block_ids}
        )
        group.remove_node(node_id)
        self._replace_group(group, blocks)
        node.reset_storage()
        self.stats.per_node_blocks.pop(node_id, None)
        # Satellite of the scale-in path: the drained node's labelled metric
        # series would otherwise sit in the exposition forever.
        default_registry().purge_labels(node=node_id)
        self.version += 1
        return node

    def split_group(self, group_id: str, settle: bool = True) -> TopologyChange:
        """Split an overloaded group: half its tier-1 region (and blocks)
        moves to a brand-new group of ``config.group_size`` fresh nodes.

        A group owning several prefixes is cut along the frontier into two
        contiguous runs of ~equal block mass (the same rule the initial
        assignment uses).  A single-prefix group is first *refined* one
        level deeper in the vp-prefix tree
        (:meth:`~repro.vptree.prefix.VPPrefixTree.refine`), partitioning its
        region along the tree's own ball boundary.

        The routing table flips atomically and the moved blocks are stored
        on the new group before the old copies are dropped, so queries
        routed at any moment find every block: pre-split routes still hit
        the retained copies, post-split routes hit the new group.  With
        ``settle=False`` the retained copies survive until
        :meth:`TopologyChange.settle` (the online, in-simulation mode).
        """
        group = self.topology.group(group_id)
        owned = self.topology.prefixes_of(group_id)
        if not owned:
            raise ValueError(f"group {group_id!r} owns no prefixes to split")
        refined: tuple[int, int] | None = None
        if len(owned) < 2:
            refined = self.prefix_tree.refine(owned[0])
            self.topology.retire_prefix(owned[0], refined, group_id)
            owned = self.topology.prefixes_of(group_id)

        group_blocks = sorted(
            {bid for member in group.nodes for bid in member.known_block_ids}
        )
        per_prefix: dict[int, list[int]] = {p: [] for p in owned}
        for block_id in group_blocks:
            prefix = self.prefix_tree.hash_one(
                self.store.codes_of(block_id)
            ).prefix
            per_prefix.setdefault(prefix, []).append(block_id)

        # Contiguous cut of the frontier run closest to half the mass.
        total = len(group_blocks)
        best_cut, best_gap = 1, None
        running = 0
        for cut in range(1, len(owned)):
            running += len(per_prefix[owned[cut - 1]])
            gap = abs(2 * running - total)
            if best_gap is None or gap < best_gap:
                best_gap, best_cut = gap, cut
        moved_prefixes = owned[best_cut:]

        new_gid = self.topology.next_group_id()
        new_group = StorageGroup(
            group_id=new_gid,
            nodes=[
                self._new_node(new_gid, i)
                for i in range(self.config.group_size)
            ],
            use_ring=self.config.ring_placement,
        )
        self.topology.add_group(new_group)
        self.topology.reassign_prefixes(moved_prefixes, new_gid)
        moved = [bid for p in moved_prefixes for bid in per_prefix[p]]
        self._place_on_group(new_group, moved)
        self.version += 1

        moved_set = set(moved)

        def _drop_retained() -> None:
            remaining = sorted(
                {bid for member in group.nodes for bid in member.known_block_ids}
                - moved_set
            )
            self._replace_group(group, remaining)
            self.version += 1

        change = TopologyChange(
            kind="group_split",
            source=group_id,
            target=new_gid,
            moved_blocks=len(moved),
            refined=refined,
            _settle_fn=_drop_retained,
        )
        if settle:
            change.settle()
        return change

    def merge_groups(
        self, source_id: str, target_id: str, settle: bool = True
    ) -> TopologyChange:
        """Merge an underloaded group into another and retire it.

        The source's prefixes re-route to the target and its blocks are
        placed under the target's hash before the source leaves the
        topology; until :meth:`TopologyChange.settle`, the source nodes keep
        serving their retained copies to queries routed pre-merge.  After
        settle, the source nodes are drained and their labelled metric
        series purged.
        """
        if source_id == target_id:
            raise ValueError(f"cannot merge group {source_id!r} into itself")
        source = self.topology.group(source_id)
        target = self.topology.group(target_id)
        for member in source.nodes:
            member.flush_durable()  # compact WALs before the drain reads them
        moved = sorted(
            {bid for member in source.nodes for bid in member.known_block_ids}
        )
        self.topology.reassign_prefixes(
            self.topology.prefixes_of(source_id), target_id
        )
        self._place_on_group(target, moved)
        self.topology.remove_group(source_id)
        self.version += 1

        def _drain_source() -> None:
            registry = default_registry()
            for member in source.nodes:
                member.reset_storage()
                self.stats.per_node_blocks.pop(member.node_id, None)
                registry.purge_labels(node=member.node_id)
            registry.purge_labels(group=source_id)
            self.version += 1

        change = TopologyChange(
            kind="group_merged",
            source=source_id,
            target=target_id,
            moved_blocks=len(moved),
            _settle_fn=_drain_source,
        )
        if settle:
            change.settle()
        return change

    def insert_sequences(self, new_sequences: SequenceSet) -> None:
        """Incrementally index additional reference sequences.

        Supports the growth scenario of research challenge 1: new data is
        blocked, hashed with the *existing* prefix tree (the cluster-wide
        hash function is immutable) and batch-inserted into the local trees.
        """
        if new_sequences.alphabet.name != self.alphabet.name:
            raise ValueError(
                f"alphabet mismatch: index is {self.alphabet.name}, "
                f"got {new_sequences.alphabet.name}"
            )
        start_block = len(self.store)
        for record in new_sequences:
            self.database.add(record)
            self.store._ingest(record)

        per_node_ids: dict[str, list[int]] = {}
        for block in self.store.blocks[start_block:]:
            codes = self.store.codes_of(block.block_id)
            prefix = self.prefix_tree.hash_one(codes).prefix
            group = self.topology.group_for_prefix(prefix)
            replicas = group.place_replicas(
                self.store.block_key(block.block_id), self.config.replication
            )
            for node in replicas:
                per_node_ids.setdefault(node.node_id, []).append(block.block_id)
            self.node_of_block[block.block_id] = replicas[0].node_id

        nodes_by_id = {node.node_id: node for node in self.topology.nodes}
        for node_id, block_ids in per_node_ids.items():
            node = nodes_by_id[node_id]
            node.store_blocks(self.store.codes_matrix(block_ids), block_ids)
            self.stats.per_node_blocks[node_id] = (
                self.stats.per_node_blocks.get(node_id, 0) + len(block_ids)
            )
        self.stats.block_count = len(self.store)
        self.version += 1
