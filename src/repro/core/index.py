"""Index construction: the three-step pipeline of section V-A.

1. **Inverted-index block creation** — :class:`~repro.core.blocks.BlockStore`
   slides a stride-1 window over every reference sequence.
2. **Vp-prefix tree sequence dispersion** — a shared
   :class:`~repro.vptree.prefix.VPPrefixTree` (built over a sample of the
   blocks) hashes each block to a storage group; flat SHA-1 picks the node
   within the group.
3. **Local vp-tree indexing** — each node batch-inserts its blocks into its
   dynamic vp-tree.

The index also records a simulated *indexing makespan*: per-node insertion
work proceeds in parallel across the cluster (the paper's batch submission),
so the makespan is the slowest node's service time plus dispersal costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.node import StorageNode
from repro.cluster.topology import ClusterSpec, ClusterTopology
from repro.core.blocks import BlockStore
from repro.core.params import MendelConfig
from repro.seq.distance import default_distance
from repro.seq.records import SequenceSet
from repro.util.rng import as_generator
from repro.vptree.prefix import VPPrefixTree


@dataclass
class IndexStats:
    """Bookkeeping from index construction."""

    block_count: int = 0
    hash_evals: int = 0
    insert_evals: int = 0
    simulated_makespan: float = 0.0
    per_node_blocks: dict[str, int] = field(default_factory=dict)


class MendelIndex:
    """A fully built Mendel deployment: block store + cluster + prefix LSH.

    Parameters
    ----------
    database:
        The reference :class:`~repro.seq.records.SequenceSet`.
    config:
        Deployment shape (:class:`~repro.core.params.MendelConfig`).
    """

    #: Mutation counter: bumped by :meth:`insert_sequences` and
    #: :meth:`add_node`, so cache layers (:mod:`repro.serve`) can detect that
    #: previously computed results may be stale.  A class-level default keeps
    #: instances reconstructed via ``__new__`` (the persistence path) valid.
    version: int = 0

    def __init__(self, database: SequenceSet, config: MendelConfig) -> None:
        if len(database) == 0:
            raise ValueError("cannot index an empty database")
        self.database = database
        self.config = config
        self.alphabet = database.alphabet
        self.stats = IndexStats()
        gen = as_generator(config.seed)

        # Step 1: inverted-index block creation.
        self.store = BlockStore(database, config.segment_length)
        if len(self.store) < 2:
            raise ValueError(
                "database produced fewer than 2 index blocks; sequences must "
                f"be at least segment_length={config.segment_length} long"
            )
        self.stats.block_count = len(self.store)

        # Shared tier-1 LSH built over a block sample.
        sample_size = min(config.sample_size, len(self.store))
        sample_ids = gen.choice(len(self.store), size=sample_size, replace=False)
        sample = self.store.codes_matrix(sample_ids)
        self._metric_factory = lambda: default_distance(self.alphabet)
        self.prefix_tree = VPPrefixTree(
            sample,
            self._metric_factory(),
            depth_threshold=config.prefix_depth,
            bucket_capacity=config.prefix_bucket_capacity,
            rng=int(gen.integers(0, 2**31 - 1)),
        )

        # Cluster shell.
        spec = ClusterSpec(
            group_count=config.group_count,
            group_size=config.group_size,
            heterogeneous=config.heterogeneous,
            bucket_capacity=config.bucket_capacity,
        )
        self.topology = ClusterTopology(
            spec=spec,
            prefix_tree=self.prefix_tree,
            sample=sample,
            metric_factory=self._metric_factory,
            segment_length=config.segment_length,
            rng=int(gen.integers(0, 2**31 - 1)),
        )

        # Steps 2+3: dispersion and local indexing (batched per node).
        self.node_of_block: dict[int, str] = {}
        self._disperse()

    # -- construction internals ------------------------------------------------

    def _disperse(self) -> None:
        """Hash every block to its node and batch-insert per node."""
        tree_adapter = self.prefix_tree._tree.adapter
        evals_before = tree_adapter.pair_evaluations

        per_node_ids: dict[str, list[int]] = {
            node.node_id: [] for node in self.topology.nodes
        }
        nodes_by_id: dict[str, StorageNode] = {
            node.node_id: node for node in self.topology.nodes
        }
        replication = self.config.replication
        for block in self.store.blocks:
            codes = self.store.codes_of(block.block_id)
            prefix = self.prefix_tree.hash_one(codes).prefix
            group = self.topology.group_for_prefix(prefix)
            replicas = group.place_replicas(
                self.store.block_key(block.block_id), replication
            )
            for node in replicas:
                per_node_ids[node.node_id].append(block.block_id)
            self.node_of_block[block.block_id] = replicas[0].node_id

        self.stats.hash_evals = tree_adapter.pair_evaluations - evals_before

        makespan = 0.0
        for node_id, block_ids in per_node_ids.items():
            node = nodes_by_id[node_id]
            if block_ids:
                before = node.tree.adapter.pair_evaluations
                codes = self.store.codes_matrix(block_ids)
                node.store_blocks(codes, block_ids)
                evals = node.tree.adapter.pair_evaluations - before
                self.stats.insert_evals += evals
                makespan = max(makespan, node.service_time(evals))
            self.stats.per_node_blocks[node_id] = len(block_ids)
        # Hashing is embarrassingly parallel: the prefix tree is replicated
        # cluster-wide and every node ingests (and hashes) its share of the
        # input stream, pipelining with insertion — so the makespan is the
        # slower of per-node insertion and the per-node hashing share.
        entry = self.topology.nodes[0]
        node_count = max(1, len(self.topology.nodes))
        self.stats.simulated_makespan = max(
            makespan, entry.service_time(self.stats.hash_evals // node_count)
        )

    # -- convenience ----------------------------------------------------------------

    @property
    def segment_length(self) -> int:
        return self.config.segment_length

    def node(self, node_id: str) -> StorageNode:
        for node in self.topology.nodes:
            if node.node_id == node_id:
                return node
        raise KeyError(f"no node {node_id!r}")

    def load_fractions(self) -> dict[str, float]:
        """Per-node fraction of stored blocks (the Fig. 5 measure)."""
        return self.topology.load_fractions()

    # -- failure handling -------------------------------------------------------

    def fail_node(self, node_id: str, rereplicate: bool = False) -> StorageNode:
        """Crash-stop one node; with ``rereplicate=True`` immediately stream
        its blocks from surviving replicas so the replication factor is
        restored (the offline analogue of the chaos controller's detected
        repair)."""
        node = self.node(node_id)
        node.fail()
        if rereplicate:
            self.rereplicate(node.group_id)
        self.version += 1
        return node

    def recover_node(self, node_id: str) -> StorageNode:
        """Rejoin a crashed node and reconcile its group's placement.

        The bare :meth:`~repro.cluster.node.StorageNode.recover` leaves the
        cluster over-replicated (repair copies plus the rejoined node's
        original data); this entry point immediately syncs the group back to
        canonical placement so every block ends up on exactly
        ``config.replication`` holders.
        """
        node = self.node(node_id)
        node.recover()
        self.rereplicate(node.group_id)
        self.version += 1
        return node

    def rereplicate(self, group_id: str | None = None):
        """Reconcile placement (one group, or all) against ground-truth
        liveness; returns the :class:`~repro.faults.repair.RepairReport`."""
        from repro.faults.repair import ReReplicator

        repairer = ReReplicator(self)
        if group_id is None:
            return repairer.sync_all()
        return repairer.sync_group(self.topology.group(group_id))

    def add_node(self, group_id: str) -> StorageNode:
        """Elastically grow one storage group by a node and redistribute.

        The DHT story of section IV-A — "commodity hardware can be added
        incrementally if there is demand for additional storage or
        processing" — applied to one group: a new node joins, the group's
        flat hash is rebuilt, and the group's blocks are re-placed under the
        new membership.  Only this group's data moves; the tier-1
        prefix->group assignment is untouched, so the rest of the cluster is
        unaffected.
        """
        from repro.cluster.node import HP_DL160, SUNFIRE_X4100

        group = self.topology.group(group_id)  # KeyError for unknown groups
        new_number = len(group.nodes)
        profile = (
            (HP_DL160, SUNFIRE_X4100)[new_number % 2]
            if self.config.heterogeneous
            else HP_DL160
        )
        node = StorageNode(
            node_id=f"{group_id}.n{new_number}",
            group_id=group_id,
            metric_factory=self._metric_factory,
            segment_length=self.config.segment_length,
            profile=profile,
            bucket_capacity=self.config.bucket_capacity,
            rng_seed=new_number + 1,
        )
        group.add_node(node)

        # Re-place every distinct block of the group under the new hash.
        group_blocks = sorted(
            {block_id for member in group.nodes for block_id in member.block_ids}
        )
        for member in group.nodes:
            member.reset_storage()
        per_node: dict[str, list[int]] = {n.node_id: [] for n in group.nodes}
        for block_id in group_blocks:
            replicas = group.place_replicas(
                self.store.block_key(block_id), self.config.replication
            )
            for replica in replicas:
                per_node[replica.node_id].append(block_id)
            self.node_of_block[block_id] = replicas[0].node_id
        for member in group.nodes:
            block_ids = per_node[member.node_id]
            if block_ids:
                member.store_blocks(self.store.codes_matrix(block_ids), block_ids)
            self.stats.per_node_blocks[member.node_id] = len(block_ids)
        self.version += 1
        return node

    def insert_sequences(self, new_sequences: SequenceSet) -> None:
        """Incrementally index additional reference sequences.

        Supports the growth scenario of research challenge 1: new data is
        blocked, hashed with the *existing* prefix tree (the cluster-wide
        hash function is immutable) and batch-inserted into the local trees.
        """
        if new_sequences.alphabet.name != self.alphabet.name:
            raise ValueError(
                f"alphabet mismatch: index is {self.alphabet.name}, "
                f"got {new_sequences.alphabet.name}"
            )
        start_block = len(self.store)
        for record in new_sequences:
            self.database.add(record)
            self.store._ingest(record)

        per_node_ids: dict[str, list[int]] = {}
        for block in self.store.blocks[start_block:]:
            codes = self.store.codes_of(block.block_id)
            prefix = self.prefix_tree.hash_one(codes).prefix
            group = self.topology.group_for_prefix(prefix)
            replicas = group.place_replicas(
                self.store.block_key(block.block_id), self.config.replication
            )
            for node in replicas:
                per_node_ids.setdefault(node.node_id, []).append(block.block_id)
            self.node_of_block[block.block_id] = replicas[0].node_id

        nodes_by_id = {node.node_id: node for node in self.topology.nodes}
        for node_id, block_ids in per_node_ids.items():
            node = nodes_by_id[node_id]
            node.store_blocks(self.store.codes_matrix(block_ids), block_ids)
            self.stats.per_node_blocks[node_id] = (
                self.stats.per_node_blocks.get(node_id, 0) + len(block_ids)
            )
        self.stats.block_count = len(self.store)
        self.version += 1
