"""mpiBLAST-style distributed BLAST (paper section II-B/II-C).

The related work Mendel positions against: mpiBLAST "parallelize[s] the
BLAST algorithm across multiple processes.  The BLAST database is
distributed onto each of the processing nodes.  BLAST searches are then run
on each segment in parallel and subsequently aggregating results", with
"superlinear speedups in some cases" — the superlinearity coming from
database segments fitting in worker memory where the monolithic database
pages.

:class:`DistributedBlast` reproduces that architecture over the same
simulated hardware classes as the Mendel cluster: the database is
partitioned into size-balanced segments, each worker runs the full
:class:`~repro.blast.engine.BlastEngine` pipeline on its segment, results
merge at a coordinator with E-values corrected to the full database size
(the standard effective-search-space adjustment), and the modelled
turnaround is the slowest worker plus scatter/gather costs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.align.result import Alignment
from repro.blast.engine import BlastConfig, BlastEngine, BlastReport, BlastStats
from repro.cluster.node import HP_DL160, NodeProfile, SUNFIRE_X4100
from repro.seq.records import SequenceRecord, SequenceSet
from repro.util.validation import check_positive

_LAN_LATENCY = 200e-6
_BANDWIDTH = 1e8
_RESULT_BYTES = 120


def partition_database(database: SequenceSet, workers: int) -> list[SequenceSet]:
    """Size-balanced partition: longest-processing-time greedy assignment
    of sequences to *workers* segments (mpiBLAST's database segmentation)."""
    check_positive("workers", workers)
    if workers > len(database):
        workers = max(1, len(database))
    segments: list[list[SequenceRecord]] = [[] for _ in range(workers)]
    loads = [0] * workers
    for record in sorted(database, key=len, reverse=True):
        target = loads.index(min(loads))
        segments[target].append(record)
        loads[target] += len(record)
    return [
        SequenceSet(alphabet=database.alphabet, records=segment)
        for segment in segments
    ]


@dataclass
class DistributedBlastReport(BlastReport):
    """Per-query result plus worker-level accounting."""

    worker_turnarounds: tuple[float, ...] = ()

    @property
    def makespan_worker(self) -> int:
        """Index of the straggler worker."""
        if not self.worker_turnarounds:
            raise ValueError("no workers recorded")
        return max(
            range(len(self.worker_turnarounds)),
            key=lambda i: self.worker_turnarounds[i],
        )


class DistributedBlast:
    """A fixed pool of BLAST workers over a segmented database."""

    def __init__(
        self,
        database: SequenceSet,
        workers: int = 4,
        config: BlastConfig | None = None,
        heterogeneous: bool = True,
    ) -> None:
        if len(database) == 0:
            raise ValueError("cannot search an empty database")
        check_positive("workers", workers)
        self.database = database
        self.config = config or BlastConfig()
        self.segments = partition_database(database, workers)
        self.engines = [
            BlastEngine(segment, self.config) for segment in self.segments
        ]
        profiles = (HP_DL160, SUNFIRE_X4100)
        self.profiles: list[NodeProfile] = [
            profiles[i % 2] if heterogeneous else HP_DL160
            for i in range(len(self.engines))
        ]
        self.db_residues = database.total_residues

    @property
    def worker_count(self) -> int:
        return len(self.engines)

    def search(self, query: SequenceRecord) -> DistributedBlastReport:
        """Scatter the query, search every segment, gather and merge.

        E-values are recomputed against the *full* database size so the
        merged ranking is statistically equivalent to a monolithic search
        (mpiBLAST's effective-search-space correction).
        """
        worker_reports: list[BlastReport] = []
        worker_times: list[float] = []
        for engine, profile in zip(self.engines, self.profiles):
            report = engine.search(query, profile=profile)
            worker_reports.append(report)
            scatter = _LAN_LATENCY + query.codes.nbytes / _BANDWIDTH
            gather = _LAN_LATENCY + (
                len(report.alignments) * _RESULT_BYTES / _BANDWIDTH
            )
            worker_times.append(scatter + report.turnaround + gather)

        merged: list[Alignment] = []
        stats = BlastStats()
        for engine, report in zip(self.engines, worker_reports):
            stats.query_words = max(stats.query_words, report.stats.query_words)
            stats.neighborhood_words = max(
                stats.neighborhood_words, report.stats.neighborhood_words
            )
            stats.seed_hits += report.stats.seed_hits
            stats.extensions += report.stats.extensions
            stats.gapped_extensions += report.stats.gapped_extensions
            stats.extension_columns += report.stats.extension_columns
            stats.work_units += report.stats.work_units
            scale = self.db_residues / max(1, engine.db_residues)
            for alignment in report.alignments:
                corrected = min(1e300, alignment.evalue * scale)
                if corrected > self.config.evalue_threshold:
                    continue
                merged.append(
                    Alignment(
                        query_id=alignment.query_id,
                        subject_id=alignment.subject_id,
                        query_start=alignment.query_start,
                        query_end=alignment.query_end,
                        subject_start=alignment.subject_start,
                        subject_end=alignment.subject_end,
                        score=alignment.score,
                        bit_score=alignment.bit_score,
                        evalue=corrected,
                        identity=alignment.identity,
                    )
                )
        merged.sort(key=lambda a: (a.evalue, -a.score))

        # Coordinator merge cost: a pass over the gathered hits.
        merge_seconds = len(merged) * 1e-6
        turnaround = (max(worker_times) if worker_times else 0.0) + merge_seconds
        return DistributedBlastReport(
            query_id=query.seq_id,
            alignments=merged,
            stats=stats,
            turnaround=turnaround,
            worker_turnarounds=tuple(worker_times),
        )
