"""From-scratch BLAST baseline (the paper's comparison system)."""

from repro.blast.distributed import (
    DistributedBlast,
    DistributedBlastReport,
    partition_database,
)
from repro.blast.engine import BlastConfig, BlastEngine, BlastReport, BlastStats
from repro.blast.mapreduce import (
    Biodoop,
    CloudBlast,
    MapReduceCosts,
    MapReduceJobReport,
)
from repro.blast.lookup import WordLookup
from repro.blast.words import (
    NeighborhoodResult,
    neighborhood_words,
    query_neighborhoods,
    word_code,
    words_of,
)

__all__ = [
    "DistributedBlast",
    "DistributedBlastReport",
    "partition_database",
    "Biodoop",
    "CloudBlast",
    "MapReduceCosts",
    "MapReduceJobReport",
    "BlastConfig",
    "BlastEngine",
    "BlastReport",
    "BlastStats",
    "WordLookup",
    "NeighborhoodResult",
    "neighborhood_words",
    "query_neighborhoods",
    "word_code",
    "words_of",
]
