"""Word tokenisation and neighbourhood generation (BLAST seeding).

BLAST tokenises the query into overlapping k-letter words and, for protein
searches, expands each word into its *neighbourhood*: every k-letter word
whose substitution-matrix score against the query word is at least the
threshold ``T``.  Database positions matching any neighbourhood word become
seed hits.

Neighbourhood generation is vectorised: the scores of all ``20^k`` candidate
words against a query word decompose per position, so they are computed with
a k-way outer sum of matrix rows (no enumeration loop).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.seq.alphabet import Alphabet


def word_code(codes: np.ndarray, base: int) -> int:
    """Pack a k-letter code array into one integer (base-``base`` digits)."""
    codes = np.asarray(codes)
    value = 0
    for code in codes:
        value = value * base + int(code)
    return value


def words_of(codes: np.ndarray, k: int, base: int) -> np.ndarray:
    """All overlapping k-word integer codes of *codes* (vectorised rolling
    encode); empty when the sequence is shorter than ``k``."""
    codes = np.asarray(codes, dtype=np.int64)
    n = codes.shape[0]
    if n < k:
        return np.empty(0, dtype=np.int64)
    weights = base ** np.arange(k - 1, -1, -1, dtype=np.int64)
    out = np.zeros(n - k + 1, dtype=np.int64)
    for offset in range(k):
        out += codes[offset : offset + n - k + 1] * weights[offset]
    return out


@dataclass(frozen=True)
class NeighborhoodResult:
    """Neighbourhood words for one query word position."""

    position: int
    word_codes: np.ndarray  # integer codes of all neighbourhood words


def neighborhood_words(
    query_word: np.ndarray,
    matrix: np.ndarray,
    threshold: float,
    canonical_size: int,
) -> np.ndarray:
    """Integer codes of every canonical k-word scoring >= *threshold*
    against *query_word* under *matrix*.

    Complexity ``O(canonical_size^k)`` memory/time via an outer sum — cheap
    for the protein default ``k=3`` (8000 candidates).
    """
    query_word = np.asarray(query_word)
    k = query_word.shape[0]
    if k < 1:
        raise ValueError("word length must be >= 1")
    if canonical_size**k > 20_000_000:
        raise ValueError(
            f"neighbourhood enumeration infeasible for base {canonical_size} "
            f"and k={k}"
        )
    # scores[c0, c1, ..., c_{k-1}] = sum_p matrix[query_word[p], c_p]
    total = np.zeros((canonical_size,) * k)
    for position in range(k):
        row = matrix[query_word[position], :canonical_size].astype(np.float64)
        shape = [1] * k
        shape[position] = canonical_size
        total = total + row.reshape(shape)
    hits = np.flatnonzero(total.ravel() >= threshold)
    return hits.astype(np.int64)  # ravel order == base-`canonical_size` digits


def query_neighborhoods(
    query: np.ndarray,
    k: int,
    matrix: np.ndarray,
    threshold: float,
    alphabet: Alphabet,
    exact_only: bool = False,
) -> list[NeighborhoodResult]:
    """Neighbourhoods for every query word position.

    ``exact_only=True`` (the DNA mode) keeps just the word itself.
    """
    query = np.asarray(query, dtype=np.uint8)
    base = alphabet.canonical_size
    results: list[NeighborhoodResult] = []
    cache: dict[int, np.ndarray] = {}
    for position in range(query.shape[0] - k + 1):
        word = query[position : position + k]
        if (word >= base).any():
            continue  # words containing ambiguity codes do not seed
        code = word_code(word, base)
        if exact_only:
            results.append(
                NeighborhoodResult(
                    position=position, word_codes=np.array([code], dtype=np.int64)
                )
            )
            continue
        if code not in cache:
            cache[code] = neighborhood_words(word, matrix, threshold, base)
        results.append(NeighborhoodResult(position=position, word_codes=cache[code]))
    return results
