"""Database word lookup table (the BLAST "inverted index over exact words").

Maps every k-word integer code occurring in the database to the array of
``(sequence index, position)`` pairs where it occurs.  This is the structure
whose *exact-match* restriction motivates Mendel's NNS-based design: a
single substitution in a seed region changes the word code and the hit is
lost (the sensitivity benchmark shows exactly this effect).
"""

from __future__ import annotations

import numpy as np

from repro.blast.words import words_of
from repro.seq.alphabet import Alphabet
from repro.seq.records import SequenceSet


class WordLookup:
    """Exact k-word index over a :class:`~repro.seq.records.SequenceSet`."""

    def __init__(self, database: SequenceSet, k: int) -> None:
        if k < 1:
            raise ValueError(f"word length must be >= 1, got {k}")
        self.database = database
        self.k = int(k)
        self.alphabet: Alphabet = database.alphabet
        base = self.alphabet.canonical_size

        word_parts: list[np.ndarray] = []
        seq_parts: list[np.ndarray] = []
        pos_parts: list[np.ndarray] = []
        total_words = 0
        for seq_index, record in enumerate(database):
            codes = record.codes
            if codes.shape[0] < k:
                continue
            words = words_of(codes, k, base)
            # Words containing ambiguity codes must not be indexed.
            keep = np.ones(words.shape[0], dtype=bool)
            if (codes >= base).any():
                mask = codes >= base
                for offset in range(k):
                    keep &= ~mask[offset : offset + words.shape[0]]
            valid = np.flatnonzero(keep)
            total_words += valid.shape[0]
            if valid.shape[0]:
                word_parts.append(words[valid])
                seq_parts.append(np.full(valid.shape[0], seq_index, dtype=np.int64))
                pos_parts.append(valid.astype(np.int64))

        # Group occurrences by word code with one sort (no per-word loop).
        self._table: dict[int, np.ndarray] = {}
        if word_parts:
            all_words = np.concatenate(word_parts)
            pairs = np.stack(
                [np.concatenate(seq_parts), np.concatenate(pos_parts)], axis=1
            )
            order = np.argsort(all_words, kind="stable")
            all_words = all_words[order]
            pairs = pairs[order]
            boundaries = np.flatnonzero(
                np.concatenate(([True], all_words[1:] != all_words[:-1]))
            )
            ends = np.concatenate((boundaries[1:], [all_words.shape[0]]))
            for start, end in zip(boundaries, ends):
                self._table[int(all_words[start])] = pairs[start:end]
        self.total_words = total_words

    def __len__(self) -> int:
        return len(self._table)

    def lookup(self, word_codes: np.ndarray) -> np.ndarray:
        """All ``(seq_index, position)`` pairs for any of *word_codes*.

        Returns an ``(n, 2)`` int64 array (possibly empty).
        """
        chunks = [
            self._table[int(code)]
            for code in np.asarray(word_codes).ravel()
            if int(code) in self._table
        ]
        if not chunks:
            return np.empty((0, 2), dtype=np.int64)
        return np.concatenate(chunks, axis=0)

    def occurrence_count(self, word_codes: np.ndarray) -> int:
        """Total database occurrences of *word_codes* (work accounting)."""
        return sum(
            self._table[int(code)].shape[0]
            for code in np.asarray(word_codes).ravel()
            if int(code) in self._table
        )
