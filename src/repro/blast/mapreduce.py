"""CloudBLAST / Biodoop: MapReduce-parallelised BLAST (paper section II-C).

The two cloud baselines the paper discusses:

* **CloudBLAST** (Matsunaga et al. 2008) parallelises the *computation*:
  "segmenting the query sequences and running multiple instances of BLAST
  on each segment" — every mapper holds the whole database and processes a
  slice of the query set.
* **Biodoop** (Leo et al. 2009) "takes an opposing approach: distribute the
  data among computing resources, rather than the computation" — the
  database is segmented and every query visits every segment.

"However, both methods see sublinear speedup as the number of compute
resources grow."  The sublinearity comes from the MapReduce machinery
itself: per-job startup, per-task scheduling/JVM spawn, and the shuffle all
cost fixed time that does not shrink with more workers.
:class:`MapReduceCosts` models those constants; the alignment work itself
runs through the real :class:`~repro.blast.engine.BlastEngine`, so results
are exact and only time is modelled.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.align.result import Alignment
from repro.blast.distributed import partition_database
from repro.blast.engine import BlastConfig, BlastEngine, BlastReport, BlastStats
from repro.cluster.node import HP_DL160, NodeProfile, SUNFIRE_X4100
from repro.seq.records import SequenceRecord, SequenceSet
from repro.util.validation import check_non_negative, check_positive

_RESULT_BYTES = 120


@dataclass(frozen=True)
class MapReduceCosts:
    """Fixed overheads of one MapReduce job (Hadoop-era constants).

    ``job_startup`` covers submission + scheduling of the job itself;
    ``task_overhead`` is paid per map task (container/JVM spawn);
    ``shuffle_per_byte`` prices moving intermediate results to the reducer.
    """

    job_startup: float = 2.0
    task_overhead: float = 0.25
    shuffle_per_byte: float = 2e-8
    reduce_per_result: float = 2e-6

    def __post_init__(self) -> None:
        check_non_negative("job_startup", self.job_startup)
        check_non_negative("task_overhead", self.task_overhead)
        check_non_negative("shuffle_per_byte", self.shuffle_per_byte)
        check_non_negative("reduce_per_result", self.reduce_per_result)


@dataclass
class MapReduceJobReport:
    """Outcome of one MapReduce search job over a query set."""

    reports: list[BlastReport]
    turnaround: float
    map_tasks: int
    shuffle_bytes: int

    def report_for(self, query_id: str) -> BlastReport:
        for report in self.reports:
            if report.query_id == query_id:
                return report
        raise KeyError(f"no report for query {query_id!r}")


def _profiles(count: int, heterogeneous: bool) -> list[NodeProfile]:
    pair = (HP_DL160, SUNFIRE_X4100)
    return [pair[i % 2] if heterogeneous else HP_DL160 for i in range(count)]


class CloudBlast:
    """Query-segmentation MapReduce BLAST (the CloudBLAST architecture).

    Every mapper holds the complete database; the *query set* is split
    round-robin into ``mappers`` map tasks.
    """

    def __init__(
        self,
        database: SequenceSet,
        mappers: int = 4,
        config: BlastConfig | None = None,
        costs: MapReduceCosts = MapReduceCosts(),
        heterogeneous: bool = True,
    ) -> None:
        check_positive("mappers", mappers)
        self.engine = BlastEngine(database, config)
        self.mappers = int(mappers)
        self.costs = costs
        self.profiles = _profiles(self.mappers, heterogeneous)

    def search_set(self, queries: list[SequenceRecord]) -> MapReduceJobReport:
        """Run one job over *queries*; results are exact BLAST results."""
        if not queries:
            raise ValueError("query set must be non-empty")
        slices: list[list[SequenceRecord]] = [[] for _ in range(self.mappers)]
        for index, query in enumerate(queries):
            slices[index % self.mappers].append(query)

        reports: list[BlastReport] = []
        mapper_times: list[float] = []
        shuffle_bytes = 0
        for mapper, batch in enumerate(slices):
            if not batch:
                continue
            elapsed = self.costs.task_overhead
            for query in batch:
                report = self.engine.search(query, profile=self.profiles[mapper])
                reports.append(report)
                elapsed += report.turnaround
                shuffle_bytes += len(report.alignments) * _RESULT_BYTES
            mapper_times.append(elapsed)

        total_results = sum(len(r.alignments) for r in reports)
        turnaround = (
            self.costs.job_startup
            + max(mapper_times)
            + shuffle_bytes * self.costs.shuffle_per_byte
            + total_results * self.costs.reduce_per_result
        )
        return MapReduceJobReport(
            reports=reports,
            turnaround=turnaround,
            map_tasks=sum(1 for s in slices if s),
            shuffle_bytes=shuffle_bytes,
        )


class Biodoop:
    """Data-distribution MapReduce BLAST (the Biodoop architecture).

    The *database* is segmented across ``mappers``; every query is searched
    against every segment and per-segment hits merge at the reducer with
    E-values corrected to the full database size.
    """

    def __init__(
        self,
        database: SequenceSet,
        mappers: int = 4,
        config: BlastConfig | None = None,
        costs: MapReduceCosts = MapReduceCosts(),
        heterogeneous: bool = True,
    ) -> None:
        check_positive("mappers", mappers)
        self.config = config or BlastConfig()
        self.segments = partition_database(database, mappers)
        self.engines = [BlastEngine(s, self.config) for s in self.segments]
        self.costs = costs
        self.profiles = _profiles(len(self.engines), heterogeneous)
        self.db_residues = database.total_residues

    def search_set(self, queries: list[SequenceRecord]) -> MapReduceJobReport:
        if not queries:
            raise ValueError("query set must be non-empty")
        mapper_times: list[float] = []
        shuffle_bytes = 0
        per_query: dict[str, list[Alignment]] = {q.seq_id: [] for q in queries}
        for mapper, engine in enumerate(self.engines):
            elapsed = self.costs.task_overhead
            scale = self.db_residues / max(1, engine.db_residues)
            for query in queries:
                report = engine.search(query, profile=self.profiles[mapper])
                elapsed += report.turnaround
                shuffle_bytes += len(report.alignments) * _RESULT_BYTES
                for alignment in report.alignments:
                    corrected = min(1e300, alignment.evalue * scale)
                    if corrected > self.config.evalue_threshold:
                        continue
                    per_query[query.seq_id].append(
                        Alignment(
                            query_id=alignment.query_id,
                            subject_id=alignment.subject_id,
                            query_start=alignment.query_start,
                            query_end=alignment.query_end,
                            subject_start=alignment.subject_start,
                            subject_end=alignment.subject_end,
                            score=alignment.score,
                            bit_score=alignment.bit_score,
                            evalue=corrected,
                            identity=alignment.identity,
                        )
                    )
            mapper_times.append(elapsed)

        reports = []
        total_results = 0
        for query in queries:
            alignments = sorted(
                per_query[query.seq_id], key=lambda a: (a.evalue, -a.score)
            )
            total_results += len(alignments)
            reports.append(
                BlastReport(
                    query_id=query.seq_id,
                    alignments=alignments,
                    stats=BlastStats(),  # per-segment stats not aggregated
                    turnaround=0.0,
                )
            )
        turnaround = (
            self.costs.job_startup
            + max(mapper_times)
            + shuffle_bytes * self.costs.shuffle_per_byte
            + total_results * self.costs.reduce_per_result
        )
        return MapReduceJobReport(
            reports=reports,
            turnaround=turnaround,
            map_tasks=len(self.engines),
            shuffle_bytes=shuffle_bytes,
        )
