"""The BLAST baseline: word-seeded seed-and-extend on a single machine.

Implements the published BLAST algorithm (Altschul et al. 1990; gapped pass
per Altschul et al. 1997) that the paper benchmarks Mendel against:

1. tokenise the query into k-letter words and generate the neighbourhood of
   each (words scoring >= ``word_threshold`` — "probable variants");
2. scan the database word table for **exact matches** to any neighbourhood
   word;
3. apply the two-hit rule (two non-overlapping hits on the same diagonal
   within ``two_hit_window``) to trigger ungapped X-drop extension;
4. keep High-scoring Segment Pairs above the gapped trigger and run a
   banded gapped extension;
5. assign Karlin–Altschul E-values, filter, deduplicate, rank.

Besides the real results, the engine counts its *work units* (word lookups,
seed hits, extension columns) so the evaluation can model single-machine
turnaround on the same hardware scale as the simulated cluster nodes —
giving the machine-independent cost curves of Fig. 6a/6b.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.align.gapped import banded_extend
from repro.align.result import Alignment
from repro.align.stats import KarlinAltschulParams, karlin_altschul
from repro.align.ungapped import UngappedExtension, batch_extent
from repro.blast.lookup import WordLookup
from repro.blast.words import query_neighborhoods
from repro.cluster.node import NodeProfile, HP_DL160
from repro.seq.alphabet import Alphabet
from repro.seq.matrices import dna_matrix, named_matrix
from repro.seq.records import SequenceRecord, SequenceSet


@dataclass
class BlastConfig:
    """Engine parameters (NCBI-style defaults per alphabet)."""

    word_length: int | None = None  # None -> 3 (protein) / 11 (DNA)
    word_threshold: float = 11.0
    two_hit: bool = True
    two_hit_window: int = 40
    x_drop_ungapped: float = 7.0
    x_drop_gapped: float = 25.0
    gap_open: float = 11.0
    gap_extend: float = 1.0
    gapped_trigger_bits: float = 22.0
    evalue_threshold: float = 10.0
    bandwidth: int = 8
    matrix_name: str = "BLOSUM62"
    #: single-machine memory capacity in residues; when the database exceeds
    #: it, the out-of-core fraction of the scan pays ``io_penalty`` per work
    #: unit.  Models the paper's observation that BLAST "comes to a halt"
    #: once the database stops being memory resident (section VI-C).
    #: ``None`` disables the wall (infinite memory).
    memory_capacity_residues: int | None = None
    io_penalty: float = 40.0

    def resolved_word_length(self, alphabet: Alphabet) -> int:
        if self.word_length is not None:
            return self.word_length
        return 3 if alphabet.name == "protein" else 11


@dataclass
class BlastStats:
    """Work accounting for one search."""

    query_words: int = 0
    neighborhood_words: int = 0
    seed_hits: int = 0
    extensions: int = 0
    gapped_extensions: int = 0
    extension_columns: int = 0
    work_units: float = 0.0

    def charge(self, units: float) -> None:
        self.work_units += units


@dataclass
class BlastReport:
    query_id: str
    alignments: list[Alignment]
    stats: BlastStats
    turnaround: float = 0.0  # modelled single-machine seconds

    def best(self) -> Alignment | None:
        return self.alignments[0] if self.alignments else None

    def subject_ids(self) -> list[str]:
        seen: set[str] = set()
        out: list[str] = []
        for alignment in self.alignments:
            if alignment.subject_id not in seen:
                seen.add(alignment.subject_id)
                out.append(alignment.subject_id)
        return out


class BlastEngine:
    """A database-bound BLAST searcher.

    Build once per database (the word table is the expensive part), then
    call :meth:`search` per query.
    """

    def __init__(self, database: SequenceSet, config: BlastConfig | None = None) -> None:
        if len(database) == 0:
            raise ValueError("cannot search an empty database")
        self.database = database
        self.config = config or BlastConfig()
        self.alphabet = database.alphabet
        self.k = self.config.resolved_word_length(self.alphabet)
        if self.alphabet.name == "dna" and self.config.matrix_name.lower() == "blosum62":
            self.matrix = dna_matrix().astype(np.float64)
        else:
            self.matrix = named_matrix(self.config.matrix_name).astype(np.float64)
        self.lookup = WordLookup(database, self.k)
        self._records = list(database)
        # Flat concatenation of all subject codes: lets the ungapped pass
        # extend every seed with batched (structure-of-arrays) vector ops.
        lengths = np.array([len(r) for r in self._records], dtype=np.int64)
        self._seq_offsets = np.concatenate(([0], np.cumsum(lengths)))
        self._concat = (
            np.concatenate([r.codes for r in self._records])
            if self._records
            else np.zeros(0, dtype=np.uint8)
        )
        self.ka: KarlinAltschulParams = karlin_altschul(
            self.matrix, database.residue_frequencies()
        )
        self.db_residues = database.total_residues

    # -- main entry ---------------------------------------------------------

    def search(self, query: SequenceRecord, profile: NodeProfile = HP_DL160) -> BlastReport:
        """Run the full pipeline for *query*.

        ``profile`` calibrates the modelled turnaround so BLAST and the
        simulated Mendel nodes are charged on the same hardware scale.
        """
        if query.alphabet.name != self.alphabet.name:
            raise ValueError(
                f"query alphabet {query.alphabet.name!r} does not match the "
                f"database alphabet {self.alphabet.name!r}"
            )
        config = self.config
        stats = BlastStats()

        neighborhoods = query_neighborhoods(
            query.codes,
            self.k,
            self.matrix,
            config.word_threshold,
            self.alphabet,
            exact_only=self.alphabet.name == "dna",
        )
        stats.query_words = len(neighborhoods)
        stats.neighborhood_words = sum(n.word_codes.shape[0] for n in neighborhoods)
        # Word generation cost: one matrix row pass per query word.
        stats.charge(stats.neighborhood_words * 0.1 + stats.query_words)

        # Seed collection: (seq_index, diagonal) -> hits.
        seeds = self._collect_seeds(neighborhoods, stats)

        hsps = self._ungapped_pass(query, seeds, stats)
        alignments = self._gapped_pass(query, hsps, stats)

        per_op = profile.seconds_per_eval / max(1, self.k)
        turnaround = stats.work_units * per_op / profile.speed_factor
        capacity = config.memory_capacity_residues
        if capacity is not None and self.db_residues > capacity:
            # The fraction of the scan that misses memory pays the I/O
            # penalty; the resident fraction runs at full speed.
            miss_fraction = 1.0 - capacity / self.db_residues
            turnaround *= 1.0 + config.io_penalty * miss_fraction
        return BlastReport(
            query_id=query.seq_id,
            alignments=alignments,
            stats=stats,
            turnaround=turnaround,
        )

    # -- stages -----------------------------------------------------------------

    def _collect_seeds(self, neighborhoods, stats: BlastStats):
        """Two-hit (or one-hit) seed selection, vectorised.

        All hits are gathered into flat arrays, lex-sorted by
        ``(sequence, diagonal, query position)``; a two-hit trigger is a
        consecutive same-diagonal pair within ``two_hit_window``.  At most
        one seed (the first trigger) is kept per (sequence, diagonal).
        Returns ``(seq_index, query_pos, subject_pos)`` triples.
        """
        config = self.config
        q_parts: list[np.ndarray] = []
        seq_parts: list[np.ndarray] = []
        pos_parts: list[np.ndarray] = []
        for neighborhood in neighborhoods:
            pairs = self.lookup.lookup(neighborhood.word_codes)
            stats.seed_hits += pairs.shape[0]
            stats.charge(neighborhood.word_codes.shape[0])  # table probes
            stats.charge(pairs.shape[0])  # hit processing
            if pairs.shape[0]:
                q_parts.append(
                    np.full(pairs.shape[0], neighborhood.position, dtype=np.int64)
                )
                seq_parts.append(pairs[:, 0])
                pos_parts.append(pairs[:, 1])
        if not q_parts:
            return []
        q = np.concatenate(q_parts)
        seq = np.concatenate(seq_parts)
        s_pos = np.concatenate(pos_parts)
        diag = s_pos - q

        order = np.lexsort((q, diag, seq))
        q, seq, s_pos, diag = q[order], seq[order], s_pos[order], diag[order]

        same_key = np.zeros(q.shape[0], dtype=bool)
        if q.shape[0] > 1:
            same_key[1:] = (seq[1:] == seq[:-1]) & (diag[1:] == diag[:-1])
        group_id = np.cumsum(~same_key) - 1

        if config.two_hit:
            trigger = np.zeros(q.shape[0], dtype=bool)
            if q.shape[0] > 1:
                dq = q[1:] - q[:-1]
                trigger[1:] = same_key[1:] & (dq > 0) & (dq <= config.two_hit_window)
        else:
            trigger = ~same_key  # first hit of every (seq, diagonal)

        trig_idx = np.flatnonzero(trigger)
        if trig_idx.size == 0:
            return []
        # Keep only the first trigger of each (seq, diagonal) group.
        groups = group_id[trig_idx]
        first_of_group = np.concatenate(([True], groups[1:] != groups[:-1]))
        trig_idx = trig_idx[first_of_group]
        return [
            (int(seq[i]), int(q[i]), int(s_pos[i])) for i in trig_idx
        ]

    def _ungapped_pass(self, query, seeds, stats: BlastStats):
        """Batched X-drop ungapped extension of every seed; keeps HSPs above
        the gapped trigger score.

        All seeds extend together through :func:`batch_extent` over the flat
        database concatenation — one set of vector ops per 64-residue chunk
        instead of one Python call per seed.
        """
        config = self.config
        trigger_raw = (
            config.gapped_trigger_bits * np.log(2.0) + np.log(self.ka.k)
        ) / self.ka.lam
        if not seeds:
            return []

        seq_idx = np.array([s[0] for s in seeds], dtype=np.int64)
        q_pos = np.array([s[1] for s in seeds], dtype=np.int64)
        s_local = np.array([s[2] for s in seeds], dtype=np.int64)
        s_global = self._seq_offsets[seq_idx] + s_local
        seq_len = self._seq_offsets[seq_idx + 1] - self._seq_offsets[seq_idx]
        k = self.k
        q_len = len(query)
        qc = query.codes

        # Seed scores (vectorised gather over the k seed columns).
        seed_scores = np.zeros(seq_idx.shape[0], dtype=np.float64)
        for col in range(k):
            seed_scores += self.matrix[qc[q_pos + col], self._concat[s_global + col]]

        right_limits = np.minimum(q_len - (q_pos + k), seq_len - (s_local + k))
        right_keep, right_gain = batch_extent(
            qc, self._concat, q_pos + k, s_global + k, right_limits,
            self.matrix, config.x_drop_ungapped, step=1,
        )
        left_limits = np.minimum(q_pos, s_local)
        left_keep, left_gain = batch_extent(
            qc, self._concat, q_pos - 1, s_global - 1, left_limits,
            self.matrix, config.x_drop_ungapped, step=-1,
        )

        scores = seed_scores + right_gain + left_gain
        spans = k + right_keep + left_keep
        stats.extensions += seq_idx.shape[0]
        stats.extension_columns += int(spans.sum())
        stats.charge(float(spans.sum()))

        hsps: list[tuple[int, UngappedExtension]] = []
        for i in np.flatnonzero(scores >= trigger_raw):
            hsps.append(
                (
                    int(seq_idx[i]),
                    UngappedExtension(
                        query_start=int(q_pos[i] - left_keep[i]),
                        query_end=int(q_pos[i] + k + right_keep[i]),
                        subject_start=int(s_local[i] - left_keep[i]),
                        subject_end=int(s_local[i] + k + right_keep[i]),
                        score=float(scores[i]),
                    ),
                )
            )
        return hsps

    def _gapped_pass(self, query, hsps, stats: BlastStats) -> list[Alignment]:
        config = self.config
        raw: list[Alignment] = []
        covered: dict[int, list[tuple[int, int]]] = {}
        for seq_index, hsp in sorted(
            hsps, key=lambda item: -item[1].score
        ):
            subject = self._records[seq_index]
            mid_q = (hsp.query_start + hsp.query_end) // 2
            mid_s = (hsp.subject_start + hsp.subject_end) // 2
            spans = covered.setdefault(seq_index, [])
            if any(lo <= mid_q < hi for lo, hi in spans):
                continue
            ext = banded_extend(
                query.codes,
                subject.codes,
                self.matrix,
                seed_query=mid_q,
                seed_subject=mid_s,
                bandwidth=config.bandwidth,
                gap_open=config.gap_open,
                gap_extend=config.gap_extend,
                x_drop=config.x_drop_gapped,
            )
            stats.gapped_extensions += 1
            span = ext.query_end - ext.query_start
            stats.charge(span * (2 * config.bandwidth + 1))
            evalue = self.ka.evalue(ext.score, len(query), self.db_residues)
            if evalue > config.evalue_threshold:
                continue
            spans.append((ext.query_start, ext.query_end))
            q = query.codes[ext.query_start : ext.query_end]
            s = subject.codes[ext.subject_start : ext.subject_end]
            span_len = min(q.shape[0], s.shape[0])
            identity = (
                float((q[:span_len] == s[:span_len]).sum()) / span_len
                if span_len
                else 0.0
            )
            raw.append(
                Alignment(
                    query_id=query.seq_id,
                    subject_id=subject.seq_id,
                    query_start=ext.query_start,
                    query_end=ext.query_end,
                    subject_start=ext.subject_start,
                    subject_end=ext.subject_end,
                    score=ext.score,
                    bit_score=self.ka.bit_score(ext.score),
                    evalue=evalue,
                    identity=identity,
                )
            )
        raw.sort(key=lambda a: (a.evalue, -a.score))
        return raw
