"""The on-disk columnar block file (``MTBF``: Mendel Tiered Block File).

One file per spilled node on its :class:`~repro.store.disk.NodeDisk`,
reusing the container conventions of the ``MENDELIX`` archive and the
durable snapshot (:mod:`repro.core.persist`, :mod:`repro.store.durable`):
a fixed magic + version header, a CRC32 over the segment table, and
per-row CRC32 digests so silent bit rot is caught by the same
verified-read discipline the WAL uses.

Layout::

    +--------------------------------------------------+
    | header: magic "MTBF", version, table crc/length, |  _HEAD
    |         row-meta length, digest length           |
    +--------------------------------------------------+
    | segment table (zlib-compressed JSON)             |
    |   node id, row width, alphabet size, row count   |
    |   per page: payload offset/length, codec method, |
    |     row count, centroid, radius, histogram,      |
    |     raw bytes, pinned flag                       |
    |   row-meta and digest section CRC32s             |
    +--------------------------------------------------+
    | row meta (zlib): u32 tree rows ++ u64 block ids, |
    |   both in page order                             |
    +--------------------------------------------------+
    | digests: raw u32 row CRC32s, in page order       |
    +--------------------------------------------------+
    | page payloads, concatenated                      |
    +--------------------------------------------------+

The table is columnar metadata over row-major page payloads: routing-time
state (centroids, radii, histograms) parses without touching a single
payload byte, so opening a file — or auditing a *dead* node's manifest —
never reads page data.  Per-row bookkeeping (tree row, block id, digest)
lives in packed binary sections rather than the JSON table: at the
segment widths this index runs (8–32 residues per row), JSON-encoded
per-row integers would cost more than the rows themselves and sink the
compression ratio the tier exists to deliver.  Payload offsets are
relative to the end of the digest section, and every page read is an
independent ``read_span`` (one simulated seek), never a whole-file load.

Writes go through :meth:`NodeDisk.write_atomic`: a crash mid-spill leaves
the previous file (or no file) intact, mirroring the snapshot contract.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.store.disk import NodeDisk
from repro.tier.codec import TierCodecError, decode_page

MAGIC = b"MTBF"
FORMAT_VERSION = 1

#: default durable file name on the node's disk
TIER_FILE = "tier"

# magic, version, table crc32, table length, row-meta (compressed) length,
# digest section length
_HEAD = struct.Struct("<4sHIIII")


class TierFileError(Exception):
    """The block file failed an integrity check (magic, version, CRC)."""


@dataclass
class PageRecord:
    """One page as written: compressed payload plus its summary metadata.

    ``digests`` are CRC32s of each row's raw codes — the same
    ``zlib.crc32(codes.tobytes())`` formula
    :class:`~repro.store.durable.DurableNodeState` acknowledges, so a
    spilled replica and a WAL-resident replica of the same block vote with
    identical digests during anti-entropy scrubs.  ``tree_rows`` are the
    vp-tree row indices of the page's rows (tree row order *is* insertion
    order, so recovery can rebuild the manifest from the file alone).
    """

    payload: bytes
    method: int
    rows: int
    block_ids: list[int]
    tree_rows: list[int]
    digests: list[int]
    centroid: list[int]
    radius: float
    histogram: list[int]
    raw_bytes: int
    pinned: bool = False
    offset: int = field(default=0)  # assigned at write time

    def to_table_entry(self) -> dict:
        return {
            "offset": self.offset,
            "length": len(self.payload),
            "method": self.method,
            "rows": self.rows,
            "centroid": self.centroid,
            "radius": self.radius,
            "histogram": self.histogram,
            "raw_bytes": self.raw_bytes,
            "pinned": self.pinned,
        }


def write_block_file(
    disk: NodeDisk,
    name: str,
    node_id: str,
    width: int,
    alphabet_size: int,
    pages: list[PageRecord],
) -> int:
    """Serialise *pages* to *name* on *disk* atomically; returns the file
    size in bytes."""
    offset = 0
    for page in pages:
        page.offset = offset
        offset += len(page.payload)
    tree_rows = np.array(
        [r for page in pages for r in page.tree_rows], dtype=np.uint32
    )
    block_ids = np.array(
        [b for page in pages for b in page.block_ids], dtype=np.uint64
    )
    digest_bytes = np.array(
        [d for page in pages for d in page.digests], dtype=np.uint32
    ).tobytes()
    rowmeta = zlib.compress(tree_rows.tobytes() + block_ids.tobytes(), 6)
    table = {
        "node": node_id,
        "width": int(width),
        "alphabet_size": int(alphabet_size),
        "row_count": int(tree_rows.size),
        "rowmeta_crc": zlib.crc32(rowmeta),
        "digests_crc": zlib.crc32(digest_bytes),
        "pages": [page.to_table_entry() for page in pages],
    }
    table_bytes = zlib.compress(json.dumps(table, sort_keys=True).encode(), 6)
    head = _HEAD.pack(
        MAGIC,
        FORMAT_VERSION,
        zlib.crc32(table_bytes),
        len(table_bytes),
        len(rowmeta),
        len(digest_bytes),
    )
    payload = b"".join(page.payload for page in pages)
    data = head + table_bytes + rowmeta + digest_bytes + payload
    disk.write_atomic(name, data)
    return len(data)


@dataclass
class PageMeta:
    """One page's table entry as parsed back from disk."""

    index: int
    offset: int
    length: int
    method: int
    rows: int
    block_ids: list[int]
    tree_rows: list[int]
    digests: list[int]
    centroid: np.ndarray
    radius: float
    histogram: np.ndarray
    raw_bytes: int
    pinned: bool


class BlockFileReader:
    """Random-access reader over one node's block file.

    Parsing validates magic, version, and each metadata section's CRC
    before trusting a byte of it; page payloads are *not* verified at open
    — each decode is checked lazily (and :meth:`verify_row` re-reads the
    payload from the device, so a scrub observes the current on-disk bytes
    rather than any cached copy)."""

    def __init__(self, disk: NodeDisk, name: str = TIER_FILE) -> None:
        self.disk = disk
        self.name = name
        head_raw = disk.read_span(name, 0, _HEAD.size)
        if len(head_raw) < _HEAD.size:
            raise TierFileError(
                f"{name!r} is {len(head_raw)} bytes — shorter than the header"
            )
        magic, version, table_crc, table_len, rowmeta_len, digests_len = (
            _HEAD.unpack(head_raw)
        )
        if magic != MAGIC:
            raise TierFileError(f"{name!r} is not a tier block file ({magic!r})")
        if version > FORMAT_VERSION:
            raise TierFileError(
                f"{name!r} uses block-file version {version}; this build "
                f"reads up to {FORMAT_VERSION}"
            )
        table_bytes = disk.read_span(name, _HEAD.size, table_len)
        if len(table_bytes) != table_len or zlib.crc32(table_bytes) != table_crc:
            raise TierFileError(f"{name!r} segment table failed its checksum")
        try:
            table = json.loads(zlib.decompress(table_bytes).decode())
        except (zlib.error, ValueError) as exc:
            raise TierFileError(
                f"{name!r} segment table failed to parse: {exc}"
            ) from exc
        self.node_id = str(table["node"])
        self.width = int(table["width"])
        self.alphabet_size = int(table["alphabet_size"])
        self.row_count = int(table["row_count"])

        rowmeta_raw = disk.read_span(name, _HEAD.size + table_len, rowmeta_len)
        if (
            len(rowmeta_raw) != rowmeta_len
            or zlib.crc32(rowmeta_raw) != int(table["rowmeta_crc"])
        ):
            raise TierFileError(f"{name!r} row-meta section failed its checksum")
        try:
            rowmeta = zlib.decompress(rowmeta_raw)
        except zlib.error as exc:
            raise TierFileError(
                f"{name!r} row-meta section failed to decompress: {exc}"
            ) from exc
        n = self.row_count
        if len(rowmeta) != 4 * n + 8 * n:
            raise TierFileError(
                f"{name!r} row-meta section holds {len(rowmeta)} bytes "
                f"for {n} rows"
            )
        tree_rows = np.frombuffer(rowmeta[: 4 * n], dtype=np.uint32)
        block_ids = np.frombuffer(rowmeta[4 * n :], dtype=np.uint64)
        digest_raw = disk.read_span(
            name, _HEAD.size + table_len + rowmeta_len, digests_len
        )
        if (
            len(digest_raw) != digests_len
            or zlib.crc32(digest_raw) != int(table["digests_crc"])
        ):
            raise TierFileError(f"{name!r} digest section failed its checksum")
        digests = np.frombuffer(digest_raw, dtype=np.uint32)
        if digests.size != n:
            raise TierFileError(
                f"{name!r} digest section holds {digests.size} digests "
                f"for {n} rows"
            )

        self._payload_base = _HEAD.size + table_len + rowmeta_len + digests_len
        self.pages: list[PageMeta] = []
        cursor = 0
        for i, entry in enumerate(table["pages"]):
            rows = int(entry["rows"])
            self.pages.append(
                PageMeta(
                    index=i,
                    offset=int(entry["offset"]),
                    length=int(entry["length"]),
                    method=int(entry["method"]),
                    rows=rows,
                    block_ids=[int(b) for b in block_ids[cursor : cursor + rows]],
                    tree_rows=[int(r) for r in tree_rows[cursor : cursor + rows]],
                    digests=[int(d) for d in digests[cursor : cursor + rows]],
                    centroid=np.array(entry["centroid"], dtype=np.uint8),
                    radius=float(entry["radius"]),
                    histogram=np.array(entry["histogram"], dtype=np.int64),
                    raw_bytes=int(entry["raw_bytes"]),
                    pinned=bool(entry["pinned"]),
                )
            )
            cursor += rows
        if cursor != n:
            raise TierFileError(
                f"{name!r} pages cover {cursor} rows, table says {n}"
            )
        # Tree row order is insertion order, so the durable manifest is the
        # block ids sorted by their tree row.
        order = np.argsort(tree_rows, kind="stable")
        self.manifest = [int(b) for b in block_ids[order]]

    # -- reads -----------------------------------------------------------------

    def page_payload(self, index: int) -> bytes:
        """The page's compressed payload, fresh from the device."""
        meta = self.pages[index]
        return self.disk.read_span(
            self.name, self._payload_base + meta.offset, meta.length
        )

    def read_page(self, index: int) -> np.ndarray:
        """Decode page *index* to its ``(rows, width)`` matrix.  Raises
        :class:`~repro.tier.codec.TierCodecError` on payload damage."""
        meta = self.pages[index]
        return decode_page(
            meta.method,
            self.page_payload(index),
            meta.rows,
            self.width,
            meta.centroid,
            self.alphabet_size,
        )

    def verify_row(self, index: int, slot: int) -> bool:
        """Digest-verify one row against the table's acknowledged CRC,
        reading the payload fresh from the device (scrub semantics)."""
        meta = self.pages[index]
        try:
            rows = self.read_page(index)
        except TierCodecError:
            return False
        return zlib.crc32(rows[slot].tobytes()) == meta.digests[slot]

    @property
    def bytes_on_disk(self) -> int:
        return self.disk.size(self.name)

    @property
    def raw_bytes(self) -> int:
        return sum(meta.raw_bytes for meta in self.pages)


def manifest_ids(disk: NodeDisk, name: str = TIER_FILE) -> list[int]:
    """The insertion-ordered block manifest, read from metadata alone.

    Used for repair planning against *dead* nodes: the process is gone but
    its disk still records what it held.  Returns ``[]`` when the file is
    missing or fails its integrity checks (an unreadable manifest claims
    nothing, and the scrubber treats those blocks like lost replicas)."""
    if not disk.exists(name):
        return []
    try:
        return BlockFileReader(disk, name).manifest
    except (TierFileError, FileNotFoundError):
        return []
