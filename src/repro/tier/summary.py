"""In-RAM page summaries and the summary vp-tree.

Tier-1 routing and candidate pruning must never touch cold data, so each
on-disk page keeps a small resident summary:

* **centroid** — the per-column modal residue of the page's rows (the same
  reference the delta codec compresses against, so one artifact serves
  both compression and pruning);
* **radius** — the largest metric distance from the centroid to any row;
* **histogram** — residue counts over the page (occupancy reporting and a
  cheap composition fingerprint).

A static vp-tree over the centroids answers "which pages *could* hold a
row within distance ``r`` of this query?" by the triangle inequality: page
``p`` is a candidate iff ``d(q, centroid_p) <= r + radius_p``.  The query
fan-out prefetches exactly that candidate set before node service starts,
so cold reads batch into one sequential fetch instead of per-miss seeks.

Summary distances run on a **fresh** :class:`MetricAdapter` — never the
node tree's — so summary maintenance and prefetch pruning leave the
simulation's ``pair_evaluations`` counters (and therefore every simulated
service time) byte-identical to the all-RAM deployment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.vptree.metric import MetricAdapter
from repro.vptree.tree import VPTree


@dataclass
class PageSummary:
    """Resident metadata for one on-disk page."""

    index: int
    centroid: np.ndarray
    radius: float
    histogram: np.ndarray
    rows: int
    raw_bytes: int
    comp_bytes: int
    pinned: bool


def page_centroid(rows: np.ndarray, alphabet_size: int) -> np.ndarray:
    """Per-column modal residue (ties break toward the smaller code, which
    keeps the centroid deterministic)."""
    width = rows.shape[1]
    centroid = np.empty(width, dtype=np.uint8)
    size = max(int(alphabet_size), int(rows.max(initial=0)) + 1)
    for col in range(width):
        centroid[col] = np.bincount(rows[:, col], minlength=size).argmax()
    return centroid


def summarize_rows(
    rows: np.ndarray, adapter: MetricAdapter, alphabet_size: int
) -> tuple[np.ndarray, float, np.ndarray]:
    """``(centroid, radius, histogram)`` for one page of rows; *adapter*
    must be a fresh (non-simulation) metric adapter."""
    centroid = page_centroid(rows, alphabet_size)
    dists = adapter.batch(centroid, rows)
    histogram = np.bincount(rows.ravel(), minlength=alphabet_size).astype(
        np.uint32  # counts <= rows*width; int64 would double the RAM bill
    )
    return centroid, float(dists.max()) if dists.size else 0.0, histogram


class SummaryIndex:
    """A vp-tree over page centroids for routing-time candidate pruning."""

    def __init__(
        self, summaries: list[PageSummary], adapter: MetricAdapter
    ) -> None:
        self.summaries = summaries
        self.adapter = adapter
        self.max_radius = max((s.radius for s in summaries), default=0.0)
        if summaries:
            centroids = np.stack([s.centroid for s in summaries])
            self._tree = VPTree(
                centroids,
                adapter,
                payloads=[s.index for s in summaries],
                bucket_capacity=8,
                rng=0,
            )
        else:
            self._tree = None

    def candidates(self, query_codes: np.ndarray, radius: float) -> list[int]:
        """Page indices whose ball ``(centroid, page radius)`` can intersect
        the search ball ``(query, radius)``; sorted ascending so prefetch
        reads pages in file order."""
        if self._tree is None or not np.isfinite(radius):
            return []
        hits = self._tree.radius_search(query_codes, radius + self.max_radius)
        out = [
            page_index
            for dist, page_index in hits
            if dist <= radius + self.summaries[page_index].radius
        ]
        return sorted(out)

    def occupancy(self) -> dict:
        """Aggregate residency-independent page statistics."""
        return {
            "pages": len(self.summaries),
            "pinned_pages": sum(1 for s in self.summaries if s.pinned),
            "rows": sum(s.rows for s in self.summaries),
            "raw_bytes": sum(s.raw_bytes for s in self.summaries),
            "comp_bytes": sum(s.comp_bytes for s in self.summaries),
            "max_radius": self.max_radius,
        }
