"""The per-node tiered block store: spill, read-through, and recovery.

``NodeTier`` moves a node's block codes from RAM to an on-disk block file
(:mod:`repro.tier.blockfile`) while leaving the node's vp-tree *structure*
untouched.  The exactness contract is structural:

* every internal vertex's **vantage row** lands in a permanently pinned
  page (resident by construction), so internal traversal and pruning never
  touch cold data;
* **leaf buckets** are packed into pages in depth-first order (a bucket
  never straddles a page unless it is larger than one), read through the
  shared :class:`~repro.tier.cache.BlockCache` on demand;
* the tree's ``points`` matrix is replaced by :class:`TieredPoints`, which
  serves the exact same bytes through the same indexing operations — so
  traversal order, pruning decisions, distance counters, and k-NN results
  are *byte-identical* to the all-RAM node, and only service time differs
  (cold page reads are charged as simulated seek + transfer seconds).

Spilling is also a durability checkpoint: the block file carries the same
per-row CRC32 digests the WAL acknowledges, so after a spill the snapshot
and WAL are reset and the block file *is* the node's durable state (the
scrubber and repair planner read it through the node's ``durable_*``
dispatch, including from a crashed node's disk).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.obs.metrics import default_registry
from repro.tier import blockfile
from repro.tier.blockfile import BlockFileReader, PageRecord, write_block_file
from repro.tier.cache import BlockCache
from repro.tier.codec import METHOD_NAMES, TierCodecError, encode_page
from repro.tier.summary import PageSummary, SummaryIndex, summarize_rows
from repro.vptree.metric import MetricAdapter
from repro.vptree.tree import VPNode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.node import StorageNode


@dataclass(frozen=True)
class TierConfig:
    """Deployment-wide tiering knobs (kept out of
    :class:`~repro.core.params.MendelConfig` so saved ``MENDELIX`` archives
    round-trip unchanged; tiering is a runtime policy, not index shape)."""

    #: rows per on-disk page; larger pages compress better and amortise
    #: seeks, smaller pages waste less cache on partial working sets
    page_rows: int = 128
    #: shared RAM budget (bytes) for the decoded-page cache
    cache_bytes: int = 1 << 20
    #: simulated seconds per cold fetch (seek + request dispatch)
    seek_seconds: float = 4e-3
    #: simulated seconds per compressed byte read (sequential transfer
    #: plus decompression; ~50 MB/s effective)
    read_seconds_per_byte: float = 2e-8
    #: durable file name on each node's disk
    file_name: str = blockfile.TIER_FILE
    #: probation share of the cache budget (SLRU admission control)
    probation_fraction: float = 0.5
    #: residue alphabet size (enables the 2-bit packed codec when <= 4);
    #: 0 derives it from the spilled data
    alphabet_size: int = 0

    def __post_init__(self) -> None:
        if self.page_rows < 1:
            raise ValueError(f"page_rows must be >= 1, got {self.page_rows}")
        if self.cache_bytes < 0:
            raise ValueError(f"cache_bytes must be >= 0, got {self.cache_bytes}")
        if self.seek_seconds < 0 or self.read_seconds_per_byte < 0:
            raise ValueError("tier time constants must be >= 0")


class TieredPoints:
    """Drop-in replacement for a vp-tree's ``points`` matrix, backed by the
    tier's pages.

    Supports exactly the access patterns the search and maintenance paths
    use — ``shape``, ``len``, integer row indexing, and integer-array fancy
    indexing — returning the same ``uint8`` bytes the RAM matrix held.
    Cold page fetches accumulate into the owning tier's pending I/O
    counters, which the node drains into simulated service seconds after
    each local search."""

    dtype = np.dtype(np.uint8)

    def __init__(self, tier: "NodeTier") -> None:
        self._tier = tier

    @property
    def shape(self) -> tuple[int, int]:
        return self._tier.row_count, self._tier.width

    def __len__(self) -> int:
        return self._tier.row_count

    @property
    def nbytes(self) -> int:
        return self._tier.row_count * self._tier.width

    def __getitem__(self, key):
        tier = self._tier
        if isinstance(key, (int, np.integer)):
            page = int(tier.page_of[key])
            return tier.fetch_page(page)[int(tier.slot_of[key])]
        idx = np.asarray(key)
        if idx.ndim == 0:
            page = int(tier.page_of[int(idx)])
            return tier.fetch_page(page)[int(tier.slot_of[int(idx)])]
        idx = idx.reshape(-1)
        if idx.size == 0:
            return np.empty((0, tier.width), dtype=np.uint8)
        pages = tier.page_of[idx]
        first = int(pages[0])
        if (pages == first).all():
            # Fast path: a whole leaf bucket lives in one page.
            return tier.fetch_page(first)[tier.slot_of[idx]]
        out = np.empty((idx.size, tier.width), dtype=np.uint8)
        for page in np.unique(pages):
            mask = pages == page
            out[mask] = tier.fetch_page(int(page))[tier.slot_of[idx[mask]]]
        return out

    def __array__(self, dtype=None, copy=None):
        # Explicit materialisation (no caller should need this on the hot
        # path; it exists so accidental coercion stays *correct*).
        full = self._tier.materialize()
        return full if dtype is None else full.astype(dtype)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TieredPoints(shape={self.shape}, tier={self._tier.node_id!r})"


def _chunks(values, size: int):
    for start in range(0, len(values), size):
        yield values[start : start + size]


class NodeTier:
    """One node's tier state: block file, pinned pages, summaries, maps."""

    def __init__(
        self, node: "StorageNode", cache: BlockCache, config: TierConfig
    ) -> None:
        self.node = node
        self.node_id = node.node_id
        self.cache = cache
        self.config = config
        # Summary/codec distances run on a fresh adapter over the same
        # metric — the node tree's adapter feeds simulated service times
        # and must stay byte-identical to the all-RAM deployment.
        self.adapter = MetricAdapter(node.tree.adapter.metric)
        self.active = False
        self.row_count = 0
        self.width = int(node.tree.points.shape[1])
        self.reader: BlockFileReader | None = None
        self.summary: SummaryIndex | None = None
        self.page_of = np.empty(0, dtype=np.int32)
        self.slot_of = np.empty(0, dtype=np.int32)
        self._page_rows: list[np.ndarray] = []
        self._pinned_arrays: dict[int, np.ndarray] = {}
        self._row_of_block: dict[int, tuple[int, int]] = {}
        # Victim buffer: the page most recently decoded for this node —
        # per-query scratch (the page "in hand" while a leaf is scanned),
        # held outside the shared budget like the query's own buffers.
        self._last_page: tuple[int, np.ndarray] | None = None
        self.pending_seeks = 0
        self.pending_bytes = 0
        # Lifetime device traffic (never drained — pending_* feed sim-time
        # charges, these feed the tier-cache dashboard panel).
        self.total_seeks = 0
        self.total_bytes = 0
        registry = default_registry()
        self._g_disk = registry.gauge(
            "repro_tier_bytes_on_disk",
            "Compressed block-file bytes on each node's disk",
            ("node",),
        )
        self._g_ratio = registry.gauge(
            "repro_tier_compression_ratio",
            "Raw block bytes over on-disk bytes per node (0 = not tiered)",
            ("node",),
        )
        self._g_resident = registry.gauge(
            "repro_tier_resident_fraction",
            "Fraction of a node's raw block bytes resident in RAM "
            "(pinned vantage pages + cached pages)",
            ("node",),
        )
        self._c_decode_failures = registry.counter(
            "repro_tier_decode_failures_total",
            "Page payloads that failed to decode on read (bit rot caught "
            "by the codec before digest verification)",
            ("node",),
        )

    # -- spill -----------------------------------------------------------------

    def spill(self) -> None:
        """Move the node's block codes to disk, leaving the tree structure
        (and all simulated-search behaviour) untouched."""
        tree = self.node.tree
        if tree.root is None or tree.points.shape[0] == 0:
            return
        points = np.ascontiguousarray(tree.points, dtype=np.uint8)
        n, width = points.shape
        self.width = width
        alphabet_size = self.config.alphabet_size or max(
            2, int(points.max(initial=0)) + 1
        )

        buckets: list[np.ndarray] = []
        vantages: list[int] = []
        stack: list[VPNode] = [tree.root]
        while stack:
            vertex = stack.pop()
            if vertex.is_leaf:
                buckets.append(np.asarray(vertex.bucket, dtype=np.intp))
                continue
            vantages.append(int(vertex.vantage_index))
            if vertex.right is not None:
                stack.append(vertex.right)
            if vertex.left is not None:
                stack.append(vertex.left)

        page_rows: list[np.ndarray] = []
        current: list[np.ndarray] = []
        current_rows = 0
        for bucket in buckets:
            for part in _chunks(bucket, self.config.page_rows):
                if current_rows and current_rows + len(part) > self.config.page_rows:
                    page_rows.append(np.concatenate(current))
                    current, current_rows = [], 0
                current.append(part)
                current_rows += len(part)
        if current_rows:
            page_rows.append(np.concatenate(current))
        data_pages = len(page_rows)
        for chunk in _chunks(vantages, self.config.page_rows):
            page_rows.append(np.asarray(chunk, dtype=np.intp))

        records: list[PageRecord] = []
        summaries: list[PageSummary] = []
        for index, rows_idx in enumerate(page_rows):
            rows = points[rows_idx]
            centroid, radius, histogram = summarize_rows(
                rows, self.adapter, alphabet_size
            )
            method, payload = encode_page(rows, centroid, alphabet_size)
            pinned = index >= data_pages
            records.append(
                PageRecord(
                    payload=payload,
                    method=method,
                    rows=int(rows.shape[0]),
                    block_ids=[int(tree.payloads[r]) for r in rows_idx],
                    tree_rows=[int(r) for r in rows_idx],
                    digests=[
                        zlib.crc32(rows[i].tobytes())
                        for i in range(rows.shape[0])
                    ],
                    centroid=[int(c) for c in centroid],
                    radius=radius,
                    histogram=[int(h) for h in histogram],
                    raw_bytes=int(rows.nbytes),
                    pinned=pinned,
                )
            )
            summaries.append(
                PageSummary(
                    index=index,
                    centroid=centroid,
                    radius=radius,
                    histogram=histogram,
                    rows=int(rows.shape[0]),
                    raw_bytes=int(rows.nbytes),
                    comp_bytes=len(payload),
                    pinned=pinned,
                )
            )

        write_block_file(
            self.node.disk,
            self.config.file_name,
            self.node_id,
            width,
            alphabet_size,
            records,
        )
        self.reader = BlockFileReader(self.node.disk, self.config.file_name)
        self.summary = SummaryIndex(summaries, self.adapter)
        self.row_count = n
        self.page_of = np.full(n, -1, dtype=np.int32)
        self.slot_of = np.full(n, -1, dtype=np.int32)
        for index, rows_idx in enumerate(page_rows):
            self.page_of[rows_idx] = index
            self.slot_of[rows_idx] = np.arange(len(rows_idx), dtype=np.int32)
        self._page_rows = page_rows
        self._pinned_arrays = {
            index: points[rows_idx].copy()
            for index, rows_idx in enumerate(page_rows)
            if index >= data_pages
        }
        self._row_of_block = {
            block_id: (index, slot)
            for index, record in enumerate(records)
            for slot, block_id in enumerate(record.block_ids)
        }
        self.pending_seeks = 0
        self.pending_bytes = 0
        self.active = True

        tree.points = TieredPoints(self)
        if hasattr(tree, "_storage"):
            del tree._storage
        self._update_gauges()

    # -- reads -----------------------------------------------------------------

    def fetch_page(self, index: int) -> np.ndarray:
        """The decoded page: pinned store, then cache, then a cold device
        read (accumulated into pending I/O).  A payload that fails to
        decode yields placeholder rows — search then surfaces no verified
        hit from them and the scrubber quarantines the real bytes."""
        pinned = self._pinned_arrays.get(index)
        if pinned is not None:
            return pinned
        if self._last_page is not None and self._last_page[0] == index:
            return self._last_page[1]
        key = (self.node_id, index)
        rows = self.cache.get(key)
        if rows is not None:
            self._last_page = (index, rows)
            return rows
        meta = self.reader.pages[index]
        self.pending_seeks += 1
        self.pending_bytes += meta.length
        self.total_seeks += 1
        self.total_bytes += meta.length
        try:
            rows = self.reader.read_page(index)
        except TierCodecError:
            self._c_decode_failures.labels(node=self.node_id).inc()
            return np.zeros((meta.rows, self.width), dtype=np.uint8)
        self.cache.put(key, rows)
        self._last_page = (index, rows)
        return rows

    def drain_io(self) -> tuple[int, int]:
        """``(seeks, bytes)`` accumulated since the last drain."""
        seeks, nbytes = self.pending_seeks, self.pending_bytes
        self.pending_seeks = 0
        self.pending_bytes = 0
        return seeks, nbytes

    def io_seconds(self, seeks: int, nbytes: int) -> float:
        """Simulated device time for *seeks* cold fetches totalling
        *nbytes* compressed bytes (not scaled by CPU speed — this is the
        storage device, not the node's processor)."""
        return (
            seeks * self.config.seek_seconds
            + nbytes * self.config.read_seconds_per_byte
        )

    def prefetch(
        self, window_codes: list[np.ndarray], radius: float
    ) -> list[tuple[str, int]]:
        """Routing-time prefetch: load every page whose summary ball can
        intersect a subquery's search ball, in one batched sequential
        fetch (a single seek), and pin the candidate set for the subquery's
        lifetime.  Returns the pinned keys for :meth:`release_pins`."""
        if not self.active or self.summary is None:
            return []
        candidates: set[int] = set()
        for codes in window_codes:
            candidates.update(self.summary.candidates(codes, radius))
        pinned_keys: list[tuple[str, int]] = []
        fetched = 0
        batch_bytes = 0
        # Pin at most half the shared budget: the pinned candidate set must
        # never starve read-through admission for the rest of the query
        # (concurrent subqueries each need headroom too).
        pin_budget = self.cache.capacity_bytes // 2
        for index in sorted(candidates):
            if self.cache.pinned_bytes >= pin_budget:
                # Past the pin budget further prefetch admissions would only
                # evict each other out of probation; leave the remainder to
                # read-through.
                break
            if index in self._pinned_arrays:
                continue
            key = (self.node_id, index)
            rows = self.cache.get(key, count=False)
            if rows is None:
                meta = self.reader.pages[index]
                try:
                    rows = self.reader.read_page(index)
                except TierCodecError:
                    self._c_decode_failures.labels(node=self.node_id).inc()
                    continue
                if not self.cache.put(key, rows, prefetch=True):
                    continue  # budget exhausted: read-through will serve it
                fetched += 1
                batch_bytes += meta.length
            if self.cache.pinned_bytes < pin_budget and self.cache.pin(key):
                pinned_keys.append(key)
        if fetched:
            self.pending_seeks += 1
            self.pending_bytes += batch_bytes
            self.total_seeks += 1
            self.total_bytes += batch_bytes
        return pinned_keys

    def release_pins(self, keys: list[tuple[str, int]]) -> None:
        for key in keys:
            self.cache.unpin(key)

    # -- durability dispatch ---------------------------------------------------

    def manifest_ids(self) -> list[int]:
        """Insertion-ordered block manifest, read from the on-disk table
        (answers even for a crashed process — the disk survives)."""
        return blockfile.manifest_ids(self.node.disk, self.config.file_name)

    def digest(self, block_id: int) -> int | None:
        location = self._row_of_block.get(block_id)
        if location is None or self.reader is None:
            return None
        page, slot = location
        return self.reader.pages[page].digests[slot]

    def verify(self, block_id: int) -> bool:
        """Digest-verify one block against the device's *current* bytes."""
        location = self._row_of_block.get(block_id)
        if location is None or self.reader is None:
            return True
        return self.reader.verify_row(*location)

    def corrupt_block(self, block_id: int, bit: int = 0) -> None:
        """Bit-rot injection for tests/chaos: flip one bit inside the page
        payload holding *block_id* (mirrors ``DurableNodeState.corrupt_block``)."""
        page, _slot = self._row_of_block[block_id]
        meta = self.reader.pages[page]
        offset = self.reader._payload_base + meta.offset + meta.length // 2
        self.node.disk.flip_bit(self.config.file_name, offset, bit)
        # Cached copies predate the flip; drop them so reads see the device.
        self.cache.drop_node(self.node_id)
        self._last_page = None

    # -- lifecycle -------------------------------------------------------------

    def has_file(self) -> bool:
        return self.node.disk.exists(self.config.file_name)

    def materialize(self) -> np.ndarray:
        """The full ``(n, width)`` codes matrix in tree-row order, read
        from pinned pages and the device (no cache churn, no simulated I/O
        — spill/unspill are control-plane moves, not query service)."""
        codes = np.empty((self.row_count, self.width), dtype=np.uint8)
        for index, rows_idx in enumerate(self._page_rows):
            pinned = self._pinned_arrays.get(index)
            if pinned is not None:
                codes[rows_idx] = pinned
                continue
            try:
                codes[rows_idx] = self.reader.read_page(index)
            except TierCodecError:
                self._c_decode_failures.labels(node=self.node_id).inc()
                codes[rows_idx] = 0
        return codes

    def file_contents(self) -> tuple[np.ndarray, list[int]]:
        """``(codes, block_ids)`` in insertion order, parsed fresh from the
        device — the crash-recovery read path (RAM row maps not trusted)."""
        reader = BlockFileReader(self.node.disk, self.config.file_name)
        by_block: dict[int, np.ndarray] = {}
        for index, meta in enumerate(reader.pages):
            try:
                rows = reader.read_page(index)
            except TierCodecError:
                self._c_decode_failures.labels(node=self.node_id).inc()
                rows = np.zeros((meta.rows, reader.width), dtype=np.uint8)
            for slot, block_id in enumerate(meta.block_ids):
                by_block[block_id] = rows[slot]
        codes = (
            np.stack([by_block[b] for b in reader.manifest])
            if reader.manifest
            else np.empty((0, reader.width), dtype=np.uint8)
        )
        return codes, list(reader.manifest)

    def detach(self) -> None:
        """Process death: the node's share of the cache dies with its RAM;
        the block file stays on disk for manifest reads and recovery."""
        self.cache.drop_node(self.node_id)
        self._last_page = None
        self.active = False

    def discard(self) -> None:
        """Tear the tier down completely (unspill or placement reset):
        cache entries dropped, block file deleted, gauges zeroed."""
        self.cache.drop_node(self.node_id)
        self._last_page = None
        self.node.disk.delete(self.config.file_name)
        self.active = False
        self._g_disk.labels(node=self.node_id).set(0.0)
        self._g_ratio.labels(node=self.node_id).set(0.0)
        self._g_resident.labels(node=self.node_id).set(0.0)

    # -- reporting -------------------------------------------------------------

    @property
    def bytes_on_disk(self) -> int:
        return self.node.disk.size(self.config.file_name)

    @property
    def raw_bytes(self) -> int:
        return 0 if self.reader is None else self.reader.raw_bytes

    @property
    def pinned_bytes(self) -> int:
        return sum(arr.nbytes for arr in self._pinned_arrays.values())

    @property
    def resident_bytes(self) -> int:
        return self.pinned_bytes + self.cache.resident_bytes_for(self.node_id)

    @property
    def summary_bytes(self) -> int:
        """RAM cost of the always-resident page summaries (centroid bytes,
        radius, histogram counts)."""
        if self.summary is None:
            return 0
        return sum(
            s.centroid.nbytes + s.histogram.nbytes + 8
            for s in self.summary.summaries
        )

    @property
    def compression_ratio(self) -> float:
        disk = self.bytes_on_disk
        return self.raw_bytes / disk if disk else 0.0

    @property
    def resident_fraction(self) -> float:
        raw = self.raw_bytes
        return self.resident_bytes / raw if raw else 0.0

    def occupancy(self) -> dict:
        """Tier occupancy report for one node (also refreshes gauges)."""
        methods: dict[str, int] = {}
        if self.reader is not None:
            for meta in self.reader.pages:
                name = METHOD_NAMES.get(meta.method, str(meta.method))
                methods[name] = methods.get(name, 0) + 1
        report = {
            "active": self.active,
            "pages": len(self._page_rows),
            "pinned_pages": len(self._pinned_arrays),
            "rows": self.row_count,
            "bytes_on_disk": self.bytes_on_disk,
            "raw_bytes": self.raw_bytes,
            "pinned_bytes": self.pinned_bytes,
            "summary_bytes": self.summary_bytes,
            "resident_bytes": self.resident_bytes,
            "compression_ratio": self.compression_ratio,
            "resident_fraction": self.resident_fraction,
            "cold_read_seeks": self.total_seeks,
            "cold_read_bytes": self.total_bytes,
            "codec_pages": methods,
        }
        self._update_gauges()
        return report

    def _update_gauges(self) -> None:
        self._g_disk.labels(node=self.node_id).set(float(self.bytes_on_disk))
        self._g_ratio.labels(node=self.node_id).set(self.compression_ratio)
        self._g_resident.labels(node=self.node_id).set(self.resident_fraction)
