"""``repro.tier`` — the tiered disk-backed compressed block store.

Spills a node's block codes into an on-disk columnar block file (a
reference-free redundancy codec over per-page centroids), keeps an in-RAM
vp-tree over page *summaries* for routing-time pruning and prefetch, and
serves cold reads through a bounded shared SLRU cache with pin-count
eviction — all without changing a single simulated search result: tiered
and all-RAM deployments return byte-identical k-NN answers and identical
distance-evaluation counters; only service time differs.
"""

from repro.tier.blockfile import (
    BlockFileReader,
    PageMeta,
    PageRecord,
    TIER_FILE,
    TierFileError,
    manifest_ids,
    write_block_file,
)
from repro.tier.cache import CACHE_TIER, BlockCache
from repro.tier.codec import (
    METHOD_DELTA,
    METHOD_NAMES,
    METHOD_PACKED,
    METHOD_RAW,
    METHOD_ZLIB,
    TierCodecError,
    decode_page,
    encode_page,
)
from repro.tier.store import NodeTier, TierConfig, TieredPoints
from repro.tier.summary import (
    PageSummary,
    SummaryIndex,
    page_centroid,
    summarize_rows,
)

__all__ = [
    "BlockCache",
    "BlockFileReader",
    "CACHE_TIER",
    "METHOD_DELTA",
    "METHOD_NAMES",
    "METHOD_PACKED",
    "METHOD_RAW",
    "METHOD_ZLIB",
    "NodeTier",
    "PageMeta",
    "PageRecord",
    "PageSummary",
    "SummaryIndex",
    "TIER_FILE",
    "TierCodecError",
    "TierConfig",
    "TierFileError",
    "TieredPoints",
    "decode_page",
    "encode_page",
    "manifest_ids",
    "page_centroid",
    "summarize_rows",
    "write_block_file",
]
