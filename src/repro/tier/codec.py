"""Reference-free redundancy codec for on-disk block pages.

Sequencing segments are heavily redundant — family members differ from each
other by point mutations, so rows of one page differ from the page's
*centroid* (per-column modal residue) in only a few positions.  The codec
exploits that without any external reference (compare the compressed
self-index of arXiv 1111.1355, which likewise derives its model from the
data itself):

``PACKED``
    residues packed 4-per-byte after subtracting the centroid modulo the
    alphabet size — only applicable to small alphabets (DNA: 4 symbols fit
    2 bits) whose codes all lie below the alphabet size — then zlib over
    the packed stream (runs of zero deltas collapse);
``DELTA``
    per-column delta versus the centroid modulo 256, then zlib — protein
    pages where rows cluster around the centroid compress well because the
    delta stream is mostly zero bytes;
``ZLIB``
    plain zlib over the raw rows — the guaranteed fallback for pages with
    no exploitable structure;
``RAW``
    the rows verbatim — chosen when compression would *expand* the page
    (tiny pages, already-random data).

Encoding tries every applicable method and keeps the smallest payload
(ties broken by method order), so the choice is deterministic and the
format records the winner per page.  Every method is lossless: decode is
the exact inverse and reproduces the original ``uint8`` rows bit-for-bit,
which the per-row CRC32 digests in the block file verify independently.
"""

from __future__ import annotations

import zlib

import numpy as np

METHOD_RAW = 0
METHOD_ZLIB = 1
METHOD_DELTA = 2
METHOD_PACKED = 3

METHOD_NAMES = {
    METHOD_RAW: "raw",
    METHOD_ZLIB: "zlib",
    METHOD_DELTA: "delta+zlib",
    METHOD_PACKED: "2bit+zlib",
}

#: zlib level: 6 balances ratio against the spill/unspill wall cost.
_LEVEL = 6


class TierCodecError(Exception):
    """A page payload could not be decoded (corruption or a bad method)."""


def _pack_2bit(values: np.ndarray) -> bytes:
    """Pack a flat array of 2-bit values (0..3) four per byte."""
    flat = values.ravel()
    pad = (-flat.size) % 4
    if pad:
        flat = np.concatenate([flat, np.zeros(pad, dtype=np.uint8)])
    quads = flat.reshape(-1, 4)
    packed = (
        quads[:, 0]
        | (quads[:, 1] << 2)
        | (quads[:, 2] << 4)
        | (quads[:, 3] << 6)
    ).astype(np.uint8)
    return packed.tobytes()


def _unpack_2bit(data: bytes, count: int) -> np.ndarray:
    """Inverse of :func:`_pack_2bit`; returns *count* values."""
    packed = np.frombuffer(data, dtype=np.uint8)
    quads = np.empty((packed.size, 4), dtype=np.uint8)
    quads[:, 0] = packed & 3
    quads[:, 1] = (packed >> 2) & 3
    quads[:, 2] = (packed >> 4) & 3
    quads[:, 3] = (packed >> 6) & 3
    flat = quads.ravel()
    if flat.size < count:
        raise TierCodecError(
            f"packed stream holds {flat.size} residues, need {count}"
        )
    return flat[:count]


def encode_page(
    rows: np.ndarray, centroid: np.ndarray, alphabet_size: int
) -> tuple[int, bytes]:
    """Encode one page of equal-length code rows; returns
    ``(method, payload)``.

    Tries every applicable method and keeps the smallest payload; the
    selection is deterministic (method order breaks ties), so re-encoding
    identical rows always yields identical bytes.
    """
    rows = np.ascontiguousarray(rows, dtype=np.uint8)
    centroid = np.ascontiguousarray(centroid, dtype=np.uint8)
    raw = rows.tobytes()
    candidates: list[tuple[int, bytes]] = [(METHOD_RAW, raw)]
    candidates.append((METHOD_ZLIB, zlib.compress(raw, _LEVEL)))
    delta = ((rows.astype(np.int16) - centroid.astype(np.int16)) % 256).astype(
        np.uint8
    )
    candidates.append((METHOD_DELTA, zlib.compress(delta.tobytes(), _LEVEL)))
    if (
        2 <= alphabet_size <= 4
        and (rows < alphabet_size).all()
        and (centroid < alphabet_size).all()
    ):
        residue_delta = (
            (rows.astype(np.int16) - centroid.astype(np.int16)) % alphabet_size
        ).astype(np.uint8)
        candidates.append(
            (METHOD_PACKED, zlib.compress(_pack_2bit(residue_delta), _LEVEL))
        )
    return min(candidates, key=lambda pair: (len(pair[1]), pair[0]))


def decode_page(
    method: int,
    payload: bytes,
    n_rows: int,
    width: int,
    centroid: np.ndarray,
    alphabet_size: int,
) -> np.ndarray:
    """Inverse of :func:`encode_page`; returns the ``(n_rows, width)``
    ``uint8`` matrix.  Raises :class:`TierCodecError` on any damage."""
    expected = n_rows * width
    try:
        if method == METHOD_RAW:
            flat = np.frombuffer(payload, dtype=np.uint8)
        elif method == METHOD_ZLIB:
            flat = np.frombuffer(zlib.decompress(payload), dtype=np.uint8)
        elif method == METHOD_DELTA:
            delta = np.frombuffer(zlib.decompress(payload), dtype=np.uint8)
            if delta.size != expected:
                raise TierCodecError(
                    f"delta stream holds {delta.size} bytes, need {expected}"
                )
            centroid = np.asarray(centroid, dtype=np.uint8)
            flat = (
                (delta.reshape(n_rows, width).astype(np.int16) + centroid) % 256
            ).astype(np.uint8).ravel()
        elif method == METHOD_PACKED:
            stream = zlib.decompress(payload)
            delta = _unpack_2bit(stream, expected)
            centroid = np.asarray(centroid, dtype=np.uint8)
            flat = (
                (delta.reshape(n_rows, width).astype(np.int16) + centroid)
                % alphabet_size
            ).astype(np.uint8).ravel()
        else:
            raise TierCodecError(f"unknown page codec method {method}")
    except zlib.error as exc:
        raise TierCodecError(f"page payload failed to decompress: {exc}") from exc
    if flat.size != expected:
        raise TierCodecError(
            f"decoded {flat.size} bytes for a {n_rows}x{width} page"
        )
    return np.ascontiguousarray(flat.reshape(n_rows, width))
