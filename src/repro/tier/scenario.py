"""The ``cold_vs_warm_query`` scenario: the tier's proof-of-claims run.

One function, :func:`run_tier_scenario`, drives the whole tiered-storage
story end to end on a fixed-seed synthetic corpus and returns a report
dict shared by the ``repro tier`` CLI command and the
``cold_vs_warm_query`` regression workload:

1. **warm** — build a family database deployment and run the fig6a-style
   query sweep all-RAM (the baseline signatures and simulated latencies);
2. **cold** — spill every node to its compressed block file with a shared
   RAM cache capped at a fraction of the raw corpus (default 10%), re-run
   the sweep, and require *byte-identical* alignments and identical
   pipeline counters — only simulated turnaround may differ (cold reads
   charge seek + transfer time);
3. **warm2** — repeat one sweep query against the now-populated cache
   (residency check, same equivalence requirement);
4. **capacity** — re-spill with large pages and a cache at 0.1% of the
   corpus, measure ``capacity_x``: how many times the current corpus
   would fit in the RAM the tier actually holds resident
   (``raw / (pinned + summaries + cache budget)``), and require one more
   equivalent query.  ``capacity_x >= 100`` is the 100x-scale claim;
5. **unspill** — fold everything back to RAM and verify equivalence one
   final time (the round trip loses nothing).

The capacity denominator counts what scales with the corpus: permanently
pinned vantage pages, per-page summaries (centroid/radius/histogram), and
the cache byte budget.  Per-query scratch (the one-page victim buffer)
and the row->page maps are excluded — the maps are tree-structure
overhead present in both deployments, and scratch is bounded per query,
not per corpus.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.workloads import (
    FamilySpec,
    generate_family_database,
    generate_read_queries,
)
from repro.core.framework import Mendel
from repro.core.params import MendelConfig, QueryParams
from repro.tier.store import TierConfig

#: sweep lengths mirroring the fig6a read-length sweep
SWEEP_LENGTHS = (300, 600, 900)


def _signature(report) -> tuple:
    """Everything a query result promises to keep byte-identical across
    tiering: the ranked alignments and the deterministic pipeline
    counters.  Simulated turnaround is deliberately excluded — cold reads
    are *supposed* to cost simulated time."""
    alignments = tuple(
        (
            a.subject_id,
            a.query_start,
            a.query_end,
            a.subject_start,
            a.subject_end,
            round(a.score, 6),
            round(a.evalue, 9),
        )
        for a in report.alignments
    )
    return (
        alignments,
        report.stats.candidate_hits,
        report.stats.node_evals,
    )


def _run_sweep(mendel: Mendel, queries: list, params: QueryParams) -> dict:
    """One pass over the sweep queries: wall, per-query sim turnaround
    (ms), signatures, and summed pipeline counters."""
    start = time.perf_counter()
    reports = [mendel.query(q, params) for q in queries]
    wall = time.perf_counter() - start
    return {
        "wall_s": wall,
        "sim_turnaround_ms": [1e3 * r.stats.turnaround for r in reports],
        "signatures": [_signature(r) for r in reports],
        "distance_evals": sum(r.stats.node_evals for r in reports),
        "candidate_hits": sum(r.stats.candidate_hits for r in reports),
    }


def _cache_delta(after: dict, before: dict) -> dict:
    """Counter movement between two ``BlockCache.stats()`` snapshots (the
    registry is process-global, so raw totals would bleed across runs)."""
    return {
        key: after[key] - before.get(key, 0)
        for key in ("hits", "misses", "evictions", "prefetches", "bypasses")
    }


def run_tier_scenario(
    seed: int = 23,
    families: int = 30,
    members_per_family: int = 5,
    length: int = 300,
    sweep_lengths: tuple[int, ...] = SWEEP_LENGTHS,
    cache_fraction: float = 0.10,
    capacity_cache_fraction: float = 0.001,
) -> dict:
    """Run the full cold-vs-warm scenario; returns the report dict.

    *cache_fraction* bounds the cold-phase RAM cache relative to the raw
    corpus bytes (the acceptance bar is <= 10%);
    *capacity_cache_fraction* bounds the capacity-phase cache (0.1% —
    the configuration the 100x claim is measured under).
    """
    spec = FamilySpec(
        families=families, members_per_family=members_per_family, length=length
    )
    database = generate_family_database(spec, rng=seed)
    config = MendelConfig(
        group_count=2,
        group_size=2,
        bucket_capacity=512,
        segment_length=32,
        seed=seed,
    )
    build_start = time.perf_counter()
    mendel = Mendel.build(database, config)
    build_wall = time.perf_counter() - build_start

    params = QueryParams(k=8, n=6, i=0.8)
    queries = [
        q
        for L in sweep_lengths
        for q in generate_read_queries(
            database, 1, L, rng=seed + L, id_prefix=f"sweep-{L}"
        )
    ]

    # Raw corpus bytes actually resident before any spill: every alive
    # node's code matrix (replication included — that is what RAM holds).
    raw_bytes = sum(
        int(np.asarray(node.tree.points).nbytes)
        for node in mendel.index.topology.nodes
        if node.alive
    )

    # -- phase 1: warm (all-RAM baseline) --------------------------------------
    warm = _run_sweep(mendel, queries, params)

    # -- phase 2: cold (spilled, bounded cache) --------------------------------
    cold_config = TierConfig(
        page_rows=256, alphabet_size=database.alphabet.size
    )
    cold_cache_bytes = max(1, int(cache_fraction * raw_bytes))
    cache = mendel.spill(cache_bytes=cold_cache_bytes, config=cold_config)
    stats_before = cache.stats()
    cold = _run_sweep(mendel, queries, params)
    cold["cache"] = _cache_delta(cache.stats(), stats_before)
    tier = mendel.tier_report()

    # -- phase 3: warm2 (cache residency re-check, one query) ------------------
    warm2_report = mendel.query(queries[0], params)
    warm2_sig = _signature(warm2_report)

    # -- phase 4: capacity (large pages, 0.1% cache) ---------------------------
    capacity_config = TierConfig(
        page_rows=2048, alphabet_size=database.alphabet.size
    )
    capacity_cache_bytes = max(
        1, int(capacity_cache_fraction * raw_bytes)
    )
    mendel.spill(cache_bytes=capacity_cache_bytes, config=capacity_config)
    cap_tier = mendel.tier_report()
    resident_budget = (
        cap_tier["pinned_bytes"]
        + cap_tier["summary_bytes"]
        + capacity_cache_bytes
    )
    capacity_x = raw_bytes / max(resident_budget, 1)
    cap_start = time.perf_counter()
    cap_report = mendel.query(queries[0], params)
    cap_wall = time.perf_counter() - cap_start
    cap_sig = _signature(cap_report)

    # -- phase 5: unspill (round trip loses nothing) ---------------------------
    mendel.unspill()
    unspilled_sig = _signature(mendel.query(queries[0], params))

    phases_equal = {
        "cold": cold["signatures"] == warm["signatures"],
        "warm2": warm2_sig == warm["signatures"][0],
        "capacity": cap_sig == warm["signatures"][0],
        "unspilled": unspilled_sig == warm["signatures"][0],
    }
    return {
        "seed": seed,
        "families": families,
        "members_per_family": members_per_family,
        "sweep_lengths": list(sweep_lengths),
        "blocks": mendel.block_count,
        "nodes": mendel.node_count,
        "raw_bytes": raw_bytes,
        "build_wall_s": build_wall,
        "warm": {
            "wall_s": warm["wall_s"],
            "sim_turnaround_ms": warm["sim_turnaround_ms"],
        },
        "cold": {
            "wall_s": cold["wall_s"],
            "sim_turnaround_ms": cold["sim_turnaround_ms"],
            "cache_bytes": cold_cache_bytes,
            "cache": cold["cache"],
        },
        "warm2_sim_turnaround_ms": 1e3 * warm2_report.stats.turnaround,
        "tier": {
            "bytes_on_disk": tier["bytes_on_disk"],
            "compression_ratio": tier["compression_ratio"],
            "resident_fraction": tier["resident_fraction"],
            "pages": tier["pages"],
            "pinned_bytes": tier["pinned_bytes"],
            "summary_bytes": tier["summary_bytes"],
        },
        "capacity": {
            "cache_bytes": capacity_cache_bytes,
            "pinned_bytes": cap_tier["pinned_bytes"],
            "summary_bytes": cap_tier["summary_bytes"],
            "resident_budget": resident_budget,
            "capacity_x": capacity_x,
            "compression_ratio": cap_tier["compression_ratio"],
            "sim_turnaround_ms": 1e3 * cap_report.stats.turnaround,
            "wall_s": cap_wall,
        },
        "counters": {
            "distance_evals": warm["distance_evals"],
            "candidate_hits": warm["candidate_hits"],
        },
        "phases_equal": phases_equal,
        "equivalent": all(phases_equal.values()),
    }
