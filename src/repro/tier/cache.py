"""Bounded RAM page cache shared by every spilled node of a deployment.

A segmented LRU (SLRU) over decoded pages, keyed ``(node_id, page_index)``:

* **probation** holds pages seen once — cold reads and prefetches land
  here, so a one-pass scan cycles through probation and *cannot* evict the
  re-referenced working set (the admission control the tier promises);
* **protected** holds pages re-referenced while resident — a probation hit
  promotes the page, a protected hit refreshes its recency.

Eviction walks probation LRU-first, then protected, always skipping pages
with a nonzero **pin count** — the query fan-out pins its prefetched
candidate set for the duration of the subquery, so a concurrent query's
misses cannot evict pages another query is about to read.  When every
resident page is pinned the cache briefly overshoots its byte budget
rather than deadlock; the overshoot drains at unpin.

All counters are labelled ``(node, tier)`` so a node drain purges its
series via ``MetricsRegistry.purge_labels`` (see the multi-label purge
semantics in :mod:`repro.obs.metrics`).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.profile import charge as profile_charge

#: the ``tier`` label value for block-cache series
CACHE_TIER = "block_cache"


@dataclass
class _Entry:
    rows: np.ndarray
    nbytes: int
    pins: int = 0


class BlockCache:
    """Shared byte-budget SLRU page cache with pin-count eviction."""

    def __init__(
        self,
        capacity_bytes: int,
        registry: MetricsRegistry | None = None,
        probation_fraction: float = 0.5,
    ) -> None:
        if capacity_bytes < 0:
            raise ValueError(f"capacity_bytes must be >= 0, got {capacity_bytes}")
        if not 0.0 < probation_fraction <= 1.0:
            raise ValueError(
                f"probation_fraction must be in (0, 1], got {probation_fraction}"
            )
        self.capacity_bytes = int(capacity_bytes)
        self.probation_fraction = float(probation_fraction)
        self._probation: OrderedDict[tuple[str, int], _Entry] = OrderedDict()
        self._protected: OrderedDict[tuple[str, int], _Entry] = OrderedDict()
        registry = registry or default_registry()
        labelnames = ("node", "tier")
        self._c_hits = registry.counter(
            "repro_tier_cache_hits_total",
            "Block-cache page hits per node",
            labelnames,
        )
        self._c_misses = registry.counter(
            "repro_tier_cache_misses_total",
            "Block-cache page misses (cold reads) per node",
            labelnames,
        )
        self._c_evictions = registry.counter(
            "repro_tier_cache_evictions_total",
            "Pages evicted from the block cache per node",
            labelnames,
        )
        self._c_prefetch = registry.counter(
            "repro_tier_cache_prefetches_total",
            "Pages admitted by routing-time prefetch per node",
            labelnames,
        )
        self._c_bypass = registry.counter(
            "repro_tier_cache_bypass_total",
            "Page reads that bypassed admission (page larger than budget, "
            "or every resident page pinned) per node",
            labelnames,
        )

    # -- introspection ---------------------------------------------------------

    @property
    def resident_bytes(self) -> int:
        return sum(e.nbytes for e in self._probation.values()) + sum(
            e.nbytes for e in self._protected.values()
        )

    @property
    def resident_pages(self) -> int:
        return len(self._probation) + len(self._protected)

    @property
    def pinned_bytes(self) -> int:
        return sum(
            entry.nbytes
            for segment in (self._probation, self._protected)
            for entry in segment.values()
            if entry.pins
        )

    def resident_bytes_for(self, node_id: str) -> int:
        return sum(
            entry.nbytes
            for segment in (self._probation, self._protected)
            for (owner, _), entry in segment.items()
            if owner == node_id
        )

    def contains(self, key: tuple[str, int]) -> bool:
        return key in self._probation or key in self._protected

    def stats(self) -> dict:
        def total(family) -> float:
            return sum(
                child.value for _labels, child in family._items()
            )

        return {
            "capacity_bytes": self.capacity_bytes,
            "resident_bytes": self.resident_bytes,
            "resident_pages": self.resident_pages,
            "hits": total(self._c_hits),
            "misses": total(self._c_misses),
            "evictions": total(self._c_evictions),
            "prefetches": total(self._c_prefetch),
            "bypasses": total(self._c_bypass),
        }

    # -- the cache protocol ----------------------------------------------------

    def get(self, key: tuple[str, int], count: bool = True) -> np.ndarray | None:
        """The decoded page for *key*, or ``None``.  A probation hit
        promotes to protected; a protected hit refreshes recency."""
        entry = self._protected.get(key)
        if entry is not None:
            self._protected.move_to_end(key)
            if count:
                self._c_hits.labels(node=key[0], tier=CACHE_TIER).inc()
                profile_charge("tier", "tier/cache.py:BlockCache.get",
                               cache_hits=1)
            return entry.rows
        entry = self._probation.pop(key, None)
        if entry is not None:
            self._protected[key] = entry
            if count:
                self._c_hits.labels(node=key[0], tier=CACHE_TIER).inc()
                profile_charge("tier", "tier/cache.py:BlockCache.get",
                               cache_hits=1)
            return entry.rows
        if count:
            self._c_misses.labels(node=key[0], tier=CACHE_TIER).inc()
            profile_charge("tier", "tier/cache.py:BlockCache.get",
                           cache_misses=1)
        return None

    def put(
        self,
        key: tuple[str, int],
        rows: np.ndarray,
        prefetch: bool = False,
        pin: bool = False,
    ) -> bool:
        """Admit a decoded page into probation; returns whether it is
        resident afterwards.  Pages larger than the whole budget are never
        admitted (a full-corpus scan cannot claim the cache)."""
        nbytes = int(rows.nbytes)
        node_id = key[0]
        if self.contains(key):
            if pin:
                self.pin(key)
            return True
        if nbytes > self.capacity_bytes:
            self._c_bypass.labels(node=node_id, tier=CACHE_TIER).inc()
            return False
        entry = _Entry(rows=rows, nbytes=nbytes, pins=1 if pin else 0)
        self._probation[key] = entry
        evicted = self._shrink_to_budget(protect=key)
        if not evicted:
            self._c_bypass.labels(node=node_id, tier=CACHE_TIER).inc()
            return False
        if prefetch:
            self._c_prefetch.labels(node=node_id, tier=CACHE_TIER).inc()
        return True

    def _shrink_to_budget(self, protect: tuple[str, int]) -> bool:
        """Evict unpinned pages (probation first) until within budget.

        Returns ``False`` when the budget could only be met by evicting
        *protect* itself (the page being admitted) — the caller then counts
        an admission bypass.  Pinned overshoot is tolerated."""
        while self.resident_bytes > self.capacity_bytes:
            victim = self._pick_victim(exclude=protect)
            if victim is None:
                # Only pinned pages (or just the incoming page) remain.
                incoming = self._probation.get(protect)
                if incoming is not None and incoming.pins == 0:
                    del self._probation[protect]
                    return False
                return True  # pinned overshoot: drains at unpin
            segment, key = victim
            segment.pop(key)
            self._c_evictions.labels(node=key[0], tier=CACHE_TIER).inc()
        return True

    def _pick_victim(
        self, exclude: tuple[str, int]
    ) -> tuple[OrderedDict, tuple[str, int]] | None:
        """LRU-first unpinned victim, preferring probation; protected is
        only raided once probation is exhausted (scan resistance)."""
        for segment in (self._probation, self._protected):
            for key, entry in segment.items():
                if key == exclude or entry.pins:
                    continue
                return segment, key
        return None

    # -- pinning ---------------------------------------------------------------

    def pin(self, key: tuple[str, int]) -> bool:
        """Mark *key* unevictable until a matching :meth:`unpin`."""
        for segment in (self._probation, self._protected):
            entry = segment.get(key)
            if entry is not None:
                entry.pins += 1
                return True
        return False

    def unpin(self, key: tuple[str, int]) -> None:
        for segment in (self._probation, self._protected):
            entry = segment.get(key)
            if entry is not None:
                entry.pins = max(0, entry.pins - 1)
                return

    def drop_node(self, node_id: str) -> int:
        """Drop every resident page of *node_id* (process death or tier
        teardown wipes that node's share of shared RAM); returns count."""
        dropped = 0
        for segment in (self._probation, self._protected):
            doomed = [key for key in segment if key[0] == node_id]
            for key in doomed:
                del segment[key]
                dropped += 1
        return dropped
