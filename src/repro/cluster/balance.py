"""Cluster balance auditing: the Fig. 5 load-spread argument, quantified.

Mendel's two-tier placement makes a specific claim (sections IV-C, V-A.2,
evaluated in Fig. 5): tier 1 (the vp-prefix LSH) deliberately *skews*
blocks across groups — similar blocks must land together for routing to
prune work — while tier 2 (flat SHA-1 inside each group) spreads whatever
the group received near-uniformly over its nodes.  The system is balanced
where it matters (every node in a contacted group does comparable work)
without sacrificing locality where *that* matters (queries touch few
groups).

:class:`BalanceAuditor` measures both tiers on a live
:class:`~repro.core.index.MendelIndex`:

* per-node and per-group primary-block counts, with the coefficient of
  variation (CV) and Gini coefficient of each distribution;
* the mean *intra-group* CV — the flat-SHA-1 tier, expected near zero;
* tier-1 prefix-route mass — blocks per vp-prefix route, whose skew is
  the price of locality.

Reports are cached against ``index.version`` so repeated audits (metrics
scrapes, health probes) cost a dict lookup, not a re-hash of the store.
:meth:`BalanceAuditor.install` exposes the audit as collect-time gauges on
a :class:`~repro.obs.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.obs.metrics import FamilySnapshot, MetricsRegistry, Sample

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.index import MendelIndex


# -- statistics ------------------------------------------------------------------


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Population CV (stddev / mean); 0.0 for empty or zero-mean input."""
    if not values:
        return 0.0
    mean = sum(values) / len(values)
    if mean == 0:
        return 0.0
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return math.sqrt(variance) / mean


def gini(values: Sequence[float]) -> float:
    """Gini coefficient in [0, 1); 0.0 for empty or zero-sum input.

    Computed from the sorted form: ``sum_i (2i - n + 1) x_i / (n * sum x)``.
    0 is perfect equality; values approaching 1 mean one holder owns
    everything.
    """
    n = len(values)
    if n == 0:
        return 0.0
    total = sum(values)
    if total == 0:
        return 0.0
    ordered = sorted(values)
    weighted = sum((2 * i - n + 1) * v for i, v in enumerate(ordered))
    return weighted / (n * total)


# -- report ----------------------------------------------------------------------


@dataclass(frozen=True)
class BalanceReport:
    """One audit of the cluster's block distribution (both tiers).

    All counts are *primary* placements (replicas excluded), matching the
    Fig. 5 methodology: replication multiplies every node's load by the
    same factor, so it cancels out of every spread statistic.
    """

    #: ``index.version`` this audit reflects.
    index_version: int
    #: Total primary blocks placed.
    total_blocks: int
    #: node_id -> primary block count.
    per_node: dict[str, int] = field(default_factory=dict)
    #: group_id -> primary block count.
    per_group: dict[str, int] = field(default_factory=dict)
    #: vp-prefix (tier-1 route) -> block count.
    per_prefix: dict[int, int] = field(default_factory=dict)
    #: group_id -> CV of that group's per-node counts (tier-2 spread).
    intra_group_cv: dict[str, float] = field(default_factory=dict)

    # -- distribution-level statistics ------------------------------------------

    @property
    def node_cv(self) -> float:
        """CV of the global per-node distribution."""
        return coefficient_of_variation(list(self.per_node.values()))

    @property
    def node_gini(self) -> float:
        return gini(list(self.per_node.values()))

    @property
    def group_cv(self) -> float:
        """CV of the per-group distribution (tier-1 skew at group level)."""
        return coefficient_of_variation(list(self.per_group.values()))

    @property
    def group_gini(self) -> float:
        return gini(list(self.per_group.values()))

    @property
    def prefix_cv(self) -> float:
        """CV of blocks per tier-1 route — the locality/balance trade."""
        return coefficient_of_variation(list(self.per_prefix.values()))

    @property
    def mean_intra_group_cv(self) -> float:
        """Mean tier-2 (flat SHA-1) spread across groups; near 0 = Fig. 5."""
        if not self.intra_group_cv:
            return 0.0
        return sum(self.intra_group_cv.values()) / len(self.intra_group_cv)

    @property
    def max_load_fraction(self) -> float:
        """Largest share of all blocks held by any single node."""
        if not self.total_blocks or not self.per_node:
            return 0.0
        return max(self.per_node.values()) / self.total_blocks

    def to_dict(self) -> dict:
        """JSON-serialisable form (prefix keys become strings)."""
        return {
            "index_version": self.index_version,
            "total_blocks": self.total_blocks,
            "per_node": dict(sorted(self.per_node.items())),
            "per_group": dict(sorted(self.per_group.items())),
            "per_prefix": {
                str(prefix): count
                for prefix, count in sorted(self.per_prefix.items())
            },
            "intra_group_cv": {
                group: round(cv, 6)
                for group, cv in sorted(self.intra_group_cv.items())
            },
            "node_cv": round(self.node_cv, 6),
            "node_gini": round(self.node_gini, 6),
            "group_cv": round(self.group_cv, 6),
            "group_gini": round(self.group_gini, 6),
            "prefix_cv": round(self.prefix_cv, 6),
            "mean_intra_group_cv": round(self.mean_intra_group_cv, 6),
            "max_load_fraction": round(self.max_load_fraction, 6),
        }

    def summary(self) -> dict:
        """The scalar statistics alone (what health endpoints embed)."""
        return {
            "index_version": self.index_version,
            "total_blocks": self.total_blocks,
            "node_cv": round(self.node_cv, 6),
            "node_gini": round(self.node_gini, 6),
            "group_cv": round(self.group_cv, 6),
            "group_gini": round(self.group_gini, 6),
            "prefix_cv": round(self.prefix_cv, 6),
            "mean_intra_group_cv": round(self.mean_intra_group_cv, 6),
            "max_load_fraction": round(self.max_load_fraction, 6),
        }

    def render(self) -> str:
        """Human-readable audit table (``repro info --balance``)."""
        lines = [
            f"cluster balance (index version {self.index_version}, "
            f"{self.total_blocks} primary blocks)",
            "",
            f"  tier-1 group skew : CV {self.group_cv:.3f}, "
            f"Gini {self.group_gini:.3f} over {len(self.per_group)} group(s)",
            f"  tier-1 route skew : CV {self.prefix_cv:.3f} over "
            f"{len(self.per_prefix)} prefix route(s)",
            f"  tier-2 node spread: mean intra-group CV "
            f"{self.mean_intra_group_cv:.3f} (flat SHA-1)",
            f"  global node view  : CV {self.node_cv:.3f}, "
            f"Gini {self.node_gini:.3f}, max load fraction "
            f"{self.max_load_fraction:.3f}",
            "",
            f"  {'group':<8}{'blocks':>8}{'share':>9}{'intra CV':>10}  nodes",
        ]
        for group_id in sorted(self.per_group):
            count = self.per_group[group_id]
            share = count / self.total_blocks if self.total_blocks else 0.0
            members = {
                node_id: node_count
                for node_id, node_count in sorted(self.per_node.items())
                if node_id.startswith(f"{group_id}.")
            }
            spread = " ".join(
                f"{node_id.split('.')[-1]}={node_count}"
                for node_id, node_count in members.items()
            )
            lines.append(
                f"  {group_id:<8}{count:>8}{share:>8.1%}"
                f"{self.intra_group_cv.get(group_id, 0.0):>10.3f}  {spread}"
            )
        return "\n".join(lines)


# -- auditor ---------------------------------------------------------------------


def audit(index: "MendelIndex") -> BalanceReport:
    """One fresh (uncached) audit of *index*.

    Per-node counts come from primary placements (``index.node_of_block``);
    tier-1 route mass re-hashes every stored block through the shared
    prefix tree — O(blocks) metric evaluations, which is why callers should
    prefer :class:`BalanceAuditor` and its version-keyed cache.
    """
    per_node = {node.node_id: 0 for node in index.topology.nodes}
    per_group = {group.group_id: 0 for group in index.topology.groups}
    for node_id in index.node_of_block.values():
        per_node[node_id] = per_node.get(node_id, 0) + 1
        group_id = node_id.split(".")[0]
        per_group[group_id] = per_group.get(group_id, 0) + 1

    per_prefix: dict[int, int] = {}
    for block in index.store.blocks:
        prefix = index.prefix_tree.hash_one(
            index.store.codes_of(block.block_id)
        ).prefix
        per_prefix[prefix] = per_prefix.get(prefix, 0) + 1

    intra: dict[str, float] = {}
    for group in index.topology.groups:
        counts = [per_node.get(node.node_id, 0) for node in group.nodes]
        intra[group.group_id] = coefficient_of_variation(counts)

    return BalanceReport(
        index_version=index.version,
        total_blocks=len(index.node_of_block),
        per_node=per_node,
        per_group=per_group,
        per_prefix=per_prefix,
        intra_group_cv=intra,
    )


class BalanceAuditor:
    """Version-cached balance audits over one index, metrics-exposable.

    The audit re-hashes every block (tier-1 route attribution), so the
    auditor caches the :class:`BalanceReport` and recomputes only when
    ``index.version`` moves — inserts and scale-out invalidate, scrapes and
    health probes hit the cache.
    """

    def __init__(self, index: "MendelIndex") -> None:
        self.index = index
        self._cached: BalanceReport | None = None
        self._handle = None
        self._registry: MetricsRegistry | None = None
        self._installs = 0

    def report(self) -> BalanceReport:
        """The current audit, recomputed only when the index changed."""
        cached = self._cached
        if cached is None or cached.index_version != self.index.version:
            cached = audit(self.index)
            self._cached = cached
        return cached

    # -- metrics surface ---------------------------------------------------------

    def install(self, registry: MetricsRegistry) -> None:
        """Expose the audit as collect-time gauges on *registry*.

        Adds ``repro_balance_*`` summary gauges plus per-node and per-group
        block-count gauges; every scrape reflects the current index version
        at cache-hit cost.  Install/uninstall pairs are refcounted (several
        services may front one deployment); the callback is removed when
        the last installer uninstalls.
        """
        self._installs += 1
        if self._handle is not None:
            return
        self._registry = registry
        self._handle = registry.register_callback(self._collect)

    def uninstall(self) -> None:
        if self._installs:
            self._installs -= 1
        if self._installs:
            return
        if self._handle is not None and self._registry is not None:
            self._registry.unregister_callback(self._handle)
        self._handle = None
        self._registry = None

    def _collect(self) -> Iterable[FamilySnapshot]:
        report = self.report()
        summary_samples = [
            Sample("repro_balance_node_cv", (), report.node_cv),
            Sample("repro_balance_node_gini", (), report.node_gini),
            Sample("repro_balance_group_cv", (), report.group_cv),
            Sample("repro_balance_group_gini", (), report.group_gini),
            Sample("repro_balance_prefix_cv", (), report.prefix_cv),
            Sample(
                "repro_balance_intra_group_cv_mean",
                (),
                report.mean_intra_group_cv,
            ),
            Sample(
                "repro_balance_max_load_fraction",
                (),
                report.max_load_fraction,
            ),
        ]
        yield from (
            FamilySnapshot(
                name=sample.name,
                kind="gauge",
                help="Cluster balance audit statistic (see repro.cluster.balance)",
                samples=[sample],
            )
            for sample in summary_samples
        )
        yield FamilySnapshot(
            name="repro_balance_node_blocks",
            kind="gauge",
            help="Primary blocks held per storage node",
            samples=[
                Sample(
                    "repro_balance_node_blocks",
                    (("node", node_id),),
                    float(count),
                )
                for node_id, count in sorted(report.per_node.items())
            ],
        )
        yield FamilySnapshot(
            name="repro_balance_group_blocks",
            kind="gauge",
            help="Primary blocks held per storage group (tier-1 assignment)",
            samples=[
                Sample(
                    "repro_balance_group_blocks",
                    (("group", group_id),),
                    float(count),
                )
                for group_id, count in sorted(report.per_group.items())
            ],
        )
