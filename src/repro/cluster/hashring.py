"""Flat SHA-1 hashing and a consistent-hash ring (section IV-A / V-A.2).

Inside a storage group Mendel uses a "tried-and-true flat hashing scheme,
SHA-1" so load balance within a group is near perfect.  :class:`FlatHash`
implements exactly that (SHA-1 of the block bytes, modulo node count).

:class:`HashRing` additionally provides consistent hashing with virtual
nodes, which the DHT literature the paper builds on (Dynamo, Cassandra)
uses for incremental scalability; it backs the elasticity tests and the
standard-DHT comparison in the Fig. 5 load-balance benchmark.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass, field
from typing import Sequence


def sha1_int(data: bytes) -> int:
    """SHA-1 digest of *data* as a 160-bit integer."""
    return int.from_bytes(hashlib.sha1(data).digest(), "big")


@dataclass(frozen=True)
class FlatHash:
    """SHA-1 modulo-N placement over a fixed list of node ids."""

    node_ids: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.node_ids:
            raise ValueError("FlatHash requires at least one node")
        if len(set(self.node_ids)) != len(self.node_ids):
            raise ValueError("duplicate node ids")

    def assign(self, key: bytes) -> str:
        """Node id owning *key*."""
        return self.node_ids[sha1_int(key) % len(self.node_ids)]


class HashRing:
    """Consistent-hash ring with virtual nodes over SHA-1 key space.

    Each physical node is mapped to ``replicas`` points on the ring; a key is
    owned by the first ring point clockwise from its hash.  Adding or
    removing a node relocates only ``~1/N`` of the keys, which is the
    incremental-scalability property DHTs advertise.
    """

    def __init__(self, node_ids: Sequence[str] = (), replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = int(replicas)
        self._ring: list[tuple[int, str]] = []
        self._points: list[int] = []
        self._nodes: set[str] = set()
        for node_id in node_ids:
            self.add_node(node_id)

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def node_ids(self) -> tuple[str, ...]:
        return tuple(sorted(self._nodes))

    def add_node(self, node_id: str) -> None:
        if node_id in self._nodes:
            raise ValueError(f"node {node_id!r} already on ring")
        self._nodes.add(node_id)
        for replica in range(self.replicas):
            point = sha1_int(f"{node_id}#{replica}".encode())
            pos = bisect.bisect(self._points, point)
            self._points.insert(pos, point)
            self._ring.insert(pos, (point, node_id))

    def remove_node(self, node_id: str) -> None:
        if node_id not in self._nodes:
            raise KeyError(f"node {node_id!r} not on ring")
        self._nodes.remove(node_id)
        keep = [(p, n) for p, n in self._ring if n != node_id]
        self._ring = keep
        self._points = [p for p, _ in keep]

    def assign(self, key: bytes) -> str:
        """Node id owning *key* (first ring point clockwise from its hash)."""
        if not self._ring:
            raise ValueError("ring is empty")
        point = sha1_int(key)
        pos = bisect.bisect(self._points, point)
        if pos == len(self._points):
            pos = 0
        return self._ring[pos][1]
