"""Message types exchanged in the simulated cluster.

Each message estimates its own wire size so the network model can charge
serialisation cost.  Sizes are deliberately simple (structural bytes plus
payload bytes) — the network term is dominated by latency for the small
control messages and by payload size for block transfers, matching the LAN
behaviour of the paper's testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

_HEADER_BYTES = 64  # routing/envelope overhead per message


@dataclass(frozen=True)
class Message:
    """Base envelope: source/destination node ids."""

    src: str
    dst: str

    def payload_bytes(self) -> int:
        return 0

    def wire_bytes(self) -> int:
        return _HEADER_BYTES + self.payload_bytes()


@dataclass(frozen=True)
class StoreBlocks(Message):
    """Batch of inverted-index blocks shipped to their storage node."""

    block_ids: tuple[int, ...] = ()
    codes_bytes: int = 0

    def payload_bytes(self) -> int:
        return self.codes_bytes + 8 * len(self.block_ids)


@dataclass(frozen=True)
class SubQuery(Message):
    """One query window replicated to every node of a target group."""

    query_id: int = 0
    window_index: int = 0
    codes_bytes: int = 0

    def payload_bytes(self) -> int:
        return self.codes_bytes + 16


@dataclass(frozen=True)
class AnchorReport(Message):
    """Expanded anchors sent from a worker node to its group entry point."""

    query_id: int = 0
    anchor_count: int = 0
    anchor_bytes_each: int = 48

    def payload_bytes(self) -> int:
        return self.anchor_count * self.anchor_bytes_each


@dataclass(frozen=True)
class GroupReport(Message):
    """Merged group-level anchors sent to the system entry point."""

    query_id: int = 0
    anchor_count: int = 0
    anchor_bytes_each: int = 48

    def payload_bytes(self) -> int:
        return self.anchor_count * self.anchor_bytes_each


@dataclass(frozen=True)
class QueryResult(Message):
    """Final ranked alignments returned to the client."""

    query_id: int = 0
    alignment_count: int = 0
    alignment_bytes_each: int = 120

    def payload_bytes(self) -> int:
        return self.alignment_count * self.alignment_bytes_each


def codes_nbytes(codes: np.ndarray | Sequence[np.ndarray]) -> int:
    """Total byte size of one code array or a sequence of them."""
    if isinstance(codes, np.ndarray):
        return int(codes.nbytes)
    return int(sum(int(np.asarray(c).nbytes) for c in codes))
