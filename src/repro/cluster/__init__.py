"""Cluster substrate: SHA-1 hashing, storage nodes/groups, and the
two-tier zero-hop DHT topology."""

from repro.cluster.balance import (
    BalanceAuditor,
    BalanceReport,
    audit,
    coefficient_of_variation,
    gini,
)
from repro.cluster.group import StorageGroup
from repro.cluster.hashring import FlatHash, HashRing, sha1_int
from repro.cluster.messages import (
    AnchorReport,
    GroupReport,
    Message,
    QueryResult,
    StoreBlocks,
    SubQuery,
    codes_nbytes,
)
from repro.cluster.node import (
    HP_DL160,
    SUNFIRE_X4100,
    NodeProfile,
    NodeStats,
    StorageNode,
)
from repro.cluster.topology import ClusterSpec, ClusterTopology, build_prefix_assignment

__all__ = [
    "BalanceAuditor",
    "BalanceReport",
    "audit",
    "coefficient_of_variation",
    "gini",
    "StorageGroup",
    "FlatHash",
    "HashRing",
    "sha1_int",
    "AnchorReport",
    "GroupReport",
    "Message",
    "QueryResult",
    "StoreBlocks",
    "SubQuery",
    "codes_nbytes",
    "HP_DL160",
    "SUNFIRE_X4100",
    "NodeProfile",
    "NodeStats",
    "StorageNode",
    "ClusterSpec",
    "ClusterTopology",
    "build_prefix_assignment",
]
