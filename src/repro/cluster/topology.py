"""Two-tiered cluster topology (sections IV-C and V-A.2).

Mendel's network overlay is a zero-hop DHT with hierarchical partitioning:

* **tier 1** — a cluster-wide :class:`~repro.vptree.prefix.VPPrefixTree`
  hashes each block to a *prefix*; a prefix -> group assignment table sends
  similar blocks to the same :class:`~repro.cluster.group.StorageGroup`;
* **tier 2** — flat SHA-1 spreads blocks over the nodes inside the group.

The assignment table is built by enumerating the prefix-tree frontier
*in order* (adjacent frontier vertices are adjacent metric regions) and
cutting it into ``group_count`` contiguous runs of roughly equal sample
mass.  This keeps similar prefixes together (locality) while bounding
group-level skew — the behaviour evaluated in Fig. 5.

Every node knows the full table (zero-hop routing: requests go straight to
their destination with no overlay hops, as in Dynamo).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.cluster.group import StorageGroup
from repro.cluster.node import HP_DL160, SUNFIRE_X4100, NodeProfile, StorageNode
from repro.util.rng import RandomSource, as_generator
from repro.vptree.prefix import VPPrefixTree


@dataclass(frozen=True)
class ClusterSpec:
    """Shape of the simulated cluster.

    ``group_count * group_size`` nodes total; ``heterogeneous=True`` mirrors
    the paper's testbed by assigning alternating hardware classes.
    """

    group_count: int = 10
    group_size: int = 5
    heterogeneous: bool = True
    bucket_capacity: int = 32
    ring_placement: bool = False

    def __post_init__(self) -> None:
        if self.group_count < 1:
            raise ValueError(f"group_count must be >= 1, got {self.group_count}")
        if self.group_size < 1:
            raise ValueError(f"group_size must be >= 1, got {self.group_size}")
        if self.bucket_capacity < 1:
            raise ValueError(
                f"bucket_capacity must be >= 1, got {self.bucket_capacity}"
            )

    @property
    def node_count(self) -> int:
        return self.group_count * self.group_size


def build_prefix_assignment(
    prefix_tree: VPPrefixTree,
    sample: np.ndarray,
    group_ids: Sequence[str],
) -> dict[int, str]:
    """Cut the prefix frontier into contiguous runs of ~equal sample mass.

    Parameters
    ----------
    prefix_tree:
        The shared tier-1 LSH.
    sample:
        Representative block matrix used to estimate per-prefix mass.
    group_ids:
        Target groups, in order.

    Returns the prefix -> group id table.
    """
    group_ids = list(group_ids)
    if not group_ids:
        raise ValueError("need at least one group id")
    frontier = prefix_tree.all_prefixes()
    if len(frontier) < len(group_ids):
        # Fewer similarity regions than groups: cycle groups so every prefix
        # is owned; surplus groups receive no tier-1 region (they still store
        # nothing, which the caller may flag).
        return {p: group_ids[i % len(group_ids)] for i, p in enumerate(frontier)}

    counts = {prefix: 0 for prefix in frontier}
    for row in np.asarray(sample, dtype=np.uint8):
        counts[prefix_tree.hash_one(row).prefix] += 1
    total = max(1, sum(counts.values()))
    target = total / len(group_ids)

    assignment: dict[int, str] = {}
    group_index = 0
    mass = 0
    remaining_prefixes = len(frontier)
    for position, prefix in enumerate(frontier):
        assignment[prefix] = group_ids[group_index]
        mass += counts[prefix]
        remaining_prefixes -= 1
        remaining_groups = len(group_ids) - group_index - 1
        # Advance to the next group once this one has its share — but never
        # leave more groups than prefixes behind.
        if (
            group_index < len(group_ids) - 1
            and mass >= target
            and remaining_prefixes >= remaining_groups
        ):
            group_index += 1
            mass = 0
    return assignment


class ClusterTopology:
    """The full two-tier cluster: groups, nodes, and the routing tables."""

    def __init__(
        self,
        spec: ClusterSpec,
        prefix_tree: VPPrefixTree,
        sample: np.ndarray,
        metric_factory: Callable[[], Callable],
        segment_length: int,
        rng: RandomSource = None,
    ) -> None:
        self.spec = spec
        self.prefix_tree = prefix_tree
        gen = as_generator(rng)

        self.groups: list[StorageGroup] = []
        profiles = [HP_DL160, SUNFIRE_X4100]
        node_counter = 0
        for g in range(spec.group_count):
            group_id = f"g{g:02d}"
            nodes = []
            for n in range(spec.group_size):
                profile: NodeProfile = (
                    profiles[node_counter % 2] if spec.heterogeneous else HP_DL160
                )
                nodes.append(
                    StorageNode(
                        node_id=f"{group_id}.n{n}",
                        group_id=group_id,
                        metric_factory=metric_factory,
                        segment_length=segment_length,
                        profile=profile,
                        bucket_capacity=spec.bucket_capacity,
                        rng_seed=int(gen.integers(0, 2**31 - 1)),
                    )
                )
                node_counter += 1
            self.groups.append(
                StorageGroup(group_id=group_id, nodes=nodes,
                             use_ring=spec.ring_placement)
            )

        self._groups_by_id = {group.group_id: group for group in self.groups}
        self.prefix_assignment = build_prefix_assignment(
            prefix_tree, sample, [group.group_id for group in self.groups]
        )
        self._sorted_prefixes = sorted(self.prefix_assignment)

    # -- lookup ------------------------------------------------------------------

    def group(self, group_id: str) -> StorageGroup:
        return self._groups_by_id[group_id]

    @property
    def nodes(self) -> list[StorageNode]:
        return [node for group in self.groups for node in group.nodes]

    def group_for_prefix(self, prefix: int) -> StorageGroup:
        """Group owning *prefix*; unseen prefixes (possible only if the
        prefix tree is rebuilt) fall back to the nearest known prefix."""
        group_id = self.prefix_assignment.get(prefix)
        if group_id is None:
            nearest = min(self._sorted_prefixes, key=lambda p: abs(p - prefix))
            group_id = self.prefix_assignment[nearest]
        return self._groups_by_id[group_id]

    def prefixes_of(self, group_id: str) -> list[int]:
        """The prefixes assigned to *group_id*, in frontier (in-order)
        order — adjacent entries are adjacent metric regions, so a split
        that cuts this list stays contiguous."""
        if group_id not in self._groups_by_id:
            raise KeyError(f"no group {group_id!r}")
        return [
            prefix
            for prefix in self.prefix_tree.all_prefixes()
            if self.prefix_assignment.get(prefix) == group_id
        ]

    # -- elastic topology mutation -------------------------------------------

    def next_group_id(self) -> str:
        """The next unused ``gNN`` id (new groups from autoscaler splits)."""
        highest = max(int(g.group_id[1:]) for g in self.groups)
        return f"g{highest + 1:02d}"

    def add_group(self, group: StorageGroup) -> None:
        """Register a new (already built) group; it owns no prefixes until
        :meth:`reassign_prefixes` routes some to it."""
        if group.group_id in self._groups_by_id:
            raise ValueError(f"duplicate group id {group.group_id!r}")
        self.groups.append(group)
        self._groups_by_id[group.group_id] = group

    def remove_group(self, group_id: str) -> StorageGroup:
        """Drop a group from the topology.  Its prefixes must have been
        reassigned first (a prefix without an owner would break routing)."""
        group = self._groups_by_id.get(group_id)
        if group is None:
            raise KeyError(f"no group {group_id!r}")
        owned = [p for p, g in self.prefix_assignment.items() if g == group_id]
        if owned:
            raise ValueError(
                f"group {group_id!r} still owns prefixes {sorted(owned)}; "
                "reassign them before removal"
            )
        if len(self.groups) == 1:
            raise ValueError("cannot remove the last group")
        self.groups.remove(group)
        del self._groups_by_id[group_id]
        return group

    def reassign_prefixes(self, prefixes: Sequence[int], group_id: str) -> None:
        """Atomically route *prefixes* to *group_id* (the split/merge routing
        update).  New queries consult the updated table immediately; the
        caller moves the blocks."""
        if group_id not in self._groups_by_id:
            raise KeyError(f"no group {group_id!r}")
        for prefix in prefixes:
            self.prefix_assignment[prefix] = group_id
        self._sorted_prefixes = sorted(self.prefix_assignment)

    def retire_prefix(self, prefix: int, replacements: Sequence[int],
                      group_id: str) -> None:
        """Replace a refined *prefix* with its children in the routing table
        (both initially owned by *group_id*).  Pairs with
        :meth:`~repro.vptree.prefix.VPPrefixTree.refine`."""
        if group_id not in self._groups_by_id:
            raise KeyError(f"no group {group_id!r}")
        self.prefix_assignment.pop(prefix, None)
        for child in replacements:
            self.prefix_assignment[child] = group_id
        self._sorted_prefixes = sorted(self.prefix_assignment)

    # -- placement -----------------------------------------------------------------

    def place_block(self, codes: np.ndarray, block_key: bytes) -> StorageNode:
        """Tier-1 then tier-2 placement of one block."""
        prefix = self.prefix_tree.hash_one(np.asarray(codes, dtype=np.uint8)).prefix
        group = self.group_for_prefix(prefix)
        return group.place(block_key)

    def groups_for_query(
        self, codes: np.ndarray, tolerance: float
    ) -> list[StorageGroup]:
        """Groups that may hold neighbours of a query segment (tier-1
        traversal with branching tolerance; section V-B)."""
        hashes = self.prefix_tree.hash_query(
            np.asarray(codes, dtype=np.uint8), tolerance
        )
        seen: set[str] = set()
        result: list[StorageGroup] = []
        for item in hashes:
            group = self.group_for_prefix(item.prefix)
            if group.group_id not in seen:
                seen.add(group.group_id)
                result.append(group)
        return result

    # -- statistics -------------------------------------------------------------------

    def load_fractions(self) -> dict[str, float]:
        """Fraction of all stored blocks held by each node (Fig. 5 metric)."""
        total = sum(node.block_count for node in self.nodes)
        if total == 0:
            return {node.node_id: 0.0 for node in self.nodes}
        return {node.node_id: node.block_count / total for node in self.nodes}
