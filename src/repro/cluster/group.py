"""Storage groups: tier-2 of Mendel's hierarchical partitioning.

A group is a set of storage nodes that collectively hold one similarity
region of the key space (all blocks whose vp-prefix hash maps to the group).
Within the group, blocks are spread by flat SHA-1 (:class:`FlatHash`) so
that intra-group load is near uniform and every node is a useful worker for
any query routed to the group — the paper's argument for *not* using a
second vp-prefix tier (section V-A.2, ablated in
``benchmarks/test_ablation_tier2.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.hashring import FlatHash, HashRing
from repro.cluster.node import StorageNode
from repro.obs.metrics import default_registry


@dataclass
class StorageGroup:
    """A named set of nodes plus the intra-group placement hash.

    ``use_ring=True`` swaps the flat ``SHA-1 mod N`` placement for a
    consistent-hashing ring, so membership changes (the autoscaler's
    scale-out/scale-in) move only ~``1/N`` of the group's blocks instead
    of reshuffling almost all of them.  The default stays flat — the
    paper's evaluated configuration.
    """

    group_id: str
    nodes: list[StorageNode]
    use_ring: bool = False
    _flat: FlatHash | HashRing = field(init=False, repr=False)
    _by_id: dict[str, StorageNode] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError(f"group {self.group_id!r} must have at least one node")
        ids = tuple(node.node_id for node in self.nodes)
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate node ids in group {self.group_id!r}")
        for node in self.nodes:
            if node.group_id != self.group_id:
                raise ValueError(
                    f"node {node.node_id!r} belongs to group {node.group_id!r}, "
                    f"not {self.group_id!r}"
                )
        self._flat = self._make_placer(ids)
        self._by_id = {node.node_id: node for node in self.nodes}
        registry = default_registry()
        self._m_elections = registry.counter(
            "repro_coordinator_elections_total",
            "Query-coordinator selections performed by storage groups",
            ("group",),
        ).labels(group=self.group_id)
        self._m_failovers = registry.counter(
            "repro_coordinator_failovers_total",
            "Coordinator selections that skipped a dead first-choice node",
            ("group",),
        ).labels(group=self.group_id)

    def _make_placer(self, ids: tuple[str, ...]) -> FlatHash | HashRing:
        return HashRing(ids) if self.use_ring else FlatHash(ids)

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def node(self, node_id: str) -> StorageNode:
        return self._by_id[node_id]

    def add_node(self, node: StorageNode) -> None:
        """Grow the group by one member (elastic scale-out).

        Rebuilds the intra-group flat hash; the caller is responsible for
        redistributing blocks afterwards (see ``MendelIndex.add_node``).
        """
        if node.group_id != self.group_id:
            raise ValueError(
                f"node {node.node_id!r} belongs to group {node.group_id!r}, "
                f"not {self.group_id!r}"
            )
        if node.node_id in self._by_id:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        self.nodes.append(node)
        self._flat = self._make_placer(tuple(n.node_id for n in self.nodes))
        self._by_id[node.node_id] = node

    def remove_node(self, node_id: str) -> StorageNode:
        """Shrink the group by one member (elastic scale-in).

        Rebuilds the intra-group placement hash; the caller is responsible
        for draining the node's blocks to the survivors *first* (see
        ``MendelIndex.remove_node`` for the safe-drain orchestration).
        Removing the last member is refused — a group with assigned prefixes
        must stay addressable.
        """
        if node_id not in self._by_id:
            raise KeyError(f"no node {node_id!r} in group {self.group_id!r}")
        if len(self.nodes) == 1:
            raise ValueError(
                f"cannot remove the last node of group {self.group_id!r}"
            )
        node = self._by_id.pop(node_id)
        self.nodes.remove(node)
        self._flat = self._make_placer(tuple(n.node_id for n in self.nodes))
        return node

    def place(self, key: bytes) -> StorageNode:
        """Primary node for the block identified by *key* (flat SHA-1)."""
        return self._by_id[self._flat.assign(key)]

    def preference_list(self, key: bytes) -> list[StorageNode]:
        """All group nodes in replica-preference order for *key*: the flat
        primary first, then successors in group order (Dynamo's preference
        list restricted to the group).  Placement under failures walks this
        list skipping dead nodes, so any placement decision is recoverable
        from group membership plus the alive set."""
        primary = self.place(key)
        start = self.nodes.index(primary)
        return [self.nodes[(start + i) % len(self.nodes)] for i in range(len(self.nodes))]

    def place_replicas(self, key: bytes, count: int) -> list[StorageNode]:
        """Primary plus ``count - 1`` successor nodes for *key* (canonical
        placement, ignoring liveness)."""
        if not 1 <= count <= len(self.nodes):
            raise ValueError(
                f"replication count must be in 1..{len(self.nodes)}, got {count}"
            )
        return self.preference_list(key)[:count]

    def place_replicas_alive(
        self, key: bytes, count: int, is_alive=None
    ) -> list[StorageNode]:
        """The first ``count`` *alive* nodes in preference order for *key*
        (fewer if the group has fewer alive members).  *is_alive* overrides
        the liveness predicate — the failure detector passes its own view,
        which may disagree with ground truth."""
        if count < 1:
            raise ValueError(f"replication count must be >= 1, got {count}")
        is_alive = is_alive or (lambda node: node.alive)
        chosen = [node for node in self.preference_list(key) if is_alive(node)]
        return chosen[:count]

    @property
    def block_count(self) -> int:
        return sum(node.block_count for node in self.nodes)

    def entry_point(self) -> StorageNode:
        """The group's query coordinator.

        Mendel is symmetric — any node can coordinate; we use the first
        *alive* node deterministically so simulations replay identically and
        coordination survives node failures.
        """
        self._m_elections.inc()
        for position, node in enumerate(self.nodes):
            if node.alive:
                if position:
                    self._m_failovers.inc()
                return node
        self._m_failovers.inc()
        return self.nodes[0]  # all dead: routing still needs an address

    def alive_nodes(self) -> list[StorageNode]:
        return [node for node in self.nodes if node.alive]
