"""Storage nodes: the unit of the simulated cluster (section IV / VI-A.1).

A :class:`StorageNode` owns a local dynamic vp-tree over the inverted-index
blocks hashed to it, plus a simple service-time model calibrated by a
*speed factor* so the heterogeneous testbed of the paper (25 HP DL160 +
25 Sun SunFire X4100) can be mirrored: the slower half of the cluster gets a
lower speed factor and work takes proportionally longer in simulated time.

The time model charges per *logical distance evaluation* performed by the
node's vp-tree (counted by :class:`repro.vptree.metric.MetricAdapter`), so
simulated service times track the real algorithmic work done rather than a
fixed constant — this is what lets the evaluation figures reproduce shape
without a physical testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.obs.metrics import default_registry
from repro.store.disk import NodeDisk
from repro.store.durable import DurableNodeState
from repro.tier.cache import BlockCache
from repro.tier.store import NodeTier, TierConfig
from repro.util.validation import check_positive
from repro.vptree.dynamic import DynamicVPTree


@dataclass
class NodeProfile:
    """Hardware class of a node.

    ``seconds_per_eval`` is the base cost of one segment-distance evaluation
    on a reference machine; a node's effective cost is divided by its
    ``speed_factor``.
    """

    name: str = "reference"
    speed_factor: float = 1.0
    seconds_per_eval: float = 2e-6

    def __post_init__(self) -> None:
        check_positive("speed_factor", self.speed_factor)
        check_positive("seconds_per_eval", self.seconds_per_eval)


#: The two hardware classes of the paper's 50-node testbed.
HP_DL160 = NodeProfile(name="hp-dl160", speed_factor=1.0)
SUNFIRE_X4100 = NodeProfile(name="sunfire-x4100", speed_factor=0.6)


@dataclass
class NodeStats:
    blocks_stored: int = 0
    queries_served: int = 0
    evals_charged: int = 0
    busy_seconds: float = 0.0
    #: durability-layer counters (survive crashes: they describe what the
    #: experiment observed, not what the node's RAM held)
    blocks_recovered: int = 0
    recoveries: int = 0
    corrupt_reads: int = 0


class StorageNode:
    """One simulated storage node.

    Parameters
    ----------
    node_id:
        Cluster-unique identifier (``"g03.n1"`` style).
    group_id:
        Owning storage group.
    metric_factory:
        Zero-argument callable producing a fresh segment metric; each node
        gets its own :class:`MetricAdapter` so per-node work is countable.
    segment_length:
        Length of indexed inverted-index blocks.
    profile:
        Hardware class (service-time calibration).
    bucket_capacity:
        Leaf bucket size of the local vp-tree.
    """

    def __init__(
        self,
        node_id: str,
        group_id: str,
        metric_factory: Callable[[], Callable],
        segment_length: int,
        profile: NodeProfile = HP_DL160,
        bucket_capacity: int = 32,
        rng_seed: int = 0,
    ) -> None:
        self.node_id = node_id
        self.group_id = group_id
        self.profile = profile
        self.stats = NodeStats()
        #: failure-injection flag: dead nodes are skipped by query fan-out
        #: (fault-tolerance extension; paper section VII-B future work)
        self.alive = True
        #: failure-detector hint: heartbeats have been missed but the node is
        #: not yet declared dead (queries hedge against suspected nodes)
        self.suspected = False
        #: chaos-layer straggler injection: a temporary multiplier on the
        #: node's effective speed (< 1 slows the node down); composed with
        #: the hardware-class ``speed_factor``
        self.speed_multiplier = 1.0
        self.tree = DynamicVPTree(
            metric=metric_factory(),
            segment_length=segment_length,
            bucket_capacity=bucket_capacity,
            rng=rng_seed,
        )
        #: block ids stored locally, in insertion order
        self.block_ids: list[int] = []
        #: the node's local block device and its crash-consistent durable
        #: state (snapshot + WAL); survives :meth:`fail`, which only kills
        #: the in-RAM index
        self.disk = NodeDisk()
        self.durable = DurableNodeState(self.disk, node_id)
        #: set when a durable append went unacknowledged (torn write, full
        #: disk): the node serves from RAM but its WAL is behind
        self.durability_degraded = False
        #: replay report of the last :meth:`recover`, for introspection
        self.last_recovery: dict | None = None
        #: tier state when this node's blocks are spilled to disk (``None``
        #: while all-RAM); survives :meth:`fail` as a handle to the block
        #: file on :attr:`disk`, exactly like :attr:`durable`
        self.tier: NodeTier | None = None
        #: ``(cache, config)`` once the deployment attached tiering; kept
        #: across unspill/reset so maintenance flows can re-spill
        self._tier_attach: tuple[BlockCache, TierConfig] | None = None
        #: re-spill automatically after flows that must run in RAM
        #: (inserts, placement resets, quarantine repair)
        self.auto_respill = False
        #: cold-read accounting of the last :meth:`local_knn`
        #: (``{"seeks", "bytes", "seconds"}``), for span annotation
        self.last_io: dict | None = None
        # Observability: children resolved once so the per-search cost is a
        # lock-and-add, not a registry lookup.
        registry = default_registry()
        self._registry = registry
        # Node-labelled durability series are resolved through the family
        # (not cached children): a crash wipe purges them via
        # ``purge_labels`` and the next touch must re-create the series.
        self._g_durable = registry.gauge(
            "repro_node_durable_blocks",
            "Blocks durably recorded in each node's snapshot + WAL",
            ("node",),
        )
        self._c_wal = registry.counter(
            "repro_node_wal_records_total",
            "Acknowledged WAL records (inserts and drops) per node",
            ("node",),
        )
        self._c_unacked = registry.counter(
            "repro_node_wal_unacked_total",
            "Durable appends that failed acknowledgement per node",
            ("node",),
        )
        self._m_evals = registry.counter(
            "repro_distance_evaluations_total",
            "Logical segment-distance evaluations performed by local vp-trees",
            ("group",),
        ).labels(group=group_id)
        self._m_blocks = registry.counter(
            "repro_blocks_scanned_total",
            "Candidate index blocks returned by local k-NN searches",
            ("group",),
        ).labels(group=group_id)
        self._m_searches = registry.counter(
            "repro_node_searches_total",
            "Local k-NN searches served by storage nodes",
            ("group",),
        ).labels(group=group_id)

    # -- storage -------------------------------------------------------------

    def store_blocks(self, codes: np.ndarray, block_ids: list[int]) -> None:
        """Index a batch of blocks (rows of *codes*) in the local vp-tree
        and journal each insert to the node's write-ahead log.

        An insert is *acknowledged* only once its WAL record is fully on
        the device; appends a torn write or full disk refused leave the
        node serving from RAM with :attr:`durability_degraded` set (the
        cluster layer re-replicates the gap after a restart)."""
        if codes.ndim == 1:
            codes = codes[None, :]
        if codes.shape[0] != len(block_ids):
            raise ValueError(
                f"{codes.shape[0]} code rows vs {len(block_ids)} block ids"
            )
        # Inserts (and their rebuilds) run over the RAM matrix; a tiered
        # node folds back first and re-spills below, so repair streams,
        # quarantine rebuilds, and placement moves need no tier awareness.
        self.unspill()
        self.tree.insert_batch(codes, payloads=block_ids)
        self.block_ids.extend(block_ids)
        self.stats.blocks_stored += len(block_ids)
        acked = 0
        for row, block_id in enumerate(block_ids):
            if self.durable.append_insert(block_id, codes[row]):
                acked += 1
            else:
                self.durability_degraded = True
                self._c_unacked.labels(node=self.node_id).inc()
        if acked:
            self._c_wal.labels(node=self.node_id).inc(acked)
        self._g_durable.labels(node=self.node_id).set(
            float(self.durable.block_count)
        )
        if self.auto_respill and self._tier_attach is not None and self.alive:
            self.spill()

    def verify_block(self, block_id: int) -> bool:
        """Verified read gate: does this node's durable copy of *block_id*
        still match its acknowledged content digest?  ``True`` when no
        durable record exists (nothing to distrust — e.g. a block indexed
        during a degraded-durability window).  On a tiered node the block
        file holds the acknowledged digests and the read hits the device."""
        if self.durable_digest(block_id) is None:
            return True
        if self.durable_verify(block_id):
            return True
        self.stats.corrupt_reads += 1
        return False

    # -- tiered storage --------------------------------------------------------

    @property
    def tiered(self) -> bool:
        """Whether this node currently serves block codes from its tier."""
        return self.tier is not None and self.tier.active

    def attach_tier(
        self,
        cache: BlockCache,
        config: TierConfig,
        auto_respill: bool = True,
    ) -> None:
        """Adopt the deployment's shared block cache and tier policy.
        With *auto_respill*, flows that must fold the node back into RAM
        (inserts, quarantine repair, placement resets) re-spill on exit."""
        self._tier_attach = (cache, config)
        self.auto_respill = auto_respill

    def detach_tier(self) -> None:
        """Fold back to RAM and forget the tier policy entirely."""
        self.unspill()
        self._tier_attach = None
        self.auto_respill = False

    def spill(self) -> None:
        """Move this node's block codes into its on-disk block file.

        The vp-tree *structure* is untouched: vantage rows stay pinned in
        RAM, leaf buckets read through the shared cache, and every search
        returns byte-identical results — only service time gains the cold
        read charges.  The block file then carries the durable digests, so
        the snapshot + WAL are checkpointed away (the file *is* the
        durable state until :meth:`unspill` re-journals it)."""
        if self._tier_attach is None:
            raise RuntimeError(
                f"node {self.node_id!r} has no tier attached; call attach_tier"
            )
        if self.tiered:
            return
        cache, config = self._tier_attach
        tier = NodeTier(self, cache, config)
        tier.spill()
        if not tier.active:  # empty node: nothing to spill
            return
        self.tier = tier
        self.durable.reset()
        self.durability_degraded = False
        self._g_durable.labels(node=self.node_id).set(float(len(self.block_ids)))

    def unspill(self) -> None:
        """Fold the tier back into RAM: rebuild the codes matrix from the
        block file, re-journal it to the WAL (insertion order), and delete
        the file.  A no-op on all-RAM nodes."""
        tier = self.tier
        if tier is None or not tier.active:
            return
        codes = tier.materialize()
        self.tree._storage = codes
        self.tree.points = codes
        self.tier = None
        tier.discard()
        self.durable.reset()
        acked = 0
        for row, block_id in enumerate(self.block_ids):
            if self.durable.append_insert(block_id, codes[row]):
                acked += 1
            else:
                self.durability_degraded = True
                self._c_unacked.labels(node=self.node_id).inc()
        if acked:
            self._c_wal.labels(node=self.node_id).inc(acked)
        self._g_durable.labels(node=self.node_id).set(
            float(self.durable.block_count)
        )

    def tier_occupancy(self) -> dict | None:
        """Tier occupancy report, or ``None`` while all-RAM."""
        return self.tier.occupancy() if self.tiered else None

    # -- durable-state dispatch ------------------------------------------------
    # A spilled node's durable state lives in its block file; otherwise the
    # snapshot + WAL answer.  The scrubber and repair planner go through
    # these so they audit whichever medium currently holds the bytes.

    def durable_manifest_ids(self) -> list[int]:
        if self.tier is not None and self.tier.has_file():
            return self.tier.manifest_ids()
        return self.durable.manifest_ids()

    def durable_digest(self, block_id: int) -> int | None:
        if self.tier is not None and self.tier.has_file():
            return self.tier.digest(block_id)
        return self.durable.digest(block_id)

    def durable_verify(self, block_id: int) -> bool:
        if self.tier is not None and self.tier.has_file():
            return self.tier.verify(block_id)
        return self.durable.verify(block_id)

    # -- local search with time accounting ------------------------------------

    def local_knn(
        self,
        query_codes: np.ndarray,
        k: int,
        max_radius: float = float("inf"),
    ) -> tuple[list, float]:
        """k-NN over the local tree; returns ``(hits, service_seconds)``.

        ``hits`` are ``(distance, block_id)`` pairs; ``service_seconds`` is
        the modelled node-local compute time for the search.  ``max_radius``
        bounds the search ball (the query pipeline passes the largest
        distance its identity filter could accept).
        """
        before = self.tree.adapter.pair_evaluations
        hits = (
            self.tree.knn(query_codes, k, max_radius=max_radius)
            if len(self.tree)
            else []
        )
        evals = self.tree.adapter.pair_evaluations - before
        seconds = self.service_time(evals)
        self.last_io = None
        if self.tiered:
            # Cold page fetches accumulated during traversal are charged as
            # device time (seek + transfer), not scaled by CPU speed.
            seeks, nbytes = self.tier.drain_io()
            if seeks or nbytes:
                io_seconds = self.tier.io_seconds(seeks, nbytes)
                seconds += io_seconds
                self.last_io = {
                    "seeks": seeks,
                    "bytes": nbytes,
                    "seconds": io_seconds,
                }
        self.stats.queries_served += 1
        self.stats.evals_charged += evals
        self.stats.busy_seconds += seconds
        self._m_searches.inc()
        if evals:
            self._m_evals.inc(evals)
        if hits:
            self._m_blocks.inc(len(hits))
        return hits, seconds

    def service_time(self, evals: int, overhead_evals: int = 50) -> float:
        """Simulated seconds to perform *evals* distance evaluations
        (plus a fixed request-handling overhead) on this hardware class."""
        total = evals + overhead_evals
        return total * self.profile.seconds_per_eval / self._effective_speed()

    def service_time_ops(self, residue_ops: float) -> float:
        """Simulated seconds for *residue_ops* elementary residue operations
        (one segment-distance evaluation costs ``segment_length`` of them);
        used to charge extension and aggregation work."""
        per_residue = self.profile.seconds_per_eval / max(1, self.tree.segment_length)
        return residue_ops * per_residue / self._effective_speed()

    def _effective_speed(self) -> float:
        return self.profile.speed_factor * self.speed_multiplier

    def reset_storage(self) -> None:
        """Drop all locally indexed blocks — RAM index *and* durable state
        (used when the group reshuffles placement after membership changes;
        the caller re-stores the canonical set, re-journalling it)."""
        if self.tier is not None:
            tier, self.tier = self.tier, None
            tier.discard()
        self._wipe_ram()
        self.durable.reset()
        self.durability_degraded = False
        self._g_durable.labels(node=self.node_id).set(0.0)

    def _wipe_ram(self) -> None:
        """Fresh empty vp-tree; durable state untouched."""
        metric = self.tree.adapter.metric
        self.tree = DynamicVPTree(
            metric=metric,
            segment_length=self.tree.segment_length,
            bucket_capacity=self.tree.bucket_capacity,
            rng=0,
        )
        self.block_ids = []

    def fail(self) -> None:
        """Crash-stop the node: the process (and with it every in-RAM
        structure) is gone; only :attr:`disk` survives.  The node's
        labelled metric series are purged — a restarted process starts
        its gauges from what durable state says, not from stale RAM."""
        self.alive = False
        self.suspected = False
        if self.tier is not None:
            # The process's share of the shared cache dies with its RAM,
            # but the block file stays on disk — the tier object survives
            # as a handle to it, exactly like ``self.durable``.
            self.tier.detach()
        self._wipe_ram()
        self._registry.purge_labels(node=self.node_id)

    def recover(self) -> None:
        """Restart a crashed node strictly from its durable state.

        RAM was wiped by :meth:`fail`; the local index is rebuilt by
        replaying the snapshot + WAL (torn tails truncated, the last
        replay's report kept in :attr:`last_recovery`).  The replayed
        placement may be *stale*: if re-replication moved this node's
        blocks to successors while it was down, rejoining with the old
        placement leaves blocks over-replicated (and misses blocks indexed
        during the outage).  Callers that manage placement should prefer
        :meth:`repro.core.index.MendelIndex.recover_node`, which rejoins
        *and* reconciles the group back to canonical placement.
        """
        self.alive = True
        self.suspected = False
        self.restore_speed()
        rep = self.durable.replay()
        self._wipe_ram()
        if rep.codes is not None and len(rep.block_ids):
            self.tree.insert_batch(rep.codes, payloads=rep.block_ids)
            self.block_ids = list(rep.block_ids)
        tier_restored = 0
        if self.tier is not None and self.tier.has_file():
            # The node crashed while spilled: its block file *is* the
            # durable state.  Parse it fresh from the device, fold the
            # rows into RAM + WAL, then (optionally) re-spill.
            codes, tier_ids = self.tier.file_contents()
            known = set(self.block_ids)
            keep = [i for i, b in enumerate(tier_ids) if b not in known]
            if keep:
                self.tree.insert_batch(
                    codes[keep], payloads=[tier_ids[i] for i in keep]
                )
                self.block_ids.extend(tier_ids[i] for i in keep)
                acked = 0
                for i in keep:
                    if self.durable.append_insert(tier_ids[i], codes[i]):
                        acked += 1
                    else:
                        self.durability_degraded = True
                        self._c_unacked.labels(node=self.node_id).inc()
                if acked:
                    self._c_wal.labels(node=self.node_id).inc(acked)
                tier_restored = len(keep)
            tier, self.tier = self.tier, None
            tier.discard()
            if self.auto_respill and self._tier_attach is not None:
                self.spill()
        self.last_recovery = rep.to_dict()
        self.last_recovery["tier_blocks"] = tier_restored
        self.stats.recoveries += 1
        self.stats.blocks_recovered += len(rep.block_ids) + tier_restored
        if not self.tiered:
            self._g_durable.labels(node=self.node_id).set(
                float(self.durable.block_count)
            )

    def flush_durable(self) -> bool:
        """Checkpoint the WAL into the snapshot (drain/decommission path);
        returns ``False`` when the device refused the write."""
        return self.durable.checkpoint()

    def slow_down(self, multiplier: float) -> None:
        """Straggler injection: scale this node's effective speed by
        *multiplier* (< 1 slows it down) until :meth:`restore_speed`."""
        check_positive("multiplier", multiplier)
        self.speed_multiplier = multiplier

    def restore_speed(self) -> None:
        self.speed_multiplier = 1.0

    @property
    def block_count(self) -> int:
        return len(self.block_ids)

    @property
    def known_block_ids(self) -> list[int]:
        """Placement records for repair planning: live RAM contents while
        the node is up; the durable manifest once it has crashed (a dead
        process answers nothing, but its disk still says what it held)."""
        if self.alive:
            return self.block_ids
        return self.durable_manifest_ids()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StorageNode({self.node_id!r}, group={self.group_id!r}, "
            f"blocks={self.block_count}, profile={self.profile.name})"
        )
