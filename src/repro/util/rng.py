"""Deterministic random-number plumbing.

Every stochastic component in the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None`` and normalises it through
:func:`as_generator`.  Distributed components that need per-node independent
streams use :func:`spawn_children`, which derives child generators with
``numpy``'s ``SeedSequence.spawn`` so that streams never overlap regardless of
how many nodes the simulated cluster has.
"""

from __future__ import annotations

from typing import Union

import numpy as np

RandomSource = Union[int, np.random.Generator, None]


def as_generator(source: RandomSource = None) -> np.random.Generator:
    """Normalise *source* into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    source:
        ``None`` (fresh OS-entropy generator), an ``int`` seed, or an
        existing generator which is returned unchanged.
    """
    if source is None:
        return np.random.default_rng()
    if isinstance(source, np.random.Generator):
        return source
    if isinstance(source, (int, np.integer)):
        return np.random.default_rng(int(source))
    raise TypeError(
        f"random source must be None, int, or numpy Generator, got {type(source)!r}"
    )


def spawn_children(source: RandomSource, count: int) -> list[np.random.Generator]:
    """Derive *count* statistically independent child generators.

    Children are derived through ``SeedSequence.spawn`` so per-node streams in
    the simulated cluster are reproducible and non-overlapping.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = as_generator(source)
    # Use the parent stream itself to derive a root seed so that repeated
    # spawns from the same generator yield different (but deterministic)
    # families of children.
    root = np.random.SeedSequence(int(parent.integers(0, 2**63 - 1)))
    return [np.random.default_rng(child) for child in root.spawn(count)]
