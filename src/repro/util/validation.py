"""Small argument-validation helpers shared across the library.

These exist so that public API entry points fail fast with uniform, readable
error messages instead of propagating cryptic numpy errors from deep inside a
kernel.
"""

from __future__ import annotations

from typing import Any


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_non_negative(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value >= 0``."""
    if not value >= 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def check_fraction(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value!r}")


def check_in_range(name: str, value: float, low: float, high: float) -> None:
    """Raise ``ValueError`` unless ``low <= value <= high``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be within [{low}, {high}], got {value!r}")


def check_type(name: str, value: Any, expected: type | tuple[type, ...]) -> None:
    """Raise ``TypeError`` unless ``isinstance(value, expected)``."""
    if not isinstance(value, expected):
        raise TypeError(f"{name} must be {expected}, got {type(value)!r}")
