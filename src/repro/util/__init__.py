"""Shared utilities: seeded RNG helpers, timing, and argument validation."""

from repro.util.rng import RandomSource, as_generator, spawn_children
from repro.util.timing import Stopwatch, format_duration
from repro.util.validation import (
    check_fraction,
    check_in_range,
    check_non_negative,
    check_positive,
    check_type,
)

__all__ = [
    "RandomSource",
    "as_generator",
    "spawn_children",
    "Stopwatch",
    "format_duration",
    "check_fraction",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_type",
]
