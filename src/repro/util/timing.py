"""Wall-clock measurement helpers used by the benchmark harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Stopwatch:
    """Accumulating stopwatch.

    Usage::

        sw = Stopwatch()
        with sw:
            do_work()
        print(sw.elapsed)

    Multiple ``with`` blocks accumulate into :attr:`elapsed`; ``laps`` records
    each individual measurement.
    """

    elapsed: float = 0.0
    laps: list[float] = field(default_factory=list)
    _start: float | None = None

    def start(self) -> None:
        if self._start is not None:
            raise RuntimeError("stopwatch already running")
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("stopwatch not running")
        lap = time.perf_counter() - self._start
        self._start = None
        self.elapsed += lap
        self.laps.append(lap)
        return lap

    def reset(self) -> None:
        self.elapsed = 0.0
        self.laps.clear()
        self._start = None

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def mean_lap(self) -> float:
        if not self.laps:
            raise ValueError("no laps recorded")
        return self.elapsed / len(self.laps)


def format_duration(seconds: float) -> str:
    """Render *seconds* in a human-friendly unit (ns/us/ms/s/min)."""
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    if seconds < 1e-6:
        return f"{seconds * 1e9:.1f} ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    return f"{seconds / 60.0:.1f} min"
