"""Wall-clock measurement helpers (compatibility shim).

The actual timing primitive lives in :mod:`repro.obs.timer` now, so the
benchmark harness's :class:`Stopwatch`, the serving layer's latency
accounting, and the trace layer's span timer all read one clock.  This
module re-exports it for existing imports.
"""

from __future__ import annotations

from repro.obs.timer import Stopwatch, format_duration, wall_clock

__all__ = ["Stopwatch", "format_duration", "wall_clock"]
