"""Anti-entropy integrity scrubbing: find bit rot before queries do.

The scrubber walks storage groups on a background cadence and, for every
block a group holds, compares the **content digests** of its replica copies
(recorded at write-acknowledgement time by
:class:`~repro.store.durable.DurableNodeState`):

* a replica whose stored payload no longer matches its own digest fails
  *self-verification* — classic silent bit rot;
* replicas that self-verify but disagree with the digest majority are
  flagged as *divergent* (metadata rot); the strict minority is treated as
  corrupt, an exact tie is reported but never auto-healed (there is no
  verified majority to heal **from**).

Every confirmed-corrupt copy is **quarantined** — dropped from the holding
node's RAM index and durable manifest — which makes the existing
:class:`~repro.faults.repair.ReReplicator` plan a stream of that block from
a verified replica on the next repair round: healing deliberately reuses
the one battle-tested replication path instead of growing a second one.

Observability: every replica check feeds the ``integrity`` SLI (so the
``integrity`` SLO burns and pages on corruption), each finding emits a
``corruption_detected`` event and each completed heal a ``scrub_heal``
event into the shared log, closing the corrupt → detect → repair → resolve
chain for alert cause-correlation.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.obs.events import EventLog
from repro.obs.metrics import default_registry

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a cluster cycle)
    from repro.cluster.group import StorageGroup
    from repro.cluster.node import StorageNode


@dataclass(frozen=True)
class ScrubFinding:
    """One corrupt (or divergent) replica copy found by a scrub pass."""

    group_id: str
    node_id: str
    block_id: int
    reason: str  # "digest_mismatch" | "divergent_minority" | "divergent_tie"
    healable: bool = True

    def to_dict(self) -> dict:
        return {
            "group": self.group_id,
            "node": self.node_id,
            "block": self.block_id,
            "reason": self.reason,
            "healable": self.healable,
        }


@dataclass
class ScrubReport:
    """Accumulated scrub outcomes (one pass or a whole run)."""

    passes: int = 0
    groups_scrubbed: int = 0
    blocks_checked: int = 0
    replicas_checked: int = 0
    mismatches: int = 0
    quarantined: int = 0
    heals_requested: int = 0
    findings: list[ScrubFinding] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "passes": self.passes,
            "groups_scrubbed": self.groups_scrubbed,
            "blocks_checked": self.blocks_checked,
            "replicas_checked": self.replicas_checked,
            "mismatches": self.mismatches,
            "quarantined": self.quarantined,
            "heals_requested": self.heals_requested,
            "findings": [f.to_dict() for f in self.findings],
        }


class IntegrityScrubber:
    """Digest-compares replicas group by group; quarantines what rotted.

    Parameters
    ----------
    index:
        The deployment to scrub.
    is_alive:
        Liveness view for replica selection; defaults to ground truth.
        The chaos controller passes the failure detector's view so an
        unreachable node is never misread as corrupt.
    event_log / recorder / registry:
        Observability sinks: ``corruption_detected`` / ``scrub_heal``
        events, the ``integrity`` SLI, and scrub counters.
    heal:
        Called with ``(group, findings)`` after quarantining to schedule
        re-replication.  The chaos controller chains it onto the group's
        repair tail; wall-clock callers pass an immediate sync.  ``None``
        detects without healing (audit mode).
    """

    def __init__(
        self,
        index,
        is_alive: Callable[[StorageNode], bool] | None = None,
        event_log: EventLog | None = None,
        recorder=None,
        registry=None,
        heal: Callable[[StorageGroup, list[ScrubFinding]], None] | None = None,
    ) -> None:
        self.index = index
        self.is_alive = is_alive or (lambda node: node.alive)
        self.events = event_log
        self.recorder = recorder
        self.heal = heal
        self.report = ScrubReport()
        self._cursor = 0
        registry = registry if registry is not None else default_registry()
        self._m_passes = registry.counter(
            "repro_scrub_passes_total", "Scrub passes completed over groups"
        )
        self._m_checked = registry.counter(
            "repro_scrub_replicas_checked_total",
            "Replica copies digest-verified by the scrubber",
            ("group",),
        )
        self._m_corrupt = registry.counter(
            "repro_scrub_corruptions_total",
            "Corrupt replica copies detected by digest comparison",
            ("group",),
        )
        self._m_heals = registry.counter(
            "repro_scrub_heals_total",
            "Scrub-initiated re-replication heals requested",
            ("group",),
        )

    # -- one pass --------------------------------------------------------------

    def scrub_group(self, group: StorageGroup,
                    now: float | None = None) -> list[ScrubFinding]:
        """Digest-verify every replica copy the group's alive members hold;
        quarantine confirmed-corrupt copies and request their heal."""
        alive = [n for n in group.nodes if n.alive and self.is_alive(n)]
        block_holders: dict[int, list[StorageNode]] = {}
        for node in alive:
            for block_id in node.durable_manifest_ids():
                block_holders.setdefault(block_id, []).append(node)

        findings: list[ScrubFinding] = []
        checked = 0
        for block_id in sorted(block_holders):
            holders = block_holders[block_id]
            self.report.blocks_checked += 1
            self_ok: dict[str, bool] = {}
            digests: dict[str, int | None] = {}
            for node in holders:
                checked += 1
                self_ok[node.node_id] = node.durable_verify(block_id)
                digests[node.node_id] = node.durable_digest(block_id)
            for node in holders:
                if not self_ok[node.node_id]:
                    findings.append(ScrubFinding(
                        group_id=group.group_id, node_id=node.node_id,
                        block_id=block_id, reason="digest_mismatch",
                    ))
            # Cross-replica comparison among self-consistent copies: a copy
            # whose digest lost the vote carries rotted *metadata*.
            votes = TallyCounter(
                digests[n.node_id] for n in holders if self_ok[n.node_id]
            )
            if len(votes) > 1:
                top = votes.most_common()
                majority, majority_count = top[0]
                tie = majority_count == top[1][1]
                for node in holders:
                    if not self_ok[node.node_id]:
                        continue
                    if digests[node.node_id] != majority or tie:
                        findings.append(ScrubFinding(
                            group_id=group.group_id, node_id=node.node_id,
                            block_id=block_id,
                            reason="divergent_tie" if tie
                            else "divergent_minority",
                            healable=not tie,
                        ))

        self.report.groups_scrubbed += 1
        self.report.replicas_checked += checked
        self._m_checked.labels(group=group.group_id).inc(checked)
        good_checks = checked - len(findings)
        if self.recorder is not None and now is not None and checked:
            for _ in range(good_checks):
                self.recorder.observe("integrity", now, 1.0, good=True)
            for _ in range(len(findings)):
                self.recorder.observe("integrity", now, 0.0, good=False)

        if findings:
            self.report.mismatches += len(findings)
            self.report.findings.extend(findings)
            self._m_corrupt.labels(group=group.group_id).inc(len(findings))
            self._quarantine(group, findings, now)
        return findings

    def scrub_all(self, now: float | None = None) -> list[ScrubFinding]:
        """One full pass over every group (the wall-clock SCRUB verb)."""
        findings: list[ScrubFinding] = []
        for group in self.index.topology.groups:
            findings.extend(self.scrub_group(group, now=now))
        self.report.passes += 1
        self._m_passes.inc()
        return findings

    # -- cadenced scrubbing ----------------------------------------------------

    def scrub_proc(self, sim, interval: float, stop_at: float):
        """Generator process: scrub one group per *interval*, round-robin,
        terminating before *stop_at* so the simulation heap drains."""
        while sim.now + interval <= stop_at:
            yield interval
            groups = self.index.topology.groups
            if not groups:
                continue
            group = groups[self._cursor % len(groups)]
            self._cursor += 1
            self.scrub_group(group, now=sim.now)
            if self._cursor % max(1, len(groups)) == 0:
                self.report.passes += 1
                self._m_passes.inc()

    # -- quarantine + heal -----------------------------------------------------

    def _quarantine(self, group: StorageGroup, findings: list[ScrubFinding],
                    now: float | None) -> None:
        per_node: dict[str, set[int]] = {}
        for finding in findings:
            if self.events is not None:
                self.events.emit(
                    "corruption_detected", finding.node_id,
                    f"block {finding.block_id} on {finding.node_id}: "
                    f"{finding.reason}",
                    sim_time=now,
                    group=finding.group_id, block=finding.block_id,
                    reason=finding.reason,
                )
            if finding.healable:
                per_node.setdefault(finding.node_id, set()).add(
                    finding.block_id
                )
        for node_id in sorted(per_node):
            node = group.node(node_id)
            corrupt = per_node[node_id]
            keep = [b for b in node.block_ids if b not in corrupt]
            # Rebuild without the rotted copies: RAM and the durable
            # manifest both forget them, so the next repair plan streams
            # the block back from a replica that still verifies.
            node.reset_storage()
            if keep:
                node.store_blocks(self.index.store.codes_matrix(keep), keep)
            self.report.quarantined += len(corrupt)
        if per_node and self.heal is not None:
            self.report.heals_requested += 1
            self._m_heals.labels(group=group.group_id).inc()
            healable = [f for f in findings if f.healable]
            self.heal(group, healable)
