"""A deterministic per-node block device with a realistic fault surface.

Every :class:`~repro.cluster.node.StorageNode` owns one :class:`NodeDisk`
holding its durable files (snapshot + write-ahead log).  The device is a
plain in-memory byte store — simulated clusters create and destroy hundreds
of nodes per test run, so real temp directories would dominate runtime and
leak on crash-path tests — but it models exactly the failure semantics the
durability layer has to survive:

* **atomic replace** (:meth:`write_atomic`): the tmp+rename idiom — either
  the old contents or the complete new contents, never a prefix;
* **torn appends** (:meth:`tear_next_append`): a power cut mid-``write(2)``
  persists only a prefix of the record, which replay must truncate away;
* **disk full** (:attr:`full`): appends and snapshots fail cleanly with
  :class:`DiskFullError` and nothing is persisted;
* **bit rot** (:meth:`flip_bit`): silent single-bit corruption that no
  write-path error ever reported — only digest verification can catch it.

``generation`` increments on every mutation so readers can cache
materialised views and invalidate them precisely.
"""

from __future__ import annotations


class StoreError(Exception):
    """Base class for durable-storage failures."""


class DiskFullError(StoreError):
    """The device refused a write: no space (nothing was persisted)."""


class TornWriteError(StoreError):
    """An append was cut mid-write: only a prefix of the data persisted."""


class NodeDisk:
    """In-memory byte device for one node's durable files.

    Parameters
    ----------
    capacity:
        Optional byte budget over all files; writes that would exceed it
        raise :class:`DiskFullError` (in addition to the explicit
        :attr:`full` fault flag chaos injects).
    """

    def __init__(self, capacity: int | None = None) -> None:
        self._files: dict[str, bytearray] = {}
        self.capacity = capacity
        #: fault flag: every write fails with :class:`DiskFullError`
        self.full = False
        self._tear_next = False
        #: bumped on every mutation (writes, truncations, bit flips)
        self.generation = 0
        #: observability counters
        self.writes_failed = 0
        self.appends_torn = 0
        self.bits_flipped = 0

    # -- fault injection -------------------------------------------------------

    def tear_next_append(self) -> None:
        """Arm a one-shot torn write: the next append persists only a
        prefix and raises :class:`TornWriteError`."""
        self._tear_next = True

    def flip_bit(self, name: str, byte_offset: int, bit: int = 0) -> None:
        """Silently flip one bit of *name* (bit rot; no error raised)."""
        data = self._files[name]
        if not 0 <= byte_offset < len(data):
            raise IndexError(
                f"offset {byte_offset} outside {name!r} ({len(data)} bytes)"
            )
        data[byte_offset] ^= 1 << (bit % 8)
        self.bits_flipped += 1
        self.generation += 1

    # -- writes ----------------------------------------------------------------

    def _check_space(self, extra: int) -> None:
        if self.full:
            self.writes_failed += 1
            raise DiskFullError("device reports no space")
        if self.capacity is not None:
            used = sum(len(data) for data in self._files.values())
            if used + extra > self.capacity:
                self.writes_failed += 1
                raise DiskFullError(
                    f"write of {extra} bytes exceeds capacity {self.capacity}"
                )

    def write_atomic(self, name: str, data: bytes) -> None:
        """Replace *name* atomically (tmp + rename): on any failure the old
        contents survive untouched."""
        self._check_space(len(data))
        if self._tear_next:
            # The tmp file tore before the rename: old contents intact.
            self._tear_next = False
            self.appends_torn += 1
            raise TornWriteError(f"atomic replace of {name!r} torn before rename")
        self._files[name] = bytearray(data)
        self.generation += 1

    def append(self, name: str, data: bytes) -> None:
        """Append *data* to *name* (creating it).  A torn append persists a
        prefix and raises; a full disk persists nothing and raises."""
        self._check_space(len(data))
        buf = self._files.setdefault(name, bytearray())
        if self._tear_next:
            self._tear_next = False
            self.appends_torn += 1
            buf.extend(data[: len(data) // 2])
            self.generation += 1
            raise TornWriteError(f"append to {name!r} torn mid-write")
        buf.extend(data)
        self.generation += 1

    def truncate(self, name: str, size: int) -> None:
        """Shrink *name* to *size* bytes (replay's torn-tail cleanup)."""
        data = self._files.get(name)
        if data is not None and len(data) > size:
            del data[size:]
            self.generation += 1

    def delete(self, name: str) -> None:
        if self._files.pop(name, None) is not None:
            self.generation += 1

    # -- reads -----------------------------------------------------------------

    def read(self, name: str) -> bytes:
        data = self._files.get(name)
        if data is None:
            raise FileNotFoundError(name)
        return bytes(data)

    def read_span(self, name: str, offset: int, length: int) -> bytes:
        """A byte range of *name* without copying the whole file (the
        verified-read hot path checks one block's extent per candidate)."""
        data = self._files.get(name)
        if data is None:
            raise FileNotFoundError(name)
        return bytes(data[offset: offset + length])

    def exists(self, name: str) -> bool:
        return name in self._files

    def size(self, name: str) -> int:
        data = self._files.get(name)
        return 0 if data is None else len(data)

    def files(self) -> list[str]:
        return sorted(self._files)

    @property
    def used_bytes(self) -> int:
        return sum(len(data) for data in self._files.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NodeDisk(files={len(self._files)}, used={self.used_bytes}, "
            f"full={self.full})"
        )
