"""Crash-consistent durable state for one storage node: snapshot + WAL.

The durable representation of a node's holdings lives on its
:class:`~repro.store.disk.NodeDisk` as two files:

``snapshot``
    A checksummed, format-versioned image of the full block set at the last
    checkpoint: magic ``MSNP``, a format version, a whole-body CRC32, then
    ``(block_id, content digest, codes)`` entries in insertion order.
    Written with :meth:`NodeDisk.write_atomic` (tmp + rename), so a crash
    mid-checkpoint leaves the previous snapshot intact.

``wal``
    An append-only log of everything since that checkpoint.  Each record is
    framed ``[u32 length][u32 crc32(payload)][payload]``; the payload is an
    insert (op, block id, content digest, codes) or a drop (op, block id).
    Replay truncates a torn tail — an incomplete frame, or a CRC-failing
    *final* record — exactly as journalled filesystems do; a CRC failure in
    the *middle* of the log is bit rot, not a torn write, so the record is
    applied anyway and counted (content-digest verification flags the block
    at scrub or read time).

The **content digest** (CRC32 of the codes) is computed once, when the
insert is acknowledged, and carried verbatim through checkpoints — a
checkpoint must not re-certify bytes it merely copied.  Silent corruption
is therefore always detectable as ``crc32(payload) != digest`` no matter
how many snapshot cycles it survived.

Acknowledgement contract: :meth:`append_insert` / :meth:`append_drop`
return ``True`` only once the record is fully on the device.  A torn or
refused write returns ``False`` and the caller must treat the operation as
not durable (the cluster layer re-replicates from peers after restart).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.store.disk import NodeDisk, StoreError

SNAPSHOT_MAGIC = b"MSNP"
SNAPSHOT_VERSION = 1
SNAPSHOT_FILE = "snapshot"
WAL_FILE = "wal"

#: WAL records accumulated before an automatic checkpoint folds them into a
#: fresh snapshot (bounds replay time on long-lived nodes).
WAL_CHECKPOINT_THRESHOLD = 512

_FRAME = struct.Struct("<II")           # record length, payload crc32
_INSERT_HEAD = struct.Struct("<BqII")   # op, block_id, digest, codes length
_DROP_HEAD = struct.Struct("<Bq")       # op, block_id
_SNAP_HEAD = struct.Struct("<4sHI")     # magic, version, body crc32
_SNAP_ENTRY = struct.Struct("<qII")     # block_id, digest, codes length

_OP_INSERT = 1
_OP_DROP = 2


@dataclass(frozen=True)
class _Extent:
    """Where one block's durable codes live right now."""

    digest: int
    file: str
    offset: int
    length: int


@dataclass
class RecoveredState:
    """What a replay reconstructed, plus what it had to repair or flag."""

    block_ids: list[int] = field(default_factory=list)
    codes: np.ndarray | None = None
    snapshot_blocks: int = 0
    wal_records: int = 0
    torn_records: int = 0
    crc_errors: int = 0
    snapshot_corrupt: bool = False

    def to_dict(self) -> dict:
        return {
            "blocks": len(self.block_ids),
            "snapshot_blocks": self.snapshot_blocks,
            "wal_records": self.wal_records,
            "torn_records": self.torn_records,
            "crc_errors": self.crc_errors,
            "snapshot_corrupt": self.snapshot_corrupt,
        }


class DurableNodeState:
    """Snapshot + WAL for one node, materialised lazily from disk bytes.

    All reads go through a materialised index of the *actual device
    contents* (invalidated by the disk's generation counter), so fault
    injection on the device — bit flips, torn tails — is observed exactly
    the way recovery and scrubbing would observe it.
    """

    def __init__(
        self,
        disk: NodeDisk,
        node_id: str,
        checkpoint_threshold: int = WAL_CHECKPOINT_THRESHOLD,
    ) -> None:
        self.disk = disk
        self.node_id = node_id
        self.checkpoint_threshold = checkpoint_threshold
        #: appends that failed acknowledgement since the last clean flush
        self.unacked_writes = 0
        self._extents: dict[int, _Extent] = {}
        self._cache_gen = -1
        self._wal_records = 0
        self._snapshot_blocks = 0
        self._torn_records = 0
        self._crc_errors = 0
        self._snapshot_corrupt = False

    # -- the write path --------------------------------------------------------

    def append_insert(self, block_id: int, codes: np.ndarray) -> bool:
        """Log one block insert; returns ``True`` once durably on disk."""
        # Start from a valid view of the device: the incremental cache
        # update below is only sound on top of a materialised extent map
        # (a checkpoint or failed append leaves the cache invalidated).
        self._materialize()
        payload_bytes = np.ascontiguousarray(codes, dtype=np.uint8).tobytes()
        digest = zlib.crc32(payload_bytes)
        payload = _INSERT_HEAD.pack(
            _OP_INSERT, block_id, digest, len(payload_bytes)
        ) + payload_bytes
        offset_in_record = _FRAME.size + _INSERT_HEAD.size
        if not self._append_record(payload):
            return False
        # Incremental cache update: the codes extent starts right after the
        # frame + insert header of the record we just wrote.
        record_start = self.disk.size(WAL_FILE) - _FRAME.size - len(payload)
        self._extents.pop(block_id, None)
        self._extents[block_id] = _Extent(
            digest=digest,
            file=WAL_FILE,
            offset=record_start + offset_in_record,
            length=len(payload_bytes),
        )
        self._wal_records += 1
        self._cache_gen = self.disk.generation
        if self._wal_records >= self.checkpoint_threshold:
            self.checkpoint()
        return True

    def append_drop(self, block_id: int) -> bool:
        """Log one block drop; returns ``True`` once durably on disk."""
        self._materialize()
        if not self._append_record(_DROP_HEAD.pack(_OP_DROP, block_id)):
            return False
        self._extents.pop(block_id, None)
        self._wal_records += 1
        self._cache_gen = self.disk.generation
        return True

    def _append_record(self, payload: bytes) -> bool:
        frame = _FRAME.pack(len(payload), zlib.crc32(payload))
        try:
            self.disk.append(WAL_FILE, frame + payload)
        except StoreError:
            self.unacked_writes += 1
            self._cache_gen = -1  # a torn prefix may be on disk
            return False
        return True

    def checkpoint(self) -> bool:
        """Fold the WAL into a fresh atomic snapshot; ``True`` on success.

        Payloads are copied from the device byte-for-byte with their
        *original* digests — checkpointing never re-certifies content, so
        corruption stays detectable across snapshot cycles.  Failure (torn
        tmp file, full disk) leaves the previous snapshot and the WAL
        untouched.
        """
        self._materialize()
        parts = [bytearray(4)]  # count placeholder
        count = 0
        for block_id, extent in self._extents.items():
            payload = self.disk.read_span(extent.file, extent.offset,
                                          extent.length)
            parts.append(_SNAP_ENTRY.pack(block_id, extent.digest,
                                          extent.length))
            parts.append(payload)
            count += 1
        parts[0][:] = struct.pack("<I", count)
        body = b"".join(bytes(p) for p in parts)
        head = _SNAP_HEAD.pack(SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
                               zlib.crc32(body))
        try:
            self.disk.write_atomic(SNAPSHOT_FILE, head + body)
            self.disk.delete(WAL_FILE)
        except StoreError:
            self.unacked_writes += 1
            self._cache_gen = -1
            return False
        # Offsets moved into the snapshot; the next reader re-materialises
        # (which also resets the WAL-record count below the threshold).
        self._cache_gen = -1
        self._wal_records = 0
        return True

    flush = checkpoint

    def reset(self) -> None:
        """Release all durable state (drains, rebuilds, test isolation)."""
        self.disk.delete(SNAPSHOT_FILE)
        self.disk.delete(WAL_FILE)
        self.unacked_writes = 0
        self._extents = {}
        self._cache_gen = self.disk.generation
        self._wal_records = 0
        self._snapshot_blocks = 0
        self._torn_records = 0
        self._crc_errors = 0
        self._snapshot_corrupt = False

    # -- the read path ---------------------------------------------------------

    def replay(self) -> RecoveredState:
        """Rebuild the block set strictly from device bytes (recovery).

        Returns the blocks in durable order together with the codes matrix
        decoded from the stored payloads — corrupted payloads included
        (recovery loads what the disk holds; digest verification at scrub
        or read time flags them)."""
        self._cache_gen = -1
        self._materialize()
        block_ids = list(self._extents)
        state = RecoveredState(
            block_ids=block_ids,
            snapshot_blocks=self._snapshot_blocks,
            wal_records=self._wal_records,
            torn_records=self._torn_records,
            crc_errors=self._crc_errors,
            snapshot_corrupt=self._snapshot_corrupt,
        )
        if block_ids:
            widths = {e.length for e in self._extents.values()}
            width = max(widths)
            codes = np.zeros((len(block_ids), width), dtype=np.uint8)
            for row, block_id in enumerate(block_ids):
                extent = self._extents[block_id]
                raw = self.disk.read_span(extent.file, extent.offset,
                                          extent.length)
                codes[row, : extent.length] = np.frombuffer(raw, dtype=np.uint8)
            state.codes = codes
        return state

    def manifest_ids(self) -> list[int]:
        """Block ids durably recorded, in durable (insertion) order."""
        self._materialize()
        return list(self._extents)

    def payload(self, block_id: int) -> bytes | None:
        self._materialize()
        extent = self._extents.get(block_id)
        if extent is None:
            return None
        return self.disk.read_span(extent.file, extent.offset, extent.length)

    def digest(self, block_id: int) -> int | None:
        self._materialize()
        extent = self._extents.get(block_id)
        return None if extent is None else extent.digest

    def verify(self, block_id: int) -> bool:
        """Does the stored payload still match its acknowledged digest?"""
        self._materialize()
        extent = self._extents.get(block_id)
        if extent is None:
            return False
        raw = self.disk.read_span(extent.file, extent.offset, extent.length)
        return zlib.crc32(raw) == extent.digest

    def corrupt_block(self, block_id: int, bit: int = 0) -> None:
        """Fault injection: silently flip one bit of the block's on-device
        codes (``bit // 8`` indexes the byte, modulo the payload length)."""
        self._materialize()
        extent = self._extents.get(block_id)
        if extent is None:
            raise KeyError(f"{self.node_id} holds no durable block {block_id}")
        self.disk.flip_bit(
            extent.file,
            extent.offset + (bit // 8) % extent.length,
            bit % 8,
        )
        # The extent map itself is unchanged — only device bytes rotted.
        self._cache_gen = self.disk.generation

    @property
    def block_count(self) -> int:
        self._materialize()
        return len(self._extents)

    @property
    def wal_records(self) -> int:
        self._materialize()
        return self._wal_records

    def status(self) -> dict:
        """Introspection frame for health views and the CLI."""
        self._materialize()
        return {
            "blocks": len(self._extents),
            "wal_records": self._wal_records,
            "snapshot_blocks": self._snapshot_blocks,
            "unacked_writes": self.unacked_writes,
            "torn_records": self._torn_records,
            "crc_errors": self._crc_errors,
            "snapshot_corrupt": self._snapshot_corrupt,
            "disk_bytes": self.disk.used_bytes,
            "disk_full": self.disk.full,
        }

    # -- materialisation -------------------------------------------------------

    def _materialize(self) -> None:
        if self._cache_gen == self.disk.generation:
            return
        self._extents = {}
        self._wal_records = 0
        self._snapshot_blocks = 0
        self._torn_records = 0
        self._crc_errors = 0
        self._snapshot_corrupt = False
        self._load_snapshot()
        self._replay_wal()
        self._cache_gen = self.disk.generation

    def _load_snapshot(self) -> None:
        if not self.disk.exists(SNAPSHOT_FILE):
            return
        raw = self.disk.read(SNAPSHOT_FILE)
        if len(raw) < _SNAP_HEAD.size + 4:
            self._snapshot_corrupt = True
            return
        magic, version, body_crc = _SNAP_HEAD.unpack_from(raw, 0)
        body = raw[_SNAP_HEAD.size:]
        if (
            magic != SNAPSHOT_MAGIC
            or version != SNAPSHOT_VERSION
            or zlib.crc32(body) != body_crc
        ):
            # A snapshot that fails its whole-body checksum cannot be
            # trusted at all (unlike per-record WAL rot): start empty and
            # let re-replication restore the node from its peers.
            self._snapshot_corrupt = True
            return
        (count,) = struct.unpack_from("<I", body, 0)
        cursor = 4
        for _ in range(count):
            if cursor + _SNAP_ENTRY.size > len(body):
                self._snapshot_corrupt = True
                return
            block_id, digest, length = _SNAP_ENTRY.unpack_from(body, cursor)
            cursor += _SNAP_ENTRY.size
            if cursor + length > len(body):
                self._snapshot_corrupt = True
                return
            self._extents[block_id] = _Extent(
                digest=digest,
                file=SNAPSHOT_FILE,
                offset=_SNAP_HEAD.size + cursor,
                length=length,
            )
            cursor += length
            self._snapshot_blocks += 1

    def _replay_wal(self) -> None:
        if not self.disk.exists(WAL_FILE):
            return
        raw = self.disk.read(WAL_FILE)
        cursor = 0
        while cursor < len(raw):
            record_start = cursor
            if cursor + _FRAME.size > len(raw):
                self._truncate_tail(record_start)
                return
            length, payload_crc = _FRAME.unpack_from(raw, cursor)
            cursor += _FRAME.size
            if cursor + length > len(raw):
                self._truncate_tail(record_start)
                return
            payload = raw[cursor: cursor + length]
            cursor += length
            crc_ok = zlib.crc32(payload) == payload_crc
            if not crc_ok and cursor >= len(raw):
                # CRC failure on the final record: a torn write whose
                # prefix happened to frame-parse.  Truncate it away.
                self._truncate_tail(record_start)
                return
            if not crc_ok:
                # Mid-log CRC failure is bit rot, not a torn tail — the
                # record is applied and the rot surfaces through content
                # digests (scrub / verified reads).
                self._crc_errors += 1
            self._apply_record(payload, record_start)

    def _apply_record(self, payload: bytes, record_start: int) -> None:
        op = payload[0]
        if op == _OP_INSERT and len(payload) >= _INSERT_HEAD.size:
            _op, block_id, digest, length = _INSERT_HEAD.unpack_from(payload, 0)
            self._extents.pop(block_id, None)
            self._extents[block_id] = _Extent(
                digest=digest,
                file=WAL_FILE,
                offset=record_start + _FRAME.size + _INSERT_HEAD.size,
                length=min(length, len(payload) - _INSERT_HEAD.size),
            )
            self._wal_records += 1
        elif op == _OP_DROP and len(payload) >= _DROP_HEAD.size:
            _op, block_id = _DROP_HEAD.unpack_from(payload, 0)
            self._extents.pop(block_id, None)
            self._wal_records += 1
        else:
            self._crc_errors += 1

    def _truncate_tail(self, record_start: int) -> None:
        """Drop a torn tail from the device so later appends start clean;
        the enclosing ``_materialize`` stamps the post-truncation
        generation once the scan finishes."""
        self._torn_records += 1
        self.disk.truncate(WAL_FILE, record_start)
