"""Durability and scrub experiments: the proof obligations of ``repro.store``.

Two seeded, replayable scenario drivers mirror ``repro.faults.scenario``:

``run_durability_scenario``
    The recovery-correctness experiment behind ``repro recover``.  Two
    identically seeded deployments; one suffers a crash + restart of the
    first node of every group mid-batch, the other stays healthy.  After
    the chaos run — every victim restarted strictly from its snapshot +
    WAL, RAM wiped — the *same* fresh probe batch runs against both
    clusters and the answers are compared alignment-by-alignment: recovery
    is correct only if the recovered cluster is byte-identical to one that
    never crashed.

``run_scrub_scenario``
    The detect → quarantine → heal → resolve experiment behind
    ``repro scrub``.  Bit flips are injected into scripted victims' durable
    blocks while a cadenced scrubber runs; afterwards the event log must
    show the full causal chain (``bit_flip`` → ``corruption_detected`` →
    ``scrub_heal`` → ``repair``), a final audit pass must find nothing
    left to heal, and the answers must match an uncorrupted control run
    (verified reads route around rot while it is being healed).

Everything derives from ``seed`` (database, probes, deployment, schedule,
trace ids), so equal arguments give byte-identical results — the contract
``CHAOS_SEED``-matrixed CI jobs replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.align.result import Alignment
from repro.core.params import QueryParams
from repro.core.query import QueryReport
from repro.faults.scenario import _build, _recall
from repro.faults.schedule import FaultEvent, FaultSchedule, kill_and_recover
from repro.obs.events import EventLog
from repro.obs.health import HealthMonitor
from repro.obs.trace import TraceContext
from repro.seq.mutate import mutate_to_identity
from repro.store.scrub import IntegrityScrubber


def _serialize_alignment(alignment: Alignment) -> tuple:
    """A byte-stable tuple of everything an answer asserts."""
    return (
        alignment.query_id,
        alignment.subject_id,
        alignment.query_start,
        alignment.query_end,
        alignment.subject_start,
        alignment.subject_end,
        repr(alignment.score),
        repr(alignment.bit_score),
        repr(alignment.evalue),
        repr(alignment.identity),
        alignment.gaps,
    )


def serialize_answers(reports: list[QueryReport]) -> list[list[tuple]]:
    """Per-query answer fingerprints for exact comparison."""
    return [
        [_serialize_alignment(a) for a in report.alignments]
        for report in reports
    ]


def _probes(mendel, probe_count: int, identity: float, seed: int):
    database = mendel.index.database
    size = len(database.records)
    step = max(1, size // probe_count)
    targets = [database.records[(i * step) % size] for i in range(probe_count)]
    probes = [
        mutate_to_identity(target, identity, rng=seed + 10 + i,
                           seq_id=f"probe-{i}")
        for i, target in enumerate(targets)
    ]
    return probes, [target.seq_id for target in targets]


@dataclass
class DurabilityResult:
    """Outcome of one crash / durable-recovery / replay experiment."""

    schedule: FaultSchedule
    victims: list[str] = field(default_factory=list)
    #: reports from the probe batch issued *during* the failure window
    chaos_reports: list[QueryReport] = field(default_factory=list)
    #: per-victim replay reports (torn records, CRC errors, blocks)
    recovery: dict = field(default_factory=dict)
    #: post-recovery probe batch on the recovered cluster…
    probe_reports: list[QueryReport] = field(default_factory=list)
    #: …and the same batch on the never-crashed control
    control_reports: list[QueryReport] = field(default_factory=list)
    #: query ids whose recovered answers differ from the control's
    mismatched_queries: list[str] = field(default_factory=list)
    recall: float = 0.0
    control_recall: float = 0.0
    chaos_summary: dict = field(default_factory=dict)
    chaos_log: list[str] = field(default_factory=list)
    monitor: "HealthMonitor | None" = None

    @property
    def identical(self) -> bool:
        """Did the recovered cluster answer byte-identically?"""
        return not self.mismatched_queries

    @property
    def blocks_recovered(self) -> int:
        return sum(rep.get("blocks", 0) for rep in self.recovery.values())

    def summary_rows(self) -> list[tuple[str, str]]:
        return [
            ("victims", ",".join(self.victims)),
            ("queries under chaos", str(len(self.chaos_reports))),
            ("blocks replayed", str(self.blocks_recovered)),
            ("torn WAL records", str(sum(
                rep.get("torn_records", 0) for rep in self.recovery.values()
            ))),
            ("post-recovery queries", str(len(self.probe_reports))),
            ("recovered == control", "yes" if self.identical else "NO"),
            ("mismatched queries", str(len(self.mismatched_queries))),
            ("recall (recovered)", f"{self.recall:.0%}"),
            ("recall (control)", f"{self.control_recall:.0%}"),
            ("blocks re-replicated",
             str(self.chaos_summary.get("blocks_streamed", 0))),
        ]


def run_durability_scenario(
    replication: int = 2,
    group_count: int = 3,
    group_size: int = 3,
    database_size: int = 18,
    sequence_length: int = 150,
    probe_count: int = 6,
    identity: float = 0.9,
    seed: int = 0,
    kill_at: float = 0.01,
    recover_at: float | None = None,
    params: QueryParams | None = None,
    event_log: "EventLog | None" = None,
) -> DurabilityResult:
    """Crash every group's first node mid-batch, restart it from durable
    state, then prove the recovered cluster indistinguishable from one that
    never crashed; see the module docstring."""
    if probe_count < 1:
        raise ValueError(f"probe_count must be >= 1, got {probe_count}")
    params = params or QueryParams(k=4, n=6, i=0.7)

    control = _build(seed, replication, group_count, group_size,
                     database_size, sequence_length)
    mendel = _build(seed, replication, group_count, group_size,
                    database_size, sequence_length)
    probes, expected = _probes(mendel, probe_count, identity, seed)

    if recover_at is None:
        recover_at = 2 * kill_at
    victims = [g.nodes[0].node_id for g in mendel.index.topology.groups]
    schedule = kill_and_recover(
        victims, kill_at=kill_at, recover_at=recover_at,
        seed=seed, heartbeat_interval=kill_at / 8,
    )
    arrival_interval = 3 * kill_at / probe_count
    contexts = [TraceContext(trace_id=f"durability-{seed}-q{i}")
                for i in range(probe_count)]
    monitor = HealthMonitor.for_chaos_run(
        schedule.effective_horizon,
        arrival_interval=arrival_interval,
        event_log=event_log if event_log is not None else EventLog(),
    )
    chaos_reports = mendel.query_under_faults(
        probes, schedule, params=params,
        arrival_interval=arrival_interval,
        trace_contexts=contexts, monitor=monitor,
    )
    chaos = mendel.engine.last_chaos
    recovery = {
        victim: dict(mendel.index.node(victim).last_recovery or {})
        for victim in victims
    }

    # The verdict batch: same probes, both clusters, no faults.  The
    # recovered cluster must answer exactly like the control.
    probe_reports = mendel.engine.run_batch(probes, params)
    control_reports = control.engine.run_batch(probes, params)
    recovered_answers = serialize_answers(probe_reports)
    control_answers = serialize_answers(control_reports)
    mismatched = [
        probes[i].seq_id
        for i in range(probe_count)
        if recovered_answers[i] != control_answers[i]
    ]
    return DurabilityResult(
        schedule=schedule,
        victims=victims,
        chaos_reports=chaos_reports,
        recovery=recovery,
        probe_reports=probe_reports,
        control_reports=control_reports,
        mismatched_queries=mismatched,
        recall=_recall(probe_reports, expected),
        control_recall=_recall(control_reports, expected),
        chaos_summary=chaos.summary() if chaos is not None else {},
        chaos_log=[str(e) for e in chaos.log] if chaos is not None else [],
        monitor=monitor,
    )


@dataclass
class ScrubScenarioResult:
    """Outcome of one bit-rot / scrub / heal experiment."""

    schedule: FaultSchedule
    #: ``(node_id, block_id)`` pairs whose durable bytes were flipped
    flips: list[tuple[str, int]] = field(default_factory=list)
    reports: list[QueryReport] = field(default_factory=list)
    #: the same batch against an uncorrupted control deployment
    control_reports: list[QueryReport] = field(default_factory=list)
    #: query ids answered differently from the control (must stay empty:
    #: verified reads route around rot)
    wrong_answers: list[str] = field(default_factory=list)
    #: replica copies still failing digest verification after the run
    unhealed: int = 0
    recall: float = 0.0
    control_recall: float = 0.0
    chaos_summary: dict = field(default_factory=dict)
    chaos_log: list[str] = field(default_factory=list)
    monitor: "HealthMonitor | None" = None

    @property
    def corruptions_detected(self) -> int:
        return self.chaos_summary.get("corruptions_detected", 0)

    @property
    def heals_requested(self) -> int:
        return self.chaos_summary.get("heals_requested", 0)

    @property
    def resolved(self) -> bool:
        """Every injected flip detected, healed, and verified clean."""
        return (
            self.corruptions_detected >= len(self.flips) > 0
            and self.heals_requested > 0
            and self.unhealed == 0
        )

    def event_chain(self) -> list[str]:
        """Kinds of the corruption-relevant events, in log order."""
        if self.monitor is None:
            return []
        relevant = {"bit_flip", "corruption_detected", "scrub_heal",
                    "repair", "alert"}
        return [e.kind for e in self.monitor.events.events()
                if e.kind in relevant]

    def summary_rows(self) -> list[tuple[str, str]]:
        return [
            ("bit flips injected", str(len(self.flips))),
            ("corruptions detected", str(self.corruptions_detected)),
            ("blocks quarantined",
             str(self.chaos_summary.get("blocks_quarantined", 0))),
            ("heals requested", str(self.heals_requested)),
            ("replicas checked",
             str(self.chaos_summary.get("replicas_checked", 0))),
            ("unhealed after run", str(self.unhealed)),
            ("wrong answers", str(len(self.wrong_answers))),
            ("recall (scrubbed)", f"{self.recall:.0%}"),
            ("recall (control)", f"{self.control_recall:.0%}"),
            ("resolved", "yes" if self.resolved else "NO"),
        ]


def run_scrub_scenario(
    replication: int = 2,
    group_count: int = 2,
    group_size: int = 3,
    database_size: int = 12,
    sequence_length: int = 150,
    probe_count: int = 6,
    identity: float = 0.9,
    flip_count: int = 2,
    seed: int = 0,
    flip_at: float = 0.005,
    scrub_interval: float | None = None,
    params: QueryParams | None = None,
    event_log: "EventLog | None" = None,
) -> ScrubScenarioResult:
    """Inject silent bit rot, scrub it out, and prove no query ever served
    the rotted bytes; see the module docstring."""
    if flip_count < 1:
        raise ValueError(f"flip_count must be >= 1, got {flip_count}")
    params = params or QueryParams(k=4, n=6, i=0.7)

    control = _build(seed, replication, group_count, group_size,
                     database_size, sequence_length)
    mendel = _build(seed, replication, group_count, group_size,
                    database_size, sequence_length)
    probes, expected = _probes(mendel, probe_count, identity, seed)

    # Victim selection is deterministic: the first durable block of the
    # first node of each group, round-robin until flip_count is reached.
    flips: list[tuple[str, int]] = []
    groups = mendel.index.topology.groups
    for i in range(flip_count):
        group = groups[i % len(groups)]
        node = group.nodes[(i // len(groups)) % len(group.nodes)]
        manifest = node.durable.manifest_ids()
        if not manifest:
            continue
        flips.append((node.node_id, manifest[i % len(manifest)]))

    if scrub_interval is None:
        scrub_interval = flip_at / 2
    events = [
        FaultEvent.bit_flip(flip_at, node_id, block=block_id, bit=3 + i)
        for i, (node_id, block_id) in enumerate(flips)
    ]
    # Leave room after the last flip for a full scrub cycle per group plus
    # the chained heal repairs to drain.
    horizon = flip_at + scrub_interval * (len(groups) * 3 + 4)
    schedule = FaultSchedule(
        events=tuple(events),
        seed=seed,
        scrub_interval=scrub_interval,
        horizon=horizon,
    )
    arrival_interval = horizon / (probe_count + 1)
    contexts = [TraceContext(trace_id=f"scrub-{seed}-q{i}")
                for i in range(probe_count)]
    monitor = HealthMonitor.for_chaos_run(
        schedule.effective_horizon,
        arrival_interval=arrival_interval,
        event_log=event_log if event_log is not None else EventLog(),
    )
    reports = mendel.query_under_faults(
        probes, schedule, params=params,
        arrival_interval=arrival_interval,
        trace_contexts=contexts, monitor=monitor,
    )
    chaos = mendel.engine.last_chaos
    control_reports = control.engine.run_batch(probes, params)
    scrubbed = serialize_answers(reports)
    clean = serialize_answers(control_reports)
    wrong = [probes[i].seq_id for i in range(probe_count)
             if scrubbed[i] != clean[i]]

    # Post-run audit: a detect-only scrub pass must come back clean.
    audit = IntegrityScrubber(mendel.index, heal=None)
    unhealed = len(audit.scrub_all())

    return ScrubScenarioResult(
        schedule=schedule,
        flips=flips,
        reports=reports,
        control_reports=control_reports,
        wrong_answers=wrong,
        unhealed=unhealed,
        recall=_recall(reports, expected),
        control_recall=_recall(control_reports, expected),
        chaos_summary=chaos.summary() if chaos is not None else {},
        chaos_log=[str(e) for e in chaos.log] if chaos is not None else [],
        monitor=monitor,
    )
