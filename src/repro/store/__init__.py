"""Per-node durability and integrity: the storage substrate under the cluster.

The paper frames Mendel as a *storage* framework, yet everything upstream of
this package keeps node state in RAM — a "crashed" node used to recover from
its own live Python objects.  ``repro.store`` gives every
:class:`~repro.cluster.node.StorageNode` crash-consistent durable state and
the machinery to keep it honest:

* :class:`NodeDisk` — a deterministic block device per node with the fault
  surface real disks have (atomic rename, torn appends, ENOSPC, bit rot);
* :class:`DurableNodeState` — a checksummed, format-versioned snapshot plus
  an append-only CRC32-framed write-ahead log of block inserts/drops, with
  torn-tail truncation on replay and automatic checkpointing;
* :class:`IntegrityScrubber` — anti-entropy: per-block content digests
  compared across replicas on a background cadence, corrupt copies
  quarantined and healed through the existing re-replication path;
* scenario drivers (:func:`run_durability_scenario`,
  :func:`run_scrub_scenario`) behind ``repro recover`` / ``repro scrub``.

The shape mirrors ``repro.faults`` and ``repro.scale``: pure mechanisms
here, wiring in the chaos controller and the query engine, observability
through the shared event log / metrics registry / SLO engine.

Only the leaf modules (device + durable state) are imported eagerly — the
cluster layer imports them at module load, so the scrubber and scenario
drivers (which import the cluster back) resolve lazily via PEP 562.
"""

from repro.store.disk import (
    DiskFullError,
    NodeDisk,
    StoreError,
    TornWriteError,
)
from repro.store.durable import (
    DurableNodeState,
    RecoveredState,
    WAL_CHECKPOINT_THRESHOLD,
)

_SCRUB_EXPORTS = {"IntegrityScrubber", "ScrubFinding", "ScrubReport"}
_SCENARIO_EXPORTS = {
    "DurabilityResult",
    "ScrubScenarioResult",
    "run_durability_scenario",
    "run_scrub_scenario",
}

__all__ = sorted(
    {
        "DiskFullError",
        "DurableNodeState",
        "NodeDisk",
        "RecoveredState",
        "StoreError",
        "TornWriteError",
        "WAL_CHECKPOINT_THRESHOLD",
    }
    | _SCRUB_EXPORTS
    | _SCENARIO_EXPORTS
)


def __getattr__(name: str):
    if name in _SCRUB_EXPORTS:
        from repro.store import scrub

        return getattr(scrub, name)
    if name in _SCENARIO_EXPORTS:
        from repro.store import scenario

        return getattr(scenario, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
