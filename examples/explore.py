"""Trace analytics tour: fingerprint slow queries, profile the critical
path, then sweep a tiny scenario grid.

Run with::

    python examples/explore.py

Builds a deployment, runs traced queries under a crash, clusters the
slow ones into span-shape families, prints the aggregated critical-path
table (whose per-stage self-times tile the turnaround exactly), and
finishes with a two-cell ``repro explore`` sweep written to
``explore-report/``.
"""

import math

from repro import Mendel, MendelConfig, QueryParams
from repro.bench.explore import Cell, run_explore
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.obs.analyze import (
    cluster_slow_queries,
    critical_path_table,
    trace_fingerprint,
)
from repro.obs.trace import TraceContext
from repro.seq import PROTEIN, random_set
from repro.seq.mutate import mutate_to_identity

OUT_DIR = "explore-report"


def main() -> None:
    # 1. A deployment, exactly as in quickstart.py.
    database = random_set(
        count=40, length=200, alphabet=PROTEIN, rng=7, id_prefix="ref"
    )
    mendel = Mendel.build(
        database,
        MendelConfig(group_count=3, group_size=2, replication=1,
                     sample_size=128, seed=11),
    )
    params = QueryParams(k=6, n=6, i=0.75)

    # 2. Traced queries under a mid-batch crash: half the answers come
    #    back degraded, and their span trees say so.
    probes = [
        mutate_to_identity(database.records[i], 0.88, rng=i,
                           seq_id=f"probe{i}")
        for i in range(6)
    ]
    victim = mendel.index.topology.groups[0].nodes[0].node_id
    faults = FaultSchedule(
        events=(FaultEvent.crash(1e-4, victim),), seed=7, auto_repair=False,
    )
    reports = mendel.engine.run_batch(
        probes, params, faults=faults, arrival_interval=0.02,
        trace_contexts=[TraceContext(trace_id=f"tour-q{i}")
                        for i in range(len(probes))],
    )

    # 3. Fingerprint every trace and cluster into families.
    entries = []
    for report in reports:
        fingerprint = trace_fingerprint(report.root_span)
        entries.append({
            "trace_id": report.trace_id,
            "turnaround_ms": report.stats.turnaround * 1e3,
            "fingerprint": fingerprint.to_dict(),
            "family": fingerprint.family,
        })
    print("== families ==")
    for family in cluster_slow_queries(entries):
        exemplars = ", ".join(family["exemplar_trace_ids"])
        print(f"  {family['family']:<44} n={family['count']} "
              f"mean={family['mean_turnaround_ms']:.3f}ms  e.g. {exemplars}")

    # 4. The critical path: self-times tile the turnaround exactly.
    table = critical_path_table([reports[0].root_span])
    self_total = math.fsum(row["self_ms"] for row in table)
    print("\n== critical path (first query) ==")
    for row in table:
        print(f"  {row['stage']:<18} self={row['self_ms']:9.3f}ms "
              f"({row['share'] * 100:5.1f}%)")
    print(f"  self-times sum to {self_total:.6f}ms vs turnaround "
          f"{reports[0].stats.turnaround * 1e3:.6f}ms")

    # 5. A two-cell exploration sweep: healthy vs chaotic, one report.
    result = run_explore(
        "tour", seed=1, query_count=4,
        cells=(
            Cell("uniform", "protein", "none", "ram"),
            Cell("zipf", "protein", "light", "ram"),
        ),
    )
    paths = result.write(OUT_DIR)
    print(f"\n== explore ==")
    for cell in result.ranked():
        print(f"  {cell.name:<34} mean={cell.mean_turnaround_ms:9.3f}ms "
              f"dominant={cell.dominant_family}")
    print(f"  wrote {len(paths)} artifacts to {OUT_DIR}/ "
          f"(REPORT.md + per-cell BENCH JSON)")


if __name__ == "__main__":
    main()
